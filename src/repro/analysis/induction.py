"""Induction-variable analysis for loop induction variable merging (LIVM).

The Turnpike paper distinguishes *basic* induction variables (registers
updated once per iteration by a loop-invariant step, e.g. ``i = i + 1``)
from *induced* induction variables (linear functions of a basic IV).
Strength reduction turns induced IVs into extra basic IVs, creating
loop-carried dependences that force extra checkpoints; LIVM detects when
one basic IV is a linear function of another so it can be merged back.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.loops import Loop
from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import Reg


@dataclass
class BasicIV:
    """A basic induction variable of a loop.

    The register is updated exactly once in the loop body by
    ``reg = reg + step`` (ADDI or ADD with a loop-invariant register we
    could not fold; only constant steps qualify for merging), and
    initialised by a unique reaching definition before the loop.

    Attributes:
        reg: the induction register.
        step: per-iteration increment (constant).
        update: the updating instruction inside the loop.
        init_value: constant initial value if known, else None.
        init_instr: the pre-loop initialising instruction if unique.
    """

    reg: Reg
    step: int
    update: Instruction
    init_value: int | None
    init_instr: Instruction | None


def _defs_in_loop(cfg: ControlFlowGraph, loop: Loop) -> dict[Reg, list[Instruction]]:
    defs: dict[Reg, list[Instruction]] = {}
    for label in loop.body:
        for instr in cfg.block(label).instructions:
            if instr.dest is not None:
                defs.setdefault(instr.dest, []).append(instr)
    return defs


def _unique_init_before(
    cfg: ControlFlowGraph, loop: Loop, reg: Reg
) -> Instruction | None:
    """Find a unique pre-loop definition of ``reg`` if there is exactly one.

    A conservative scan: look at all blocks outside the loop; if exactly
    one instruction defines ``reg``, treat it as the initialiser.
    """
    found: Instruction | None = None
    for block in cfg.program.blocks:
        if block.label in loop.body:
            continue
        for instr in block.instructions:
            if instr.dest == reg:
                if found is not None:
                    return None
                found = instr
    return found


def find_basic_ivs(cfg: ControlFlowGraph, loop: Loop) -> list[BasicIV]:
    """Detect basic induction variables with constant steps in ``loop``."""
    defs = _defs_in_loop(cfg, loop)
    ivs: list[BasicIV] = []
    for reg, instrs in defs.items():
        if len(instrs) != 1:
            continue
        update = instrs[0]
        step: int | None = None
        if update.op is Opcode.ADDI and update.srcs == (reg,):
            step = update.imm
        if step is None or step == 0:
            continue
        init_instr = _unique_init_before(cfg, loop, reg)
        init_value: int | None = None
        if init_instr is not None and init_instr.op is Opcode.LI:
            init_value = init_instr.imm
        ivs.append(
            BasicIV(
                reg=reg,
                step=step,
                update=update,
                init_value=init_value,
                init_instr=init_instr,
            )
        )
    return ivs


@dataclass
class MergeCandidate:
    """A pair of basic IVs where ``dependent`` = scale * ``anchor`` + offset.

    LIVM can delete ``dependent``'s loop update and rematerialise its uses
    from ``anchor`` inside the loop, removing the loop-carried dependence
    (and hence the per-iteration checkpoint) of ``dependent``.
    """

    anchor: BasicIV
    dependent: BasicIV
    scale: int
    offset: int


def find_merge_candidates(ivs: list[BasicIV]) -> list[MergeCandidate]:
    """Pair up basic IVs whose linear relationship is provable.

    ``dependent = scale * anchor + offset`` holds for every iteration iff
    it holds initially and ``dependent.step == scale * anchor.step``.
    Both IVs need known constant initial values for the initial condition
    to be provable; scale must be a nonzero integer.
    """
    candidates: list[MergeCandidate] = []
    for anchor in ivs:
        for dependent in ivs:
            if anchor is dependent:
                continue
            if anchor.init_value is None or dependent.init_value is None:
                continue
            if anchor.step == 0 or dependent.step % anchor.step != 0:
                continue
            scale = dependent.step // anchor.step
            if scale == 0:
                continue
            offset = dependent.init_value - scale * anchor.init_value
            candidates.append(
                MergeCandidate(
                    anchor=anchor, dependent=dependent, scale=scale, offset=offset
                )
            )
    # Prefer same-step pairs (scale 1): their uses rematerialise with a
    # single ADDI. Then prefer power-of-two scales (SHLI) over general
    # multiplies, and small anchor steps as the final tiebreak.
    def cost(c: MergeCandidate) -> tuple[int, int, int, int]:
        if c.scale == 1:
            remat = 0
        elif c.scale > 0 and (c.scale & (c.scale - 1)) == 0:
            remat = 1
        else:
            remat = 2
        return (remat, abs(c.anchor.step), c.anchor.reg.index, c.dependent.reg.index)

    candidates.sort(key=cost)
    return candidates
