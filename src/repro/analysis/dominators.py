"""Dominator analysis (Cooper-Harvey-Kennedy iterative algorithm).

Loop detection and checkpoint sinking both need dominators: a back edge
``t -> h`` exists iff ``h`` dominates ``t``.
"""

from __future__ import annotations

from repro.analysis.cfg import ControlFlowGraph


class DominatorTree:
    """Immediate-dominator tree plus dominance queries."""

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        self.idom: dict[str, str | None] = {}
        self._dom_sets: dict[str, set[str]] | None = None
        self._compute()

    def _compute(self) -> None:
        rpo = self.cfg.reverse_postorder()
        index = {label: i for i, label in enumerate(rpo)}
        entry = self.cfg.entry
        idom: dict[str, str | None] = {label: None for label in rpo}
        idom[entry] = entry

        def intersect(a: str, b: str) -> str:
            while a != b:
                while index[a] > index[b]:
                    a = idom[a]  # type: ignore[assignment]
                while index[b] > index[a]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for label in rpo:
                if label == entry:
                    continue
                new_idom: str | None = None
                for pred in self.cfg.preds(label):
                    if pred not in index:
                        continue  # unreachable predecessor
                    if idom[pred] is None:
                        continue
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = intersect(pred, new_idom)
                if new_idom is not None and idom[label] != new_idom:
                    idom[label] = new_idom
                    changed = True
        idom[entry] = None  # entry has no immediate dominator
        self.idom = idom

    def dominates(self, a: str, b: str) -> bool:
        """True iff block ``a`` dominates block ``b`` (reflexive)."""
        node: str | None = b
        while node is not None:
            if node == a:
                return True
            node = self.idom.get(node)
        return False

    def dominator_sets(self) -> dict[str, set[str]]:
        """Full dominator sets; computed lazily from the idom tree."""
        if self._dom_sets is None:
            sets: dict[str, set[str]] = {}
            for label in self.cfg.reverse_postorder():
                doms = {label}
                node = self.idom.get(label)
                while node is not None:
                    doms.add(node)
                    node = self.idom.get(node)
                sets[label] = doms
            self._dom_sets = sets
        return self._dom_sets

    def children(self, label: str) -> list[str]:
        return [b for b, d in self.idom.items() if d == label and b != label]


def compute_dominators(cfg: ControlFlowGraph) -> DominatorTree:
    return DominatorTree(cfg)
