"""Control-flow graph construction over TK programs.

All other analyses (dominators, liveness, loops) consume a
:class:`ControlFlowGraph`, which is a lightweight view over a program's
blocks; it must be rebuilt after a pass changes control flow.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.isa.program import BasicBlock, Program


class ControlFlowGraph:
    """Successor/predecessor maps plus traversal orders for a program."""

    def __init__(self, program: Program):
        self.program = program
        self.successors: dict[str, tuple[str, ...]] = {}
        self.predecessors: dict[str, list[str]] = {b.label: [] for b in program.blocks}
        for block in program.blocks:
            succs = block.successors()
            self.successors[block.label] = succs
            for succ in succs:
                self.predecessors[succ].append(block.label)
        self._rpo: list[str] | None = None

    @property
    def entry(self) -> str:
        return self.program.entry.label

    def block(self, label: str) -> BasicBlock:
        return self.program.block(label)

    def succs(self, label: str) -> tuple[str, ...]:
        return self.successors[label]

    def preds(self, label: str) -> list[str]:
        return self.predecessors[label]

    # -- traversals --------------------------------------------------------

    def reverse_postorder(self) -> list[str]:
        """Blocks in reverse postorder from the entry (cached)."""
        if self._rpo is None:
            order: list[str] = []
            visited: set[str] = set()
            # Iterative DFS to avoid recursion limits on generated programs.
            stack: list[tuple[str, Iterator[str]]] = []
            visited.add(self.entry)
            stack.append((self.entry, iter(self.successors[self.entry])))
            while stack:
                label, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ not in visited:
                        visited.add(succ)
                        stack.append((succ, iter(self.successors[succ])))
                        advanced = True
                        break
                if not advanced:
                    order.append(label)
                    stack.pop()
            order.reverse()
            self._rpo = order
        return list(self._rpo)

    def postorder(self) -> list[str]:
        rpo = self.reverse_postorder()
        return list(reversed(rpo))

    def reachable_blocks(self) -> set[str]:
        return set(self.reverse_postorder())

    def unreachable_blocks(self) -> set[str]:
        return {b.label for b in self.program.blocks} - self.reachable_blocks()

    def is_reachable(self, label: str) -> bool:
        return label in self.reachable_blocks()

    # -- edge queries ------------------------------------------------------

    def edges(self) -> list[tuple[str, str]]:
        out: list[tuple[str, str]] = []
        for src, succs in self.successors.items():
            for dst in succs:
                out.append((src, dst))
        return out

    def is_back_edge(self, src: str, dst: str, dominators: dict[str, set[str]]) -> bool:
        """True if ``src -> dst`` is a back edge (dst dominates src)."""
        return dst in dominators.get(src, set())

    def __repr__(self) -> str:
        return (
            f"ControlFlowGraph({self.program.name!r}, "
            f"{len(self.successors)} blocks, {len(self.edges())} edges)"
        )


def build_cfg(program: Program) -> ControlFlowGraph:
    """Construct a fresh CFG for ``program``."""
    return ControlFlowGraph(program)
