"""Backward liveness dataflow over registers.

Eager checkpointing, checkpoint pruning, and the register allocator all
consume liveness. The analysis exposes both block-level live-in/live-out
sets and a per-instruction iterator (live set *after* each instruction),
computed on demand.
"""

from __future__ import annotations

from repro.analysis.cfg import ControlFlowGraph
from repro.isa.instructions import Instruction
from repro.isa.registers import Reg


class LivenessInfo:
    """Live-in/live-out register sets per basic block."""

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        self.live_in: dict[str, set[Reg]] = {}
        self.live_out: dict[str, set[Reg]] = {}
        self._use: dict[str, set[Reg]] = {}
        self._def: dict[str, set[Reg]] = {}
        self._compute()

    def _compute(self) -> None:
        cfg = self.cfg
        # Local use/def and (empty) live sets exist for *every* block, so
        # queries on unreachable blocks are well-defined instead of raising;
        # the fixpoint below only iterates reachable blocks, which keeps
        # dead code from contributing phantom live-outs.
        for block in cfg.program.blocks:
            label = block.label
            uses: set[Reg] = set()
            defs: set[Reg] = set()
            for instr in block.instructions:
                for src in instr.srcs:
                    if src not in defs:
                        uses.add(src)
                if instr.dest is not None:
                    defs.add(instr.dest)
            self._use[label] = uses
            self._def[label] = defs
            self.live_in[label] = set()
            self.live_out[label] = set()

        # Iterate to fixpoint in postorder (fast for reducible CFGs).
        order = cfg.postorder()
        changed = True
        while changed:
            changed = False
            for label in order:
                out: set[Reg] = set()
                for succ in cfg.succs(label):
                    out |= self.live_in.get(succ, set())
                new_in = self._use[label] | (out - self._def[label])
                if out != self.live_out[label]:
                    self.live_out[label] = out
                    changed = True
                if new_in != self.live_in[label]:
                    self.live_in[label] = new_in
                    changed = True

    def live_after(self, label: str) -> list[tuple[Instruction, set[Reg]]]:
        """Per-instruction live sets for one block.

        Returns ``[(instr, live_set_after_instr), ...]`` in program order.
        """
        block = self.cfg.block(label)
        live = set(self.live_out[label])
        result: list[tuple[Instruction, set[Reg]]] = []
        for instr in reversed(block.instructions):
            result.append((instr, set(live)))
            if instr.dest is not None:
                live.discard(instr.dest)
            live.update(instr.srcs)
        result.reverse()
        return result

    def live_before_block(self, label: str) -> set[Reg]:
        return set(self.live_in[label])


def compute_liveness(cfg: ControlFlowGraph) -> LivenessInfo:
    return LivenessInfo(cfg)
