"""Natural-loop detection.

Loop structure drives region partitioning (boundaries at loop headers),
LICM checkpoint sinking, and loop induction variable merging.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.dominators import DominatorTree


@dataclass
class Loop:
    """A natural loop: header block + body block set.

    Attributes:
        header: the loop header label (target of the back edges).
        body: all blocks in the loop, including the header.
        back_edges: the ``(tail, header)`` edges defining the loop.
        exits: blocks *outside* the loop that are successors of loop blocks.
        parent: enclosing loop header label, if nested.
    """

    header: str
    body: set[str] = field(default_factory=set)
    back_edges: list[tuple[str, str]] = field(default_factory=list)
    exits: set[str] = field(default_factory=set)
    parent: str | None = None

    @property
    def depth_key(self) -> int:
        return len(self.body)

    def contains(self, label: str) -> bool:
        return label in self.body


class LoopForest:
    """All natural loops of a program, with nesting information."""

    def __init__(self, cfg: ControlFlowGraph, dom: DominatorTree):
        self.cfg = cfg
        self.dom = dom
        self.loops: dict[str, Loop] = {}
        self._discover()
        self._compute_exits()
        self._compute_nesting()

    def _discover(self) -> None:
        reachable = self.cfg.reachable_blocks()
        for src, dst in self.cfg.edges():
            if src not in reachable or dst not in reachable:
                continue
            if not self.dom.dominates(dst, src):
                continue
            loop = self.loops.setdefault(dst, Loop(header=dst, body={dst}))
            loop.back_edges.append((src, dst))
            # Walk predecessors backwards from the back-edge tail.
            stack = [src]
            while stack:
                label = stack.pop()
                if label in loop.body:
                    continue
                loop.body.add(label)
                for pred in self.cfg.preds(label):
                    if pred in reachable and pred not in loop.body:
                        stack.append(pred)

    def _compute_exits(self) -> None:
        for loop in self.loops.values():
            for label in loop.body:
                for succ in self.cfg.succs(label):
                    if succ not in loop.body:
                        loop.exits.add(succ)

    def _compute_nesting(self) -> None:
        # A loop's parent is the smallest other loop strictly containing its header.
        for header, loop in self.loops.items():
            best: Loop | None = None
            for other_header, other in self.loops.items():
                if other_header == header:
                    continue
                if header in other.body and loop.body < other.body | {header}:
                    if best is None or len(other.body) < len(best.body):
                        best = other
            loop.parent = best.header if best is not None else None

    # -- queries ----------------------------------------------------------

    @property
    def headers(self) -> set[str]:
        return set(self.loops.keys())

    def innermost_loop_of(self, label: str) -> Loop | None:
        """Smallest loop containing ``label``, or None."""
        best: Loop | None = None
        for loop in self.loops.values():
            if label in loop.body:
                if best is None or len(loop.body) < len(best.body):
                    best = loop
        return best

    def loop_depth(self, label: str) -> int:
        """Nesting depth of a block (0 = not in any loop)."""
        return sum(1 for loop in self.loops.values() if label in loop.body)


def find_loops(cfg: ControlFlowGraph, dom: DominatorTree) -> LoopForest:
    return LoopForest(cfg, dom)
