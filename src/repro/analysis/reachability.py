"""Forward reachability between program points.

Checkpoint pruning needs a conservative answer to: "starting *after*
instruction X, can control reach a definition of register R?" If not,
R's value at X persists for the rest of the execution whenever X runs
last, so a pruned checkpoint may be reconstructed from R.
"""

from __future__ import annotations

from repro.analysis.cfg import ControlFlowGraph
from repro.isa.registers import Reg


class DefReachability:
    """Answers "is any def of reg reachable from a given point" queries."""

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        # Blocks (transitively) reachable from each block, *including* self
        # via cycles. Program sizes here are small (hundreds of blocks), so
        # a per-block BFS is fine and keeps the code obvious.
        self._reach: dict[str, set[str]] = {}
        for label in cfg.reverse_postorder():
            seen: set[str] = set()
            stack = list(cfg.succs(label))
            while stack:
                cur = stack.pop()
                if cur in seen:
                    continue
                seen.add(cur)
                stack.extend(cfg.succs(cur))
            self._reach[label] = seen
        # Registers defined per block.
        self._defs_in_block: dict[str, set[Reg]] = {}
        for block in cfg.program.blocks:
            defs: set[Reg] = set()
            for instr in block.instructions:
                if instr.dest is not None:
                    defs.add(instr.dest)
            self._defs_in_block[block.label] = defs

    def blocks_reachable_from(self, label: str) -> set[str]:
        """Blocks reachable from the *end* of ``label`` (may include itself)."""
        return set(self._reach.get(label, set()))

    def def_reachable_after(self, label: str, position: int, reg: Reg) -> bool:
        """Is a definition of ``reg`` reachable strictly after the given point?

        ``position`` is the index of an instruction within block ``label``;
        the query considers the remainder of that block plus everything
        transitively reachable (including the block itself if it is in a
        cycle).
        """
        block = self.cfg.block(label)
        for instr in block.instructions[position + 1 :]:
            if instr.dest == reg:
                return True
        for succ_label in self._reach.get(label, set()):
            if reg in self._defs_in_block.get(succ_label, set()):
                return True
        return False


def compute_def_reachability(cfg: ControlFlowGraph) -> DefReachability:
    return DefReachability(cfg)
