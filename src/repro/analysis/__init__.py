"""Compiler analyses: CFG, dominators, liveness, loops, induction, reachability."""

from repro.analysis.cfg import ControlFlowGraph, build_cfg
from repro.analysis.dominators import DominatorTree, compute_dominators
from repro.analysis.induction import (
    BasicIV,
    MergeCandidate,
    find_basic_ivs,
    find_merge_candidates,
)
from repro.analysis.liveness import LivenessInfo, compute_liveness
from repro.analysis.loops import Loop, LoopForest, find_loops
from repro.analysis.reachability import DefReachability, compute_def_reachability

__all__ = [
    "ControlFlowGraph",
    "build_cfg",
    "DominatorTree",
    "compute_dominators",
    "LivenessInfo",
    "compute_liveness",
    "Loop",
    "LoopForest",
    "find_loops",
    "BasicIV",
    "MergeCandidate",
    "find_basic_ivs",
    "find_merge_candidates",
    "DefReachability",
    "compute_def_reachability",
]
