"""TK ISA: instruction set, programs, and builders."""

from repro.isa.instructions import (
    Instruction,
    Opcode,
    StoreKind,
    ALU_RI_OPS,
    ALU_RR_OPS,
    BRANCH_OPS,
    MEMORY_OPS,
    TERMINATOR_OPS,
)
from repro.isa.program import BasicBlock, Program, ProgramError
from repro.isa.builder import ProgramBuilder
from repro.isa.registers import Reg, RegisterFile, DEFAULT_REGISTER_FILE
from repro.isa.pretty import format_instruction, format_program, summarize_program

__all__ = [
    "Instruction",
    "Opcode",
    "StoreKind",
    "ALU_RI_OPS",
    "ALU_RR_OPS",
    "BRANCH_OPS",
    "MEMORY_OPS",
    "TERMINATOR_OPS",
    "BasicBlock",
    "Program",
    "ProgramError",
    "ProgramBuilder",
    "Reg",
    "RegisterFile",
    "DEFAULT_REGISTER_FILE",
    "format_instruction",
    "format_program",
    "summarize_program",
]
