"""Program and basic-block containers for the TK ISA.

A :class:`Program` is a single function: an ordered list of basic blocks
with label-based control flow. The compiler passes mutate programs in
place; :meth:`Program.validate` checks structural invariants after every
pass (tests lean on this heavily).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import Reg, RegisterFile, DEFAULT_REGISTER_FILE


class ProgramError(Exception):
    """Raised when a program violates a structural invariant."""


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator.

    Blocks created mid-construction may temporarily lack a terminator;
    :meth:`Program.validate` enforces termination on finished programs.
    """

    __slots__ = ("label", "instructions")

    def __init__(self, label: str, instructions: Optional[list[Instruction]] = None):
        self.label = label
        self.instructions: list[Instruction] = list(instructions or [])

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def body(self) -> list[Instruction]:
        """Instructions excluding the terminator."""
        term = self.terminator
        if term is None:
            return list(self.instructions)
        return self.instructions[:-1]

    def successors(self) -> tuple[str, ...]:
        term = self.terminator
        if term is None:
            return ()
        return term.targets

    def insert_before_terminator(self, instrs: Iterable[Instruction]) -> None:
        """Insert instructions just before the block terminator."""
        new = list(instrs)
        if not new:
            return
        if self.terminator is None:
            self.instructions.extend(new)
        else:
            self.instructions[-1:-1] = new

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"BasicBlock({self.label!r}, {len(self.instructions)} instrs)"


class Program:
    """A single-function TK program.

    Attributes:
        name: human-readable program name.
        blocks: ordered blocks; ``blocks[0]`` is the entry block.
        live_in: registers holding meaningful values at entry (function
            arguments / pre-initialised pointers); the resilience runtime
            checkpoints these at startup so any region can recover.
        num_virtual_regs: high-water mark for virtual register numbering.
    """

    def __init__(self, name: str, register_file: RegisterFile = DEFAULT_REGISTER_FILE):
        self.name = name
        self.register_file = register_file
        self.blocks: list[BasicBlock] = []
        self._block_index: dict[str, BasicBlock] = {}
        self.live_in: set[Reg] = set()
        self.num_virtual_regs = 0

    # -- block management --------------------------------------------------

    def add_block(self, label: str) -> BasicBlock:
        if label in self._block_index:
            raise ProgramError(f"duplicate block label {label!r}")
        block = BasicBlock(label)
        self.blocks.append(block)
        self._block_index[label] = block
        return block

    def block(self, label: str) -> BasicBlock:
        try:
            return self._block_index[label]
        except KeyError:
            raise ProgramError(f"no block labelled {label!r}") from None

    def has_block(self, label: str) -> bool:
        return label in self._block_index

    def insert_block_after(self, after: str, label: str) -> BasicBlock:
        """Create a new block positioned immediately after ``after``."""
        if label in self._block_index:
            raise ProgramError(f"duplicate block label {label!r}")
        block = BasicBlock(label)
        pos = self.blocks.index(self._block_index[after])
        self.blocks.insert(pos + 1, block)
        self._block_index[label] = block
        return block

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ProgramError("program has no blocks")
        return self.blocks[0]

    # -- register management -------------------------------------------------

    def fresh_vreg(self) -> Reg:
        """Allocate a fresh virtual register."""
        reg = Reg.virt(self.num_virtual_regs)
        self.num_virtual_regs += 1
        return reg

    def note_vreg(self, reg: Reg) -> None:
        """Record an externally-created virtual register number."""
        if reg.is_virtual and reg.index >= self.num_virtual_regs:
            self.num_virtual_regs = reg.index + 1

    # -- iteration -------------------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        """All instructions in block order."""
        for block in self.blocks:
            yield from block.instructions

    def instructions_with_blocks(self) -> Iterator[tuple[BasicBlock, Instruction]]:
        for block in self.blocks:
            for instr in block.instructions:
                yield block, instr

    def all_registers(self) -> set[Reg]:
        regs: set[Reg] = set(self.live_in)
        for instr in self.instructions():
            if instr.dest is not None:
                regs.add(instr.dest)
            regs.update(instr.srcs)
        return regs

    @property
    def static_size_bytes(self) -> int:
        """Binary size of the program, for the Figure 26 code-size study."""
        return sum(i.encoded_size for i in self.instructions())

    @property
    def num_instructions(self) -> int:
        return sum(len(b) for b in self.blocks)

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise :class:`ProgramError` if broken.

        Invariants:
          * every block ends with exactly one terminator, which is its last
            instruction;
          * all branch targets name existing blocks;
          * at least one RET is reachable (the program can finish);
          * no instruction appears twice (uids unique).
        """
        if not self.blocks:
            raise ProgramError("program has no blocks")
        seen_uids: set[int] = set()
        has_ret = False
        for block in self.blocks:
            if not block.instructions:
                raise ProgramError(f"block {block.label!r} is empty")
            term = block.instructions[-1]
            if not term.is_terminator:
                raise ProgramError(
                    f"block {block.label!r} does not end in a terminator "
                    f"(ends with {term!r})"
                )
            for pos, instr in enumerate(block.instructions):
                if instr.uid in seen_uids:
                    raise ProgramError(
                        f"instruction {instr!r} appears twice in the program"
                    )
                seen_uids.add(instr.uid)
                if instr.is_terminator and pos != len(block.instructions) - 1:
                    raise ProgramError(
                        f"terminator {instr!r} mid-block in {block.label!r}"
                    )
                for target in instr.targets:
                    if target not in self._block_index:
                        raise ProgramError(
                            f"{instr!r} targets unknown block {target!r}"
                        )
            if term.op is Opcode.RET:
                has_ret = True
        if not has_ret:
            raise ProgramError("program has no RET")

    def copy(self) -> "Program":
        """Structural deep copy (fresh instruction objects)."""
        clone = Program(self.name, self.register_file)
        clone.live_in = set(self.live_in)
        clone.num_virtual_regs = self.num_virtual_regs
        for block in self.blocks:
            new_block = clone.add_block(block.label)
            new_block.instructions = [i.copy() for i in block.instructions]
        return clone

    def __repr__(self) -> str:
        return (
            f"Program({self.name!r}, blocks={len(self.blocks)}, "
            f"instrs={self.num_instructions})"
        )
