"""Human-readable dumps of TK programs.

Used by examples and by developers debugging compiler passes; the format
annotates region ids and store kinds so the effect of each Turnpike pass
is visible at a glance.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program


def format_instruction(instr: Instruction) -> str:
    """One-line rendering of an instruction with resilience annotations."""
    text = repr(instr)
    notes = []
    if instr.region_id is not None:
        notes.append(f"R{instr.region_id}")
    if instr.store_kind is not None and instr.op is Opcode.ST:
        notes.append(instr.store_kind.value)
    if instr.annotations.get("scheduled"):
        notes.append("sched")
    if notes:
        return f"{text:<40} ; {' '.join(notes)}"
    return text


def format_program(program: Program, include_regions: bool = True) -> str:
    """Full program listing, one block per paragraph."""
    lines: list[str] = [f"; program {program.name}"]
    if program.live_in:
        regs = ", ".join(r.name for r in sorted(program.live_in))
        lines.append(f"; live-in: {regs}")
    for block in program.blocks:
        lines.append(f"{block.label}:")
        for instr in block.instructions:
            if instr.is_boundary and include_regions:
                lines.append(f"  ; ---- region boundary (R{instr.region_id}) ----")
                continue
            lines.append("  " + format_instruction(instr))
    return "\n".join(lines)


def summarize_program(program: Program) -> dict[str, int]:
    """Static instruction-mix summary used in tests and examples."""
    counts = {
        "blocks": len(program.blocks),
        "instructions": 0,
        "loads": 0,
        "stores": 0,
        "checkpoints": 0,
        "boundaries": 0,
        "branches": 0,
        "bytes": program.static_size_bytes,
    }
    for instr in program.instructions():
        counts["instructions"] += 1
        if instr.is_load:
            counts["loads"] += 1
        elif instr.op is Opcode.ST:
            counts["stores"] += 1
        elif instr.is_checkpoint:
            counts["checkpoints"] += 1
        elif instr.is_boundary:
            counts["boundaries"] += 1
        elif instr.is_branch:
            counts["branches"] += 1
    return counts
