"""Register model for the TK (Turnpike kernel) ISA.

The compiler works on an unbounded set of *virtual* registers; register
allocation rewrites a program to use the *physical* register file of the
target in-order core (32 general-purpose registers, mirroring ARM
Cortex-A53's AArch64 integer file that the paper models).

Registers are interned: ``Reg.virt(7)`` always returns the same object, so
identity comparison and hashing are cheap in the hot analysis loops.
"""

from __future__ import annotations


class Reg:
    """A virtual or physical register operand.

    Attributes:
        index: register number within its class.
        is_virtual: True for compiler temporaries (``v<N>``), False for
            architectural registers (``r<N>``).
    """

    __slots__ = ("index", "is_virtual")

    _virt_pool: dict[int, "Reg"] = {}
    _phys_pool: dict[int, "Reg"] = {}

    def __init__(self, index: int, is_virtual: bool):
        self.index = index
        self.is_virtual = is_virtual

    @classmethod
    def virt(cls, index: int) -> "Reg":
        """Return the interned virtual register ``v<index>``."""
        reg = cls._virt_pool.get(index)
        if reg is None:
            reg = cls(index, True)
            cls._virt_pool[index] = reg
        return reg

    @classmethod
    def phys(cls, index: int) -> "Reg":
        """Return the interned physical register ``r<index>``."""
        reg = cls._phys_pool.get(index)
        if reg is None:
            reg = cls(index, False)
            cls._phys_pool[index] = reg
        return reg

    @property
    def name(self) -> str:
        prefix = "v" if self.is_virtual else "r"
        return f"{prefix}{self.index}"

    def __repr__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return (self.index << 1) | (1 if self.is_virtual else 0)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Reg):
            return NotImplemented
        return self.index == other.index and self.is_virtual == other.is_virtual

    def __lt__(self, other: "Reg") -> bool:
        return (self.is_virtual, self.index) < (other.is_virtual, other.index)


class RegisterFile:
    """Description of a physical register file.

    The default mirrors the paper's Cortex-A53 target: 32 integer
    registers, of which a few are reserved for the stack pointer and the
    zero register, leaving the rest allocatable.
    """

    def __init__(self, num_registers: int = 32, reserved: tuple[int, ...] = (0, 29)):
        if num_registers < 4:
            raise ValueError("register file needs at least 4 registers")
        for idx in reserved:
            if not 0 <= idx < num_registers:
                raise ValueError(f"reserved register r{idx} out of range")
        self.num_registers = num_registers
        self.reserved = tuple(sorted(set(reserved)))

    @property
    def zero(self) -> Reg:
        """The hardwired-zero register (r0 by convention)."""
        return Reg.phys(0)

    @property
    def stack_pointer(self) -> Reg:
        """The stack pointer used for spill slots (r29 by convention)."""
        return Reg.phys(self.reserved[-1])

    @property
    def allocatable(self) -> list[Reg]:
        """Physical registers available to the register allocator."""
        return [
            Reg.phys(i)
            for i in range(self.num_registers)
            if i not in self.reserved
        ]

    def __repr__(self) -> str:
        return (
            f"RegisterFile(num_registers={self.num_registers}, "
            f"reserved={self.reserved})"
        )


DEFAULT_REGISTER_FILE = RegisterFile()
