"""Fluent construction API for TK programs.

Workload kernels and tests build programs through :class:`ProgramBuilder`,
which hands out fresh virtual registers and keeps track of the block being
appended to::

    b = ProgramBuilder("dot")
    b.begin_block("entry")
    acc = b.li(0)
    i = b.li(0)
    ...
"""

from __future__ import annotations

from typing import Optional

from repro.isa import instructions as ins
from repro.isa.instructions import Instruction, Opcode, StoreKind
from repro.isa.program import BasicBlock, Program
from repro.isa.registers import Reg, RegisterFile, DEFAULT_REGISTER_FILE


class ProgramBuilder:
    """Incrementally constructs a :class:`Program` in virtual registers."""

    def __init__(self, name: str, register_file: RegisterFile = DEFAULT_REGISTER_FILE):
        self.program = Program(name, register_file)
        self._current: Optional[BasicBlock] = None
        self._label_counter = 0

    # -- blocks ---------------------------------------------------------------

    def begin_block(self, label: Optional[str] = None) -> str:
        """Start (and switch to) a new block; returns its label."""
        if label is None:
            label = self.fresh_label()
        self._current = self.program.add_block(label)
        return label

    def switch_to(self, label: str) -> None:
        """Resume appending to an existing block."""
        self._current = self.program.block(label)

    def fresh_label(self, hint: str = "bb") -> str:
        while True:
            label = f"{hint}{self._label_counter}"
            self._label_counter += 1
            if not self.program.has_block(label):
                return label

    @property
    def current_label(self) -> str:
        return self._require_block().label

    def _require_block(self) -> BasicBlock:
        if self._current is None:
            raise RuntimeError("no current block; call begin_block() first")
        return self._current

    def emit(self, instr: Instruction) -> Instruction:
        self._require_block().instructions.append(instr)
        return instr

    # -- registers -------------------------------------------------------------

    def vreg(self) -> Reg:
        return self.program.fresh_vreg()

    def live_in(self) -> Reg:
        """Allocate a vreg that carries a meaningful value at entry."""
        reg = self.vreg()
        self.program.live_in.add(reg)
        return reg

    # -- ALU ---------------------------------------------------------------------

    def _rr(self, op: Opcode, lhs: Reg, rhs: Reg, dest: Optional[Reg]) -> Reg:
        dest = dest or self.vreg()
        self.emit(ins.alu_rr(op, dest, lhs, rhs))
        return dest

    def add(self, lhs: Reg, rhs: Reg, dest: Optional[Reg] = None) -> Reg:
        return self._rr(Opcode.ADD, lhs, rhs, dest)

    def sub(self, lhs: Reg, rhs: Reg, dest: Optional[Reg] = None) -> Reg:
        return self._rr(Opcode.SUB, lhs, rhs, dest)

    def mul(self, lhs: Reg, rhs: Reg, dest: Optional[Reg] = None) -> Reg:
        return self._rr(Opcode.MUL, lhs, rhs, dest)

    def div(self, lhs: Reg, rhs: Reg, dest: Optional[Reg] = None) -> Reg:
        return self._rr(Opcode.DIV, lhs, rhs, dest)

    def rem(self, lhs: Reg, rhs: Reg, dest: Optional[Reg] = None) -> Reg:
        return self._rr(Opcode.REM, lhs, rhs, dest)

    def and_(self, lhs: Reg, rhs: Reg, dest: Optional[Reg] = None) -> Reg:
        return self._rr(Opcode.AND, lhs, rhs, dest)

    def or_(self, lhs: Reg, rhs: Reg, dest: Optional[Reg] = None) -> Reg:
        return self._rr(Opcode.OR, lhs, rhs, dest)

    def xor(self, lhs: Reg, rhs: Reg, dest: Optional[Reg] = None) -> Reg:
        return self._rr(Opcode.XOR, lhs, rhs, dest)

    def shl(self, lhs: Reg, rhs: Reg, dest: Optional[Reg] = None) -> Reg:
        return self._rr(Opcode.SHL, lhs, rhs, dest)

    def shr(self, lhs: Reg, rhs: Reg, dest: Optional[Reg] = None) -> Reg:
        return self._rr(Opcode.SHR, lhs, rhs, dest)

    def slt(self, lhs: Reg, rhs: Reg, dest: Optional[Reg] = None) -> Reg:
        return self._rr(Opcode.SLT, lhs, rhs, dest)

    def seq(self, lhs: Reg, rhs: Reg, dest: Optional[Reg] = None) -> Reg:
        return self._rr(Opcode.SEQ, lhs, rhs, dest)

    def _ri(self, op: Opcode, src: Reg, imm: int, dest: Optional[Reg]) -> Reg:
        dest = dest or self.vreg()
        self.emit(ins.alu_ri(op, dest, src, imm))
        return dest

    def addi(self, src: Reg, imm: int, dest: Optional[Reg] = None) -> Reg:
        return self._ri(Opcode.ADDI, src, imm, dest)

    def muli(self, src: Reg, imm: int, dest: Optional[Reg] = None) -> Reg:
        return self._ri(Opcode.MULI, src, imm, dest)

    def andi(self, src: Reg, imm: int, dest: Optional[Reg] = None) -> Reg:
        return self._ri(Opcode.ANDI, src, imm, dest)

    def shli(self, src: Reg, imm: int, dest: Optional[Reg] = None) -> Reg:
        return self._ri(Opcode.SHLI, src, imm, dest)

    def shri(self, src: Reg, imm: int, dest: Optional[Reg] = None) -> Reg:
        return self._ri(Opcode.SHRI, src, imm, dest)

    def li(self, imm: int, dest: Optional[Reg] = None) -> Reg:
        dest = dest or self.vreg()
        self.emit(ins.li(dest, imm))
        return dest

    def mov(self, src: Reg, dest: Optional[Reg] = None) -> Reg:
        dest = dest or self.vreg()
        self.emit(ins.mov(dest, src))
        return dest

    # -- memory --------------------------------------------------------------

    def load(self, base: Reg, offset: int = 0, dest: Optional[Reg] = None) -> Reg:
        dest = dest or self.vreg()
        self.emit(ins.load(dest, base, offset))
        return dest

    def store(
        self,
        value: Reg,
        base: Reg,
        offset: int = 0,
        kind: StoreKind = StoreKind.APPLICATION,
    ) -> Instruction:
        return self.emit(ins.store(value, base, offset, kind))

    # -- control flow -----------------------------------------------------------

    def branch(
        self, op: Opcode, lhs: Reg, rhs: Reg, taken: str, fallthrough: str
    ) -> Instruction:
        return self.emit(ins.branch(op, lhs, rhs, taken, fallthrough))

    def beq(self, lhs: Reg, rhs: Reg, taken: str, fallthrough: str) -> Instruction:
        return self.branch(Opcode.BEQ, lhs, rhs, taken, fallthrough)

    def bne(self, lhs: Reg, rhs: Reg, taken: str, fallthrough: str) -> Instruction:
        return self.branch(Opcode.BNE, lhs, rhs, taken, fallthrough)

    def blt(self, lhs: Reg, rhs: Reg, taken: str, fallthrough: str) -> Instruction:
        return self.branch(Opcode.BLT, lhs, rhs, taken, fallthrough)

    def bge(self, lhs: Reg, rhs: Reg, taken: str, fallthrough: str) -> Instruction:
        return self.branch(Opcode.BGE, lhs, rhs, taken, fallthrough)

    def jmp(self, target: str) -> Instruction:
        return self.emit(ins.jump(target))

    def ret(self) -> Instruction:
        return self.emit(ins.ret())

    # -- finishing ---------------------------------------------------------------

    def finish(self) -> Program:
        """Validate and return the constructed program."""
        self.program.validate()
        return self.program
