"""Store-buffer-aware region partitioning (Turnstile, Section 2.1).

The compiler divides the program into verifiable/recoverable regions so
that no path through a region commits more stores than half the store
buffer capacity (so a region's verification can overlap its successor's
execution, Section 4.3.1). Region boundaries are also forced at loop
headers (footnote 2 in the paper) so each loop iteration is independently
recoverable — except that store-free inner loops may legally stay inside
one region, which is what gives LICM checkpoint sinking its win.

A region boundary is represented by a BOUNDARY pseudo-instruction; every
instruction is tagged with the ``region_id`` of the static region it
belongs to. Dynamic regions are delimited at run time each time a
BOUNDARY commits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import build_cfg
from repro.analysis.dominators import compute_dominators
from repro.analysis.loops import find_loops
from repro.isa.instructions import Instruction, Opcode, boundary
from repro.isa.program import Program


@dataclass
class RegionInfo:
    """Static description of one region produced by the partitioner."""

    region_id: int
    start_block: str
    max_stores_on_path: int = 0
    instruction_count: int = 0
    blocks: set[str] = field(default_factory=set)


@dataclass
class PartitionResult:
    """Outcome of region partitioning for one program."""

    regions: dict[int, RegionInfo]
    boundaries_inserted: int

    @property
    def num_regions(self) -> int:
        return len(self.regions)


def _loop_has_regular_store(program: Program, body: set[str]) -> bool:
    for label in body:
        for instr in program.block(label).instructions:
            if instr.is_store:
                return True
    return False


def _loop_has_predicted_unit(body: set[str], program: Program, predicted: set[int]) -> bool:
    for label in body:
        for instr in program.block(label).instructions:
            if instr.uid in predicted:
                return True
    return False


def _scratch_live_positions(block, scratch_regs: set) -> list[bool]:
    """``out[pos]`` is True when a spill scratch register is live entering
    position ``pos`` — i.e. a boundary inserted there would split a spill
    reload/store group."""
    n = len(block.instructions)
    out = [False] * (n + 1)
    live: set = set()
    for pos in range(n - 1, -1, -1):
        instr = block.instructions[pos]
        if instr.dest is not None and instr.dest in scratch_regs:
            live.discard(instr.dest)
        for src in instr.srcs:
            if src in scratch_regs:
                live.add(src)
        out[pos] = bool(live)
    return out


def _loop_is_sinkable(cfg, loop) -> bool:
    """Can LICM move all of this loop's checkpoints to its exits?

    Mirrors the safety test in :mod:`repro.compiler.licm`: every exit
    block must be reached only from inside the loop.
    """
    if not loop.exits:
        return False
    return all(
        all(pred in loop.body for pred in cfg.preds(exit_label))
        for exit_label in loop.exits
    )


def partition_regions(
    program: Program,
    max_stores: int,
    predicted_ckpt_defs: set[int] | None = None,
    licm_sinking: bool = False,
) -> PartitionResult:
    """Insert region boundaries and assign ``region_id`` tags in place.

    ``predicted_ckpt_defs`` holds uids of definitions expected to receive
    an eager checkpoint; each counts as one store unit toward the region
    cap, so that checkpoints inserted later still fit in the store buffer
    (the paper's Figure 1 caps regions counting checkpoint stores too).

    The algorithm walks blocks in reverse postorder carrying the
    worst-case (path-insensitive) store count into each block:

      * the entry block begins region 0 with a BOUNDARY;
      * a block that is a header of a loop containing at least one store
        starts a new region (boundary at the top);
      * a block whose predecessors disagree on the current region, or
        whose incoming worst-case store count would allow the cap to be
        exceeded mid-block, gets boundaries inserted exactly where the
        running count would exceed ``max_stores``.

    Returns static region metadata used by the experiments (Figure 26's
    region-size study reads ``instruction_count`` per region).
    """
    if max_stores < 1:
        raise ValueError("max_stores must be >= 1")
    predicted = predicted_ckpt_defs or set()
    # Blocks of loops whose checkpoints LICM will sink to the exits;
    # their predicted units do not occupy store-buffer entries in place.
    relaxed_blocks: set[str] = set()

    def store_units(instr: Instruction, label: str) -> int:
        units = 1 if instr.is_store else 0
        if instr.uid in predicted and label not in relaxed_blocks:
            units += 1
        return units

    cfg = build_cfg(program)
    dom = compute_dominators(cfg)
    loops = find_loops(cfg, dom)

    # Loop headers that must start a region: loops whose body allocates
    # store-buffer entries every iteration (regular stores, or predicted
    # checkpoints of live-out definitions). Without a per-iteration
    # boundary such a loop would pile an unbounded number of quarantined
    # entries into one region. Exception: when LICM checkpoint sinking is
    # enabled, a loop with no regular stores keeps its checkpoints only
    # until the sinking pass moves them to the loop exits, so the region
    # may safely span the whole loop (this is what creates the Figure 10
    # opportunity).
    forced_headers: set[str] = set()
    for header, loop in loops.loops.items():
        has_store = _loop_has_regular_store(program, loop.body)
        has_unit = has_store or _loop_has_predicted_unit(
            loop.body, program, predicted
        )
        if not has_unit:
            continue
        if (
            licm_sinking
            and not has_store
            and _loop_is_sinkable(cfg, loop)
        ):
            relaxed_blocks.update(loop.body)
            continue
        forced_headers.add(header)

    from repro.compiler.regalloc import scratch_registers

    scratch_regs = set(scratch_registers(program.register_file))

    rpo = cfg.reverse_postorder()
    next_region = 0
    regions: dict[int, RegionInfo] = {}
    boundaries = 0

    def new_region(start_block: str) -> int:
        nonlocal next_region, boundaries
        rid = next_region
        next_region += 1
        regions[rid] = RegionInfo(region_id=rid, start_block=start_block)
        boundaries += 1
        return rid

    # State propagated along edges: (region_id, worst-case stores so far).
    incoming: dict[str, list[tuple[int, int]]] = {label: [] for label in rpo}

    for label in rpo:
        block = cfg.block(label)
        states = incoming[label]
        starts_new = False
        if label == cfg.entry:
            starts_new = True
        elif label in forced_headers:
            starts_new = True
        elif not states:
            # Unreachable-from-entry in RPO terms (shouldn't happen) or a
            # join reached only by back edges; be safe.
            starts_new = True
        else:
            rids = {rid for rid, _ in states}
            if len(rids) > 1:
                # Predecessors in different regions: join point must start
                # a fresh region so the region id is path-independent.
                starts_new = True

        if starts_new:
            rid = new_region(label)
            count = 0
            marker = boundary()
            marker.region_id = rid
            block.instructions.insert(0, marker)
        else:
            rid = states[0][0]
            count = max(c for _, c in states)

        # Positions where a boundary may NOT be inserted: while one of the
        # spill scratch registers holds a live value, splitting would make
        # the scratch register a region live-in, which recovery cannot
        # restore (scratch values are never checkpointed). Spill rewrite
        # groups (reload / op / spill-store) are short and contiguous, so
        # pushing the split back to the nearest scratch-dead position is
        # always possible and moves at most a few instructions.
        scratch_live = _scratch_live_positions(block, scratch_regs)

        # Walk the block, splitting when the store cap would be exceeded.
        idx = 0
        while idx < len(block.instructions):
            instr = block.instructions[idx]
            if instr.is_boundary:
                instr.region_id = rid
                regions[rid].blocks.add(label)
                idx += 1
                continue
            units = store_units(instr, label)
            if units and count + units > max_stores:
                split_at = idx
                while split_at > 0 and scratch_live[split_at]:
                    split_at -= 1
                rid = new_region(label)
                marker = boundary()
                marker.region_id = rid
                block.instructions.insert(split_at, marker)
                scratch_live.insert(split_at, False)
                idx += 1
                # Re-tag instructions dragged into the new region and
                # recount their store units.
                count = 0
                for pos in range(split_at + 1, idx):
                    moved = block.instructions[pos]
                    old_rid = moved.region_id
                    if old_rid is not None and old_rid in regions:
                        regions[old_rid].instruction_count -= 1
                    moved.region_id = rid
                    regions[rid].blocks.add(label)
                    regions[rid].instruction_count += 1
                    count += store_units(moved, label)
                instr = block.instructions[idx]
            instr.region_id = rid
            regions[rid].blocks.add(label)
            regions[rid].instruction_count += 1
            if units:
                count += units
                regions[rid].max_stores_on_path = max(
                    regions[rid].max_stores_on_path, count
                )
            idx += 1

        for succ in cfg.succs(label):
            incoming.setdefault(succ, []).append((rid, count))

    program.validate()
    return PartitionResult(regions=regions, boundaries_inserted=boundaries)


def region_of_first_instruction(program: Program) -> int:
    for instr in program.instructions():
        if instr.region_id is not None:
            return instr.region_id
    raise ValueError("program has no region-tagged instructions")


def check_region_invariants(program: Program, max_stores: int) -> list[str]:
    """Verify partitioning invariants; returns a list of violations.

    Checks (used by tests):
      * every instruction has a region id;
      * within a basic block, the region id only changes at BOUNDARY
        markers;
      * no straight-line run within one region of one block exceeds the
        store cap (a per-path global check is performed dynamically by the
        resilient machine, which is the authoritative check).
    """
    problems: list[str] = []
    for block in program.blocks:
        current: int | None = None
        stores = 0
        for instr in block.instructions:
            if instr.region_id is None:
                problems.append(f"{block.label}: {instr!r} has no region id")
                continue
            if instr.is_boundary:
                current = instr.region_id
                stores = 0
                continue
            if current is None:
                current = instr.region_id
            elif instr.region_id != current:
                problems.append(
                    f"{block.label}: region changed {current}->{instr.region_id} "
                    f"without a boundary at {instr!r}"
                )
                current = instr.region_id
                stores = 0
            if instr.is_store:
                stores += 1
                if stores > max_stores:
                    problems.append(
                        f"{block.label}: region {current} has {stores} stores "
                        f"in-block (cap {max_stores})"
                    )
    return problems
