"""Eager checkpointing of live-out registers (Turnstile, Section 2.2).

For every definition whose register is *live across a region boundary*
(i.e. consumed as the input of some later region), a ``CKPT`` store is
inserted immediately after the definition. Registers alive at program
entry are assumed to have been checkpointed by the caller's earlier
regions (the resilient machine pre-verifies their checkpoint storage), so
no entry checkpoints are emitted.

The analysis here — "live across boundary" (LAB) — runs backward like
liveness, but a register only enters the LAB set at a BOUNDARY
instruction, where every currently-live register is by definition an
input of the region that starts there.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import ControlFlowGraph, build_cfg
from repro.isa.instructions import Instruction, checkpoint
from repro.isa.program import Program
from repro.isa.registers import Reg


@dataclass
class CheckpointStats:
    """Result of an eager-checkpointing run."""

    inserted: int
    regions_touched: int


class LiveAcrossBoundary:
    """Joint liveness / live-across-boundary backward dataflow.

    ``lab_in[label]`` holds the registers that, at the top of the block,
    will flow into some later region boundary without being redefined.
    """

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        self.live_in: dict[str, set[Reg]] = {}
        self.lab_in: dict[str, set[Reg]] = {}
        self._compute()

    def _transfer_block(
        self, label: str, live: set[Reg], lab: set[Reg]
    ) -> tuple[set[Reg], set[Reg]]:
        """Propagate (live, lab) backward through one block."""
        block = self.cfg.block(label)
        for instr in reversed(block.instructions):
            if instr.is_boundary:
                # Everything live at this point crosses into the region
                # that starts here, so it needs a checkpoint upstream.
                lab = set(live)
                continue
            if instr.dest is not None:
                live.discard(instr.dest)
                lab.discard(instr.dest)
            live.update(instr.srcs)
        return live, lab

    def _compute(self) -> None:
        order = self.cfg.postorder()
        # Every block gets (empty) entry sets so unreachable blocks can be
        # queried without raising; only reachable blocks join the fixpoint.
        for block in self.cfg.program.blocks:
            self.live_in[block.label] = set()
            self.lab_in[block.label] = set()
        changed = True
        while changed:
            changed = False
            for label in order:
                live: set[Reg] = set()
                lab: set[Reg] = set()
                for succ in self.cfg.succs(label):
                    live |= self.live_in.get(succ, set())
                    lab |= self.lab_in.get(succ, set())
                live, lab = self._transfer_block(label, live, lab)
                if live != self.live_in[label]:
                    self.live_in[label] = live
                    changed = True
                if lab != self.lab_in[label]:
                    self.lab_in[label] = lab
                    changed = True

    def per_instruction_lab_after(
        self, label: str
    ) -> list[tuple[Instruction, set[Reg]]]:
        """(instr, LAB-after-instr) pairs in program order for one block."""
        live: set[Reg] = set()
        lab: set[Reg] = set()
        for succ in self.cfg.succs(label):
            live |= self.live_in.get(succ, set())
            lab |= self.lab_in.get(succ, set())
        block = self.cfg.block(label)
        result: list[tuple[Instruction, set[Reg]]] = []
        for instr in reversed(block.instructions):
            result.append((instr, set(lab)))
            if instr.is_boundary:
                lab = set(live)
                continue
            if instr.dest is not None:
                live.discard(instr.dest)
                lab.discard(instr.dest)
            live.update(instr.srcs)
        result.reverse()
        return result


def insert_eager_checkpoints(program: Program) -> CheckpointStats:
    """Insert ``CKPT`` stores after every region-live-out definition.

    The program must already be region-partitioned (BOUNDARY markers and
    ``region_id`` tags present). Checkpoints inherit the region id of
    their defining instruction, exactly as eager checkpointing places them
    in the same region as the update.
    """
    cfg = build_cfg(program)
    lab = LiveAcrossBoundary(cfg)
    inserted = 0
    regions: set[int] = set()
    reachable = cfg.reachable_blocks()
    for block in program.blocks:
        if block.label not in reachable:
            continue  # dead code never reaches a boundary at run time
        pairs = lab.per_instruction_lab_after(block.label)
        # Collect insertion points first; then splice, back to front, so
        # positions stay valid.
        points: list[tuple[int, Reg, int | None]] = []
        for pos, (instr, lab_after) in enumerate(pairs):
            dest = instr.dest
            if dest is None or instr.is_boundary:
                continue
            if dest in lab_after:
                points.append((pos, dest, instr.region_id))
        for pos, reg, region_id in reversed(points):
            ck = checkpoint(reg)
            ck.region_id = region_id
            block.instructions.insert(pos + 1, ck)
            inserted += 1
            if region_id is not None:
                regions.add(region_id)
    return CheckpointStats(inserted=inserted, regions_touched=len(regions))


def predict_checkpoint_defs(program: Program) -> set[int]:
    """Estimate which definitions will receive checkpoints, pre-partitioning.

    Used by the driver to budget region store capacity before boundaries
    exist. The over-approximation — a def is counted if its register stays
    live past the def and is not redefined later in the same block —
    mirrors the path-insensitive conservatism the paper attributes to the
    Turnstile partitioner.
    """
    from repro.analysis.liveness import compute_liveness

    cfg = build_cfg(program)
    liveness = compute_liveness(cfg)
    predicted: set[int] = set()
    for block in program.blocks:
        live_out = liveness.live_out[block.label]
        last_def_pos: dict[Reg, int] = {}
        for pos, instr in enumerate(block.instructions):
            if instr.dest is not None:
                last_def_pos[instr.dest] = pos
        for pos, instr in enumerate(block.instructions):
            dest = instr.dest
            if dest is None:
                continue
            # Predict a checkpoint for the last in-block definition of a
            # register that escapes the block: region boundaries mostly
            # fall at block granularity, so block live-outs approximate
            # region live-outs well (intra-block temporaries do not count).
            if last_def_pos.get(dest) == pos and dest in live_out:
                predicted.add(instr.uid)
    return predicted


def strip_resilience(program: Program) -> int:
    """Remove all BOUNDARY and CKPT instructions; clear region tags.

    Returns the number of instructions removed. Used when re-deriving a
    partition (e.g. comparing SB sizes on the same source program).
    """
    removed = 0
    for block in program.blocks:
        kept: list[Instruction] = []
        for instr in block.instructions:
            if instr.is_boundary or instr.is_checkpoint:
                removed += 1
                continue
            instr.region_id = None
            kept.append(instr)
        block.instructions = kept
    return removed


def count_checkpoints(program: Program) -> int:
    return sum(1 for i in program.instructions() if i.is_checkpoint)
