"""The Turnpike compiler: region formation, checkpointing, optimizations."""

from repro.compiler.config import (
    CompilerConfig,
    figure21_configs,
    turnpike_config,
    turnstile_config,
)
from repro.compiler.pipeline import CompiledProgram, compile_baseline, compile_program
from repro.compiler.regions import (
    PartitionResult,
    RegionInfo,
    check_region_invariants,
    partition_regions,
)
from repro.compiler.checkpoints import (
    CheckpointStats,
    count_checkpoints,
    insert_eager_checkpoints,
    strip_resilience,
)
from repro.compiler.pruning import (
    PRUNED_ANNOTATION,
    PruningStats,
    RecoveryExpr,
    prune_checkpoints,
    pruned_definitions,
)
from repro.compiler.licm import LicmStats, sink_checkpoints
from repro.compiler.livm import LivmStats, merge_induction_variables
from repro.compiler.strength import StrengthReductionStats, reduce_strength
from repro.compiler.scheduling import SchedulingStats, schedule_program
from repro.compiler.regalloc import AllocationStats, allocate_registers
from repro.compiler.recovery import (
    RecoveryMap,
    RegionEntry,
    build_recovery_map,
    checkpoint_coverage_gaps,
)

__all__ = [
    "CompilerConfig",
    "figure21_configs",
    "turnpike_config",
    "turnstile_config",
    "CompiledProgram",
    "compile_baseline",
    "compile_program",
    "PartitionResult",
    "RegionInfo",
    "check_region_invariants",
    "partition_regions",
    "CheckpointStats",
    "count_checkpoints",
    "insert_eager_checkpoints",
    "strip_resilience",
    "PRUNED_ANNOTATION",
    "PruningStats",
    "RecoveryExpr",
    "prune_checkpoints",
    "pruned_definitions",
    "LicmStats",
    "sink_checkpoints",
    "LivmStats",
    "merge_induction_variables",
    "StrengthReductionStats",
    "reduce_strength",
    "SchedulingStats",
    "schedule_program",
    "AllocationStats",
    "allocate_registers",
    "RecoveryMap",
    "RegionEntry",
    "build_recovery_map",
    "checkpoint_coverage_gaps",
]
