"""Checkpoint-aware local instruction scheduling (Section 4.2).

In-order pipelines stall when a checkpoint store immediately follows the
instruction producing the checkpointed register (a RAW hazard whose cost
is the producer's full latency — painful after loads). The paper fills
that gap with independent instructions.

We implement classic list scheduling over the dependence DAG of each
straight-line segment (between BOUNDARY markers / block ends), with a
priority function that (a) favours long-critical-path instructions and
(b) deprioritises stores and checkpoints so they drift as late as their
dependences allow — equivalently, independent work is hoisted between a
definition and its dependent checkpoint.

Memory ordering is conservative: regular stores and loads keep their
relative order (unknown aliasing), while checkpoint stores only order
against themselves per register — checkpoint storage never aliases
program memory (the paper's footnote 3 makes the same argument for LLVM).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.isa.registers import Reg

# Static latency estimates used only for scheduling priorities.
_LATENCY = {
    Opcode.LD: 3,
    Opcode.MUL: 3,
    Opcode.MULI: 3,
    Opcode.DIV: 12,
    Opcode.REM: 12,
}


@dataclass
class SchedulingStats:
    segments: int
    reordered: int  # instructions whose position changed


def _segment_ranges(instrs: list[Instruction]) -> list[tuple[int, int]]:
    """Maximal scheduling segments: no BOUNDARY inside, terminator pinned."""
    ranges: list[tuple[int, int]] = []
    start = 0
    for pos, instr in enumerate(instrs):
        if instr.is_boundary:
            if pos > start:
                ranges.append((start, pos))
            start = pos + 1
        elif instr.is_terminator:
            if pos > start:
                ranges.append((start, pos))
            start = pos + 1
    if start < len(instrs):
        ranges.append((start, len(instrs)))
    return ranges


def _build_dag(segment: list[Instruction]) -> list[list[int]]:
    """Return successor lists; edge i -> j means j must follow i."""
    n = len(segment)
    succs: list[list[int]] = [[] for _ in range(n)]
    last_def: dict[Reg, int] = {}
    uses_since_def: dict[Reg, list[int]] = {}
    last_mem: int | None = None  # last regular store
    last_loads: list[int] = []  # loads since the last regular store
    last_ckpt_of: dict[Reg, int] = {}

    def add_edge(i: int, j: int) -> None:
        if i != j:
            succs[i].append(j)

    for j, instr in enumerate(segment):
        # RAW: every source depends on its last definition.
        for src in instr.srcs:
            if src in last_def:
                add_edge(last_def[src], j)
            uses_since_def.setdefault(src, []).append(j)
        dest = instr.dest
        if dest is not None:
            # WAW and WAR.
            if dest in last_def:
                add_edge(last_def[dest], j)
            for use in uses_since_def.get(dest, ()):  # WAR
                add_edge(use, j)
            last_def[dest] = j
            uses_since_def[dest] = []
        # Memory ordering.
        if instr.op is Opcode.ST:
            if last_mem is not None:
                add_edge(last_mem, j)
            for load in last_loads:
                add_edge(load, j)
            last_mem = j
            last_loads = []
        elif instr.op is Opcode.LD:
            if last_mem is not None:
                add_edge(last_mem, j)
            last_loads.append(j)
        elif instr.is_checkpoint:
            reg = instr.srcs[0]
            if reg in last_ckpt_of:
                add_edge(last_ckpt_of[reg], j)
            last_ckpt_of[reg] = j
    return succs


def _schedule_segment(segment: list[Instruction]) -> list[Instruction]:
    """List-schedule one segment; returns the new order."""
    n = len(segment)
    if n <= 2:
        return list(segment)
    succs = _build_dag(segment)
    indeg = [0] * n
    for i in range(n):
        for j in succs[i]:
            indeg[j] += 1
    # Critical-path height (latency-weighted longest path to any sink).
    height = [0] * n
    for i in range(n - 1, -1, -1):
        lat = _LATENCY.get(segment[i].op, 1)
        best = 0
        for j in succs[i]:
            if height[j] > best:
                best = height[j]
        height[i] = lat + best

    def priority(i: int) -> tuple[int, int, int]:
        instr = segment[i]
        # Stores/checkpoints sort after other ready instructions so
        # independent work fills the def-to-checkpoint gap; original
        # position breaks ties to keep the schedule stable.
        late = 1 if instr.is_store else 0
        return (late, -height[i], i)

    ready = sorted((i for i in range(n) if indeg[i] == 0), key=priority)
    order: list[int] = []
    while ready:
        i = ready.pop(0)
        order.append(i)
        changed = False
        for j in succs[i]:
            indeg[j] -= 1
            if indeg[j] == 0:
                ready.append(j)
                changed = True
        if changed:
            ready.sort(key=priority)
    if len(order) != n:
        raise AssertionError("scheduling DAG had a cycle")
    return [segment[i] for i in order]


def schedule_program(program: Program) -> SchedulingStats:
    """Reschedule every segment of every block, in place."""
    segments = 0
    reordered = 0
    for block in program.blocks:
        instrs = block.instructions
        for start, end in _segment_ranges(instrs):
            segment = instrs[start:end]
            new_order = _schedule_segment(segment)
            if new_order != segment:
                for instr in new_order:
                    instr.annotations["scheduled"] = True
                reordered += sum(
                    1 for a, b in zip(segment, new_order) if a is not b
                )
                instrs[start:end] = new_order
            segments += 1
    return SchedulingStats(segments=segments, reordered=reordered)
