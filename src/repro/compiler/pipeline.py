"""The Turnpike compilation pipeline.

Runs the passes in the paper's order on a virtual-register program:

1. strength reduction (standard -O3 behaviour, both schemes);
2. loop induction variable merging (LIVM, Turnpike only);
3. register allocation (store-aware under Turnpike);
4. SB-aware region partitioning (with checkpoint budget prediction);
5. eager checkpointing of region-live-out registers;
6. optimal checkpoint pruning (Turnpike only);
7. LICM checkpoint sinking (Turnpike only);
8. checkpoint-aware instruction scheduling (Turnpike only).

:func:`compile_program` returns a :class:`CompiledProgram` carrying the
transformed code, the recovery map, and per-pass statistics that the
experiment harness aggregates into the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.checkpoints import (
    CheckpointStats,
    count_checkpoints,
    insert_eager_checkpoints,
    predict_checkpoint_defs,
)
from repro.compiler.config import CompilerConfig
from repro.compiler.licm import LicmStats, sink_checkpoints
from repro.compiler.livm import LivmStats, merge_induction_variables
from repro.compiler.pruning import PruningStats, prune_checkpoints
from repro.compiler.recovery import RecoveryMap, build_recovery_map
from repro.compiler.regalloc import AllocationStats, allocate_registers
from repro.compiler.regions import PartitionResult, partition_regions
from repro.compiler.scheduling import SchedulingStats, schedule_program
from repro.compiler.strength import StrengthReductionStats, reduce_strength
from repro.isa.program import Program


@dataclass
class CompiledProgram:
    """A program compiled for a resilience scheme, plus metadata."""

    program: Program
    config: CompilerConfig
    partition: PartitionResult | None
    recovery: RecoveryMap | None
    stats: dict[str, object] = field(default_factory=dict)

    @property
    def num_static_checkpoints(self) -> int:
        return count_checkpoints(self.program)

    @property
    def code_size_bytes(self) -> int:
        return self.program.static_size_bytes


def compile_baseline(source: Program) -> CompiledProgram:
    """Compile without any resilience support (the paper's baseline).

    Standard -O3-style pipeline: strength reduction + conventional
    register allocation. No regions, no checkpoints.
    """
    program = source.copy()
    sr = reduce_strength(program)
    ra = allocate_registers(program, store_aware=False)
    program.validate()
    cfg = CompilerConfig(
        eager_checkpointing=False,
        checkpoint_pruning=False,
        licm_sinking=False,
        induction_variable_merging=False,
        instruction_scheduling=False,
        store_aware_regalloc=False,
        name="baseline",
    )
    return CompiledProgram(
        program=program,
        config=cfg,
        partition=None,
        recovery=None,
        stats={"strength_reduction": sr, "regalloc": ra},
    )


def compile_program(
    source: Program, config: CompilerConfig, verify: bool = False
) -> CompiledProgram:
    """Compile ``source`` under ``config``; the source is not mutated.

    With ``verify=True`` the static resilience verifier
    (:mod:`repro.verify`) runs over the result: the report's summary
    lands in ``stats["verify"]`` and any error-severity finding raises
    :class:`repro.verify.VerificationError`, so a regression in any
    compiler pass fails loudly at compile time.
    """
    program = source.copy()
    stats: dict[str, object] = {}

    if config.strength_reduction:
        stats["strength_reduction"] = reduce_strength(program)
    if config.induction_variable_merging:
        stats["livm"] = merge_induction_variables(program)

    stats["regalloc"] = allocate_registers(
        program, store_aware=config.store_aware_regalloc
    )
    program.validate()

    partition: PartitionResult | None = None
    recovery: RecoveryMap | None = None
    if config.eager_checkpointing:
        predicted = predict_checkpoint_defs(program)
        partition = partition_regions(
            program,
            config.max_stores_per_region,
            predicted_ckpt_defs=predicted,
            licm_sinking=config.licm_sinking,
        )
        stats["checkpointing"] = insert_eager_checkpoints(program)
        if config.checkpoint_pruning:
            stats["pruning"] = prune_checkpoints(program)
        if config.licm_sinking:
            stats["licm"] = sink_checkpoints(program)
        if config.instruction_scheduling:
            stats["scheduling"] = schedule_program(program)
        program.validate()
        recovery = build_recovery_map(program)

    compiled = CompiledProgram(
        program=program,
        config=config,
        partition=partition,
        recovery=recovery,
        stats=stats,
    )
    if verify:
        # Imported lazily: repro.verify depends on this module.
        from repro.verify import VerificationError, verify_compiled

        report = verify_compiled(compiled)
        stats["verify"] = report
        if not report.ok:
            raise VerificationError(report)
    return compiled
