"""Loop strength reduction (standard -O3 behaviour, Section 4.1.2 setup).

Turns per-iteration multiplications of a basic induction variable
(``t = i * c`` or ``t = i << k``, typically address arithmetic for
``A[i]``) into a new basic induction variable ``p`` initialised in the
preheader and bumped by ``c * step`` next to ``i``'s update.

This is the optimization that *creates* the extra loop-carried IVs whose
checkpoints LIVM later eliminates; both Turnstile and Turnpike builds run
it because it is standard production-compiler behaviour (the paper
compiles everything with -O3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import ControlFlowGraph, build_cfg
from repro.analysis.dominators import compute_dominators
from repro.analysis.induction import find_basic_ivs
from repro.analysis.loops import Loop, find_loops
from repro.isa import instructions as ins
from repro.isa.instructions import Opcode
from repro.isa.program import Program


@dataclass
class StrengthReductionStats:
    reduced: int  # multiplications converted into new induction variables


def _preheader(cfg: ControlFlowGraph, loop: Loop) -> str | None:
    """Unique out-of-loop predecessor of the loop header, if any."""
    outside = [p for p in cfg.preds(loop.header) if p not in loop.body]
    if len(outside) == 1:
        return outside[0]
    return None


def reduce_strength(program: Program) -> StrengthReductionStats:
    """Apply loop strength reduction to every loop, in place."""
    cfg = build_cfg(program)
    dom = compute_dominators(cfg)
    loops = find_loops(cfg, dom)

    reduced = 0
    for loop in sorted(loops.loops.values(), key=lambda lp: len(lp.body)):
        preheader = _preheader(cfg, loop)
        if preheader is None:
            continue
        ivs = {iv.reg: iv for iv in find_basic_ivs(cfg, loop)}
        if not ivs:
            continue
        for label in sorted(loop.body):
            block = cfg.block(label)
            for pos, instr in enumerate(list(block.instructions)):
                factor: int | None = None
                if instr.op is Opcode.MULI:
                    factor = instr.imm
                elif instr.op is Opcode.SHLI:
                    factor = 1 << instr.imm
                if factor is None or factor == 0:
                    continue
                iv = ivs.get(instr.srcs[0])
                if iv is None:
                    continue
                if instr.uid == iv.update.uid:
                    continue
                # The multiplication must read the start-of-iteration value
                # of the IV for the derived IV to stay in lockstep: require
                # it to appear before the IV update when both share a block,
                # and otherwise in a non-latch block (updates only exist in
                # the latch).
                update_block = None
                update_pos = -1
                for lbl in loop.body:
                    for p2, other in enumerate(cfg.block(lbl).instructions):
                        if other.uid == iv.update.uid:
                            update_block, update_pos = lbl, p2
                if update_block == label and pos > update_pos:
                    continue

                derived = program.fresh_vreg()
                pre_block = cfg.block(preheader)
                if iv.init_value is not None:
                    init = ins.li(derived, iv.init_value * factor)
                    pre_block.insert_before_terminator([init])
                else:
                    init = ins.alu_ri(
                        Opcode.MULI, derived, iv.reg, factor
                    )
                    pre_block.insert_before_terminator([init])
                # Bump the derived IV right after the anchor IV's update.
                latch_block = cfg.block(update_block)  # type: ignore[arg-type]
                for p2, other in enumerate(latch_block.instructions):
                    if other.uid == iv.update.uid:
                        bump = ins.alu_ri(
                            Opcode.ADDI, derived, derived, iv.step * factor
                        )
                        latch_block.instructions.insert(p2 + 1, bump)
                        break
                # Replace the multiplication with a move from the derived IV.
                replacement = ins.mov(instr.dest, derived)
                idx = block.instructions.index(instr)
                block.instructions[idx] = replacement
                reduced += 1
        # Re-scan IVs per loop only once per loop; nested rewrites of the
        # same loop in one pass are rare and the next compilation stage
        # tolerates leftovers.
    if reduced:
        program.validate()
    return StrengthReductionStats(reduced=reduced)
