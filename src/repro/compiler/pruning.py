"""Optimal checkpoint pruning (Section 4.1.3, after Penny / Kim et al.).

A checkpoint of register ``r`` placed after definition ``d`` may be
removed when ``r``'s value at ``d`` can be reconstructed *at recovery
time* from constants and the checkpoint storage of other registers. The
recovery block then recomputes ``r`` instead of loading it.

Our reconstruction condition for an operand ``a`` of ``d``:

1. **stability** — no definition of ``a`` is reachable after ``d`` *while
   the checkpointed register ``r`` is still live with the value from
   ``d``*. Recovery only consults ``r``'s binding while that binding is
   current (once ``r`` is redefined, the new definition's own binding
   takes over), and regions preceding the restarted one are verified in
   order, so within that window ``a``'s latest verified checkpoint holds
   exactly the value ``a`` had when ``d`` executed;
2. **boundedness** — every *reaching* definition of ``a`` at ``d`` is
   itself checkpointed (immediately followed by a ``CKPT a``) or carries
   a pruned-checkpoint binding. Registers untouched since program entry
   are bound too: the runtime pre-verifies initial register bindings.
   Flow-sensitivity matters here because physical registers are reused —
   an unbound definition of the same register in unrelated code must not
   veto reconstruction, and conversely a bound definition elsewhere must
   not excuse an unbound reaching one.

Both conditions are static and conservative; together they guarantee the
recovery-time read of ``a``'s verified checkpoint yields the value needed
to recompute ``r``. Branch-dependent reconstruction (the paper's Figure 9)
falls out naturally: each definition on each path gets its own binding,
and the run-time binding of ``r`` reflects the path actually executed.

The pruned definition is annotated with a :class:`RecoveryExpr`; the
resilient machine treats the annotation as a zero-cost virtual checkpoint
whose value is recomputed during recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import ControlFlowGraph, build_cfg
from repro.analysis.liveness import LivenessInfo, compute_liveness
from repro.isa.instructions import (
    ALU_RI_OPS,
    ALU_RR_OPS,
    Instruction,
    Opcode,
)
from repro.isa.program import Program
from repro.isa.registers import Reg


@dataclass(frozen=True)
class RecoveryExpr:
    """How to recompute a pruned checkpoint's value during recovery.

    ``kind`` is one of:
      * ``"const"`` — the literal ``imm``;
      * ``"ckpt"`` — read register ``regs[0]``'s latest verified checkpoint;
      * ``"op"`` — apply ``opcode`` to the recovered operand values
        (``regs`` resolve through their checkpoints; ``imm`` supplies the
        immediate for register-immediate opcodes).
    """

    kind: str
    opcode: Opcode | None = None
    regs: tuple[Reg, ...] = ()
    imm: int = 0

    def referenced_registers(self) -> tuple[Reg, ...]:
        return self.regs


PRUNED_ANNOTATION = "pruned_ckpt_expr"


@dataclass
class PruningStats:
    pruned: int
    examined: int


def _def_is_bound(instrs: list[Instruction], pos: int) -> bool:
    """Is the definition at ``pos`` covered by a checkpoint or binding?"""
    instr = instrs[pos]
    if PRUNED_ANNOTATION in instr.annotations:
        return True
    nxt = instrs[pos + 1] if pos + 1 < len(instrs) else None
    return (
        nxt is not None
        and nxt.is_checkpoint
        and nxt.srcs == (instr.dest,)
    )


class _Boundness:
    """Forward dataflow: is a register's reaching definition bound at a
    program point? Entry state is all-bound (the runtime pre-verifies the
    initial value of every register). Meet is logical AND."""

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        self._in: dict[str, dict[Reg, bool]] = {}
        self._compute()

    def _transfer(self, label: str, state: dict[Reg, bool]) -> dict[Reg, bool]:
        instrs = self.cfg.block(label).instructions
        out = dict(state)
        for pos, instr in enumerate(instrs):
            if instr.dest is not None:
                out[instr.dest] = _def_is_bound(instrs, pos)
        return out

    def _compute(self) -> None:
        rpo = self.cfg.reverse_postorder()
        # Unreachable blocks get the all-bound entry state (missing =>
        # bound); only reachable blocks participate in the fixpoint.
        for block in self.cfg.program.blocks:
            self._in[block.label] = {}
        reachable = set(rpo)
        changed = True
        while changed:
            changed = False
            for label in rpo:
                preds = [p for p in self.cfg.preds(label) if p in reachable]
                if label == self.cfg.entry or not preds:
                    new_in: dict[Reg, bool] = {}  # missing => bound (initial)
                else:
                    outs = [self._transfer(p, self._in[p]) for p in preds]
                    regs = set().union(*[set(o) for o in outs])
                    new_in = {
                        reg: all(o.get(reg, True) for o in outs)
                        for reg in regs
                    }
                if new_in != self._in[label]:
                    self._in[label] = new_in
                    changed = True

    def bound_before(self, label: str, position: int, reg: Reg) -> bool:
        """Is ``reg``'s reaching definition bound just before ``position``?"""
        state = dict(self._in[label])
        instrs = self.cfg.block(label).instructions
        for pos in range(position):
            instr = instrs[pos]
            if instr.dest is not None:
                state[instr.dest] = _def_is_bound(instrs, pos)
        return state.get(reg, True)


class _StabilityChecker:
    """Answers: is operand ``a`` redefined anywhere ``r`` is still live
    (carrying the value from definition ``d``)?

    Walks forward from ``d`` through the CFG; a path is abandoned as soon
    as ``r`` dies or is redefined (the binding from ``d`` stops being
    consulted there); encountering a definition of ``a`` first rejects.
    """

    def __init__(self, cfg: ControlFlowGraph, liveness: LivenessInfo):
        self.cfg = cfg
        self.liveness = liveness
        # Cached per-block (instruction, live_after) pair lists.
        self._pairs: dict[str, list] = {}

    def _block_pairs(self, label: str):
        pairs = self._pairs.get(label)
        if pairs is None:
            pairs = self._pairs[label] = self.liveness.live_after(label)
        return pairs

    def _scan(self, label: str, start: int, r: Reg, a: Reg) -> tuple[bool, bool]:
        """Scan block ``label`` from ``start``. Returns (ok, continue_out):
        ``ok`` False means a def of ``a`` was hit while ``r`` live;
        ``continue_out`` True means ``r`` is still live (unredefined) at
        the block end and successors must be scanned."""
        pairs = self._block_pairs(label)
        for instr, live_after in pairs[start:]:
            if instr.dest == a:
                return False, False
            if instr.dest == r:
                return True, False  # rebound: old binding retired
            if r not in live_after:
                return True, False  # r dead: binding never consulted past here
        return True, True

    def operand_stable(self, block_label: str, position: int, r: Reg, a: Reg) -> bool:
        ok, cont = self._scan(block_label, position + 1, r, a)
        if not ok:
            return False
        if not cont:
            return True
        # Note: the defining block is NOT pre-visited — a back edge may
        # re-enter it from the top (self-loops re-examine their own defs).
        visited: set[str] = set()
        work = [s for s in self.cfg.succs(block_label)]
        while work:
            label = work.pop()
            if label in visited:
                continue
            visited.add(label)
            if r not in self.liveness.live_in.get(label, set()):
                continue
            ok, cont = self._scan(label, 0, r, a)
            if not ok:
                return False
            if cont:
                work.extend(self.cfg.succs(label))
        return True


def _reconstruction_expr(
    d: Instruction,
    block_label: str,
    position: int,
    bound: _Boundness,
    stability: _StabilityChecker,
) -> RecoveryExpr | None:
    """Build the recovery expression for definition ``d``, if prunable."""
    op = d.op
    if op is Opcode.LI:
        return RecoveryExpr(kind="const", imm=d.imm)
    if op is Opcode.LD:
        return None  # memory contents may change before recovery
    r = d.dest

    def operand_ok(reg: Reg) -> bool:
        if reg == r:
            # Self-reference (i = i + 1): at recovery the operand lookup
            # would read the binding created by this very definition, not
            # the pre-definition value — never reconstructible.
            return False
        if not bound.bound_before(block_label, position, reg):
            return False
        return stability.operand_stable(block_label, position, r, reg)

    if op is Opcode.MOV:
        src = d.srcs[0]
        if operand_ok(src):
            return RecoveryExpr(kind="ckpt", regs=(src,))
        return None
    if op in ALU_RI_OPS or op in ALU_RR_OPS:
        if all(operand_ok(reg) for reg in d.srcs):
            return RecoveryExpr(kind="op", opcode=op, regs=d.srcs, imm=d.imm)
    return None


def prune_checkpoints(program: Program) -> PruningStats:
    """Remove reconstructable checkpoints in place.

    Must run while checkpoints are still in eager position (immediately
    after their definitions), i.e. before LICM sinking and instruction
    scheduling.
    """
    cfg = build_cfg(program)
    stability = _StabilityChecker(cfg, compute_liveness(cfg))
    bound = _Boundness(cfg)

    pruned = 0
    examined = 0
    reachable = cfg.reachable_blocks()
    for block in program.blocks:
        if block.label not in reachable:
            continue  # dead code: never executed, nothing to prune
        instrs = block.instructions
        keep: list[Instruction] = []
        pos = 0
        while pos < len(instrs):
            instr = instrs[pos]
            nxt = instrs[pos + 1] if pos + 1 < len(instrs) else None
            is_eager_pair = (
                instr.dest is not None
                and nxt is not None
                and nxt.is_checkpoint
                and nxt.srcs == (instr.dest,)
            )
            if not is_eager_pair:
                keep.append(instr)
                pos += 1
                continue
            examined += 1
            expr = _reconstruction_expr(
                instr, block.label, pos, bound, stability
            )
            if expr is None:
                keep.append(instr)
                pos += 1
                continue
            instr.annotations[PRUNED_ANNOTATION] = expr
            keep.append(instr)  # keep the def, drop the checkpoint
            pruned += 1
            pos += 2  # skip the checkpoint
        block.instructions = keep
    return PruningStats(pruned=pruned, examined=examined)


def pruned_definitions(program: Program) -> list[Instruction]:
    """All definitions carrying a pruned-checkpoint binding."""
    return [
        instr
        for instr in program.instructions()
        if PRUNED_ANNOTATION in instr.annotations
    ]
