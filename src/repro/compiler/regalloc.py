"""Linear-scan register allocation with store-aware spill weights.

Maps virtual registers onto the physical register file. The Turnpike
twist (Section 4.1.1) is in the spill-candidate decision: a conventional
allocator weighs reads and writes equally, but every write to a spilled
variable becomes a *store* — deadly when stores must be verified through
a 4-entry store buffer. With ``store_aware=True`` the weight of write
operations is amplified, keeping write-heavy variables in registers while
(by construction) spilling the same *number* of variables.

Intervals are conservative hulls over a global block-order numbering —
simple, predictable, and sound (two overlapping hulls never share a
register). Spill code uses two reserved scratch registers, so allocation
never fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import build_cfg
from repro.analysis.dominators import compute_dominators
from repro.analysis.liveness import compute_liveness
from repro.analysis.loops import find_loops
from repro.isa import instructions as ins
from repro.isa.instructions import Instruction, StoreKind
from repro.isa.program import Program
from repro.isa.registers import Reg

# How much more a write costs than a read under the store-aware policy.
STORE_AWARE_WRITE_FACTOR = 4.0
# Spill slot pitch in bytes (one 32-bit word, padded to 8 for clarity).
SPILL_SLOT_BYTES = 8


@dataclass
class AllocationStats:
    mapped: int  # virtual registers given a physical register
    spilled: int  # virtual registers spilled to stack slots
    spill_loads: int  # reload instructions inserted
    spill_stores: int  # spill-store instructions inserted
    spilled_regs: list[Reg] = field(default_factory=list)


def scratch_registers(register_file) -> tuple[Reg, Reg]:
    """The two reserved spill scratch registers (highest allocatable)."""
    allocatable = register_file.allocatable
    return allocatable[-2], allocatable[-1]


@dataclass
class _Interval:
    reg: Reg
    start: int
    end: int
    weight: float
    pinned: bool  # program live-ins are never spilled


def _build_intervals(
    program: Program, store_aware: bool
) -> tuple[list[_Interval], dict[Reg, float]]:
    cfg = build_cfg(program)
    liveness = compute_liveness(cfg)
    dom = compute_dominators(cfg)
    loops = find_loops(cfg, dom)

    write_factor = STORE_AWARE_WRITE_FACTOR if store_aware else 1.0

    number = 0
    start: dict[Reg, int] = {}
    end: dict[Reg, int] = {}
    weight: dict[Reg, float] = {}

    def touch(reg: Reg, point: int) -> None:
        if not reg.is_virtual:
            return
        if reg not in start:
            start[reg] = point
            end[reg] = point
        else:
            if point < start[reg]:
                start[reg] = point
            if point > end[reg]:
                end[reg] = point

    for reg in program.live_in:
        touch(reg, 0)

    for block in program.blocks:
        depth = min(loops.loop_depth(block.label), 3)
        freq = 10.0**depth
        block_start = number
        for reg in liveness.live_in[block.label]:
            touch(reg, block_start)
        for instr in block.instructions:
            for src in instr.srcs:
                touch(src, number)
                if src.is_virtual:
                    weight[src] = weight.get(src, 0.0) + freq
            if instr.dest is not None:
                touch(instr.dest, number)
                if instr.dest.is_virtual:
                    weight[instr.dest] = (
                        weight.get(instr.dest, 0.0) + freq * write_factor
                    )
            number += 1
        block_end = number - 1
        for reg in liveness.live_out[block.label]:
            touch(reg, block_end)

    intervals = [
        _Interval(
            reg=reg,
            start=start[reg],
            end=end[reg],
            weight=weight.get(reg, 0.0),
            pinned=reg in program.live_in,
        )
        for reg in start
    ]
    intervals.sort(key=lambda iv: (iv.start, iv.reg.index))
    return intervals, weight


def allocate_registers(program: Program, store_aware: bool = False) -> AllocationStats:
    """Allocate physical registers in place; returns statistics.

    After this pass no virtual registers remain in the program; spilled
    virtuals are rewritten through reserved scratch registers with
    stack-relative loads/stores (``StoreKind.SPILL``).
    """
    rf = program.register_file
    allocatable = rf.allocatable
    if len(allocatable) < 4:
        raise ValueError("need at least 4 allocatable registers")
    # Reserve the two highest allocatable registers as spill scratch.
    scratch = list(scratch_registers(rf))
    pool = allocatable[:-2]

    intervals, _ = _build_intervals(program, store_aware)

    free = list(reversed(pool))  # pop() yields lowest-numbered first
    active: list[_Interval] = []
    assignment: dict[Reg, Reg] = {}
    spilled: dict[Reg, int] = {}
    next_slot = 0

    def expire(point: int) -> None:
        nonlocal active
        keep = []
        for iv in active:
            if iv.end < point:
                free.append(assignment[iv.reg])
            else:
                keep.append(iv)
        active = keep

    def spill(iv: _Interval) -> None:
        nonlocal next_slot
        spilled[iv.reg] = next_slot
        next_slot += SPILL_SLOT_BYTES

    for iv in intervals:
        expire(iv.start)
        if free:
            phys = free.pop()
            assignment[iv.reg] = phys
            active.append(iv)
            continue
        # No free register: evict the cheapest unpinned candidate.
        candidates = [a for a in active if not a.pinned]
        if not iv.pinned:
            candidates.append(iv)
        if not candidates:
            raise RuntimeError("all candidates pinned; register file too small")
        # Spill weight density (weight per covered instruction), as in
        # LLVM's greedy allocator: long-lived sparse values spill before
        # short hot temporaries of equal absolute weight.
        victim = min(
            candidates,
            key=lambda a: (a.weight / (a.end - a.start + 1), -a.end),
        )
        if victim is iv:
            spill(iv)
        else:
            phys = assignment.pop(victim.reg)
            spill(victim)
            active.remove(victim)
            assignment[iv.reg] = phys
            active.append(iv)

    stats = _rewrite(program, assignment, spilled, scratch)
    stats.mapped = len(assignment)
    stats.spilled = len(spilled)
    stats.spilled_regs = sorted(spilled.keys())

    # Physical live-in set replaces the virtual one.
    program.live_in = {assignment.get(r, r) for r in program.live_in}
    return stats


def _rewrite(
    program: Program,
    assignment: dict[Reg, Reg],
    spilled: dict[Reg, int],
    scratch: list[Reg],
) -> AllocationStats:
    sp = program.register_file.stack_pointer
    stats = AllocationStats(mapped=0, spilled=0, spill_loads=0, spill_stores=0)
    for block in program.blocks:
        new_instrs: list[Instruction] = []
        for instr in block.instructions:
            pre: list[Instruction] = []
            post: list[Instruction] = []
            mapping: dict[Reg, Reg] = {}
            scratch_iter = iter(scratch)
            for src in dict.fromkeys(instr.srcs):  # unique, ordered
                if src in spilled:
                    tmp = next(scratch_iter)
                    pre.append(ins.load(tmp, sp, spilled[src]))
                    stats.spill_loads += 1
                    mapping[src] = tmp
                elif src in assignment:
                    mapping[src] = assignment[src]
            instr.replace_uses(mapping)
            dest = instr.dest
            if dest is not None:
                if dest in spilled:
                    tmp = scratch[0]
                    instr.replace_defs({dest: tmp})
                    post.append(
                        ins.store(tmp, sp, spilled[dest], kind=StoreKind.SPILL)
                    )
                    stats.spill_stores += 1
                elif dest in assignment:
                    instr.replace_defs({dest: assignment[dest]})
            new_instrs.extend(pre)
            new_instrs.append(instr)
            new_instrs.extend(post)
        block.instructions = new_instrs

    for instr in program.instructions():
        if any(r.is_virtual for r in instr.srcs) or (
            instr.dest is not None and instr.dest.is_virtual
        ):
            raise RuntimeError(f"virtual register survived allocation: {instr!r}")
    return stats
