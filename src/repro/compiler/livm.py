"""Loop induction variable merging — LIVM (Section 4.1.2).

Strength reduction (and hand-written pointer-bumping code) leaves loops
with several *basic* induction variables that advance in lockstep. Each
one is a loop-carried dependence, so each is live-out at the loop-header
region boundary and gets checkpointed every iteration. When one IV is a
provable linear function of another (``dep = scale * anchor + offset``),
LIVM deletes the dependent IV's loop update and rematerialises its uses
from the anchor, converting it into an *induced* IV with only local data
dependences — its per-iteration checkpoint disappears.

LIVM runs before region partitioning / checkpointing (on virtual-register
code), so the checkpoint elimination happens automatically: the merged
register is simply no longer live across the loop-header boundary.

Safety conditions enforced here (see ``_pattern_ok``):
  * both IVs are updated exactly once, in the same latch block, with all
    in-loop uses of the dependent IV occurring before either update;
  * both initial values are compile-time constants (so the linear
    relation provably holds on loop entry);
  * the dependent IV's post-loop uses are repaired by materialising its
    final value at each loop exit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import ControlFlowGraph, build_cfg
from repro.analysis.dominators import compute_dominators
from repro.analysis.induction import (
    BasicIV,
    MergeCandidate,
    find_basic_ivs,
    find_merge_candidates,
)
from repro.analysis.liveness import compute_liveness
from repro.analysis.loops import Loop, find_loops
from repro.isa import instructions as ins
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.isa.registers import Reg


@dataclass
class LivmStats:
    merged: int  # dependent IVs eliminated
    rematerialized_uses: int  # in-loop uses rewritten


def _instr_positions(cfg: ControlFlowGraph, loop: Loop) -> dict[int, tuple[str, int]]:
    positions: dict[int, tuple[str, int]] = {}
    for label in loop.body:
        for pos, instr in enumerate(cfg.block(label).instructions):
            positions[instr.uid] = (label, pos)
    return positions


def _pattern_ok(
    cfg: ControlFlowGraph,
    loop: Loop,
    cand: MergeCandidate,
    liveness,
) -> bool:
    """Check the lockstep-update pattern required for a safe merge."""
    anchor, dep = cand.anchor, cand.dependent
    # Post-loop uses need a fix-up at every exit where the dependent IV is
    # live, which is only placeable when all of the exit's predecessors
    # are loop blocks.
    for exit_label in loop.exits:
        if dep.reg in liveness.live_in.get(exit_label, set()):
            if not all(pred in loop.body for pred in cfg.preds(exit_label)):
                return False
    positions = _instr_positions(cfg, loop)
    a_loc = positions.get(anchor.update.uid)
    d_loc = positions.get(dep.update.uid)
    if a_loc is None or d_loc is None:
        return False
    if a_loc[0] != d_loc[0]:
        return False  # updates must share the latch block
    latch = a_loc[0]
    first_update_pos = min(a_loc[1], d_loc[1])
    # All in-loop uses of the dependent IV must read the start-of-iteration
    # value: they must precede both updates in the latch block, or sit in a
    # block other than the latch (where no update has run yet this
    # iteration, since updates only exist in the latch).
    for label in loop.body:
        for pos, instr in enumerate(cfg.block(label).instructions):
            if instr.uid == dep.update.uid:
                continue
            if dep.reg in instr.srcs:
                if label == latch and pos > first_update_pos:
                    return False
            # A second write to either IV would break the lockstep relation.
            if instr.dest in (dep.reg, anchor.reg) and instr.uid not in (
                dep.update.uid,
                anchor.update.uid,
            ):
                return False
    return True


def _remat_length(scale: int, offset: int) -> int:
    """Instructions needed to rematerialise one use of the dependent IV."""
    length = 0
    if scale != 1:
        length += 1  # SHLI or MULI
    if offset != 0:
        length += 1  # ADDI
    return length  # identical IVs (scale 1, offset 0) cost nothing


def _profitable(cfg: ControlFlowGraph, loop: Loop, cand: MergeCandidate) -> bool:
    """Accept a merge only when the ALU cost stays near the store savings.

    Deleting the dependent IV removes its loop update and (being
    loop-carried) its per-iteration checkpoint store — worth ~2 issue
    slots plus the store-buffer relief the paper is after. Each in-loop
    use instead pays ``_remat_length`` ALU instructions. One extra slot of
    slack is allowed, because converting a checkpoint store into ALU work
    is exactly the trade Turnpike wants on a store-pressured core.
    """
    uses = 0
    for label in loop.body:
        for instr in cfg.block(label).instructions:
            if instr.uid == cand.dependent.update.uid:
                continue
            uses += sum(1 for src in instr.srcs if src == cand.dependent.reg)
    cost = uses * _remat_length(cand.scale, cand.offset)
    benefit = 2  # deleted update + eliminated checkpoint store
    return cost <= benefit + 1


def _materialize(
    program: Program,
    anchor_reg: Reg,
    scale: int,
    offset: int,
    dest: Reg | None,
) -> tuple[list[Instruction], Reg]:
    """Emit ``dest = anchor*scale + offset`` as TK instructions."""
    out: list[Instruction] = []
    if scale == 1:
        current = anchor_reg
    else:
        scaled = program.fresh_vreg()
        if scale > 0 and (scale & (scale - 1)) == 0:
            shift = scale.bit_length() - 1
            out.append(ins.alu_ri(Opcode.SHLI, scaled, anchor_reg, shift))
        else:
            out.append(ins.alu_ri(Opcode.MULI, scaled, anchor_reg, scale))
        current = scaled
    if offset != 0 or (dest is not None and current is anchor_reg):
        target = dest if dest is not None else program.fresh_vreg()
        out.append(ins.alu_ri(Opcode.ADDI, target, current, offset))
        current = target
    elif dest is not None:
        out.append(ins.mov(dest, current))
        current = dest
    return out, current


def merge_induction_variables(program: Program) -> LivmStats:
    """Run LIVM over every loop of the program, in place."""
    cfg = build_cfg(program)
    dom = compute_dominators(cfg)
    loops = find_loops(cfg, dom)
    liveness = compute_liveness(cfg)

    merged = 0
    remat_uses = 0
    consumed: set[Reg] = set()  # dependent IV registers already merged away

    for loop in sorted(loops.loops.values(), key=lambda lp: len(lp.body)):
        # Re-derive the IV set after every merge: a merge rewrites uses and
        # deletes an update, so previously computed candidates go stale.
        for _ in range(64):  # bounded by the number of IVs in the loop
            ivs = find_basic_ivs(cfg, loop)
            applied = False
            for cand in find_merge_candidates(ivs):
                anchor, dep = cand.anchor, cand.dependent
                if dep.reg in consumed or anchor.reg in consumed:
                    continue
                if dep.reg == anchor.reg:
                    continue
                if not _pattern_ok(cfg, loop, cand, liveness):
                    continue
                if not _profitable(cfg, loop, cand):
                    continue
                applied = True
                break
            if not applied:
                break

            # 1. Rewrite every in-loop use of the dependent IV.
            for label in sorted(loop.body):
                block = cfg.block(label)
                pos = 0
                while pos < len(block.instructions):
                    instr = block.instructions[pos]
                    if (
                        instr.uid != dep.update.uid
                        and dep.reg in instr.srcs
                    ):
                        new_instrs, value_reg = _materialize(
                            program, anchor.reg, cand.scale, cand.offset, None
                        )
                        block.instructions[pos:pos] = new_instrs
                        pos += len(new_instrs)
                        instr.replace_uses({dep.reg: value_reg})
                        remat_uses += 1
                    pos += 1

            # 2. Delete the dependent IV's loop update.
            for label in loop.body:
                block = cfg.block(label)
                block.instructions = [
                    i for i in block.instructions if i.uid != dep.update.uid
                ]

            # 3. Materialise the final value at loop exits where the
            #    dependent IV is still live (post-loop uses).
            for exit_label in sorted(loop.exits):
                if dep.reg not in liveness.live_in.get(exit_label, set()):
                    continue
                exit_block = cfg.block(exit_label)
                if not all(
                    pred in loop.body for pred in cfg.preds(exit_label)
                ):
                    # Cannot place the fix-up unambiguously; undoing a
                    # merge at this point would be complex, so we refuse
                    # candidates like this up front instead.
                    raise AssertionError(
                        "LIVM merged an IV with an unsafe exit; "
                        "_pattern_ok must pre-filter this"
                    )
                fix, _ = _materialize(
                    program, anchor.reg, cand.scale, cand.offset, dep.reg
                )
                exit_block.instructions[0:0] = fix

            consumed.add(dep.reg)  # the anchor may serve further merges
            merged += 1

    if merged:
        program.validate()
    return LivmStats(merged=merged, rematerialized_uses=remat_uses)
