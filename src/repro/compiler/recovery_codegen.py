"""Recovery-block code generation (Section 2.2 / Figure 9).

The resilient machine restores live-in registers through its binding
map; real Turnpike hardware instead jumps to a compiler-generated
*recovery block* that loads checkpointed registers from their storage
and recomputes pruned ones, then jumps back to the recovery PC. This
module generates those blocks as explicit TK instruction sequences —
the code the paper's compiler would emit — and provides an evaluator so
tests can prove the generated code equivalent to the machine's binding
semantics.

Checkpoint storage is addressed as ``CKPT_STORAGE_BASE + reg * slots *
WORD + slot * WORD``: one word per (register, color) pair, with the
quarantine slot last. The recovery block for a region loads each
checkpointed live-in from the slot named by the VC map at recovery time
(the hardware substitutes the verified color; the generated code uses a
symbolic slot operand resolved by the evaluator), and emits the
backward-slice recomputation for pruned live-ins in dependency order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.pipeline import CompiledProgram
from repro.compiler.pruning import PRUNED_ANNOTATION, RecoveryExpr
from repro.isa.instructions import Opcode
from repro.isa.registers import Reg
from repro.runtime.memory import wrap32

# Base of the dedicated checkpoint storage space (disjoint from data and
# stack segments; the machines model it as a separate map, the generated
# code addresses it symbolically through this base).
CKPT_STORAGE_BASE = 0x0100_0000


@dataclass(frozen=True)
class RecoveryStep:
    """One step of a recovery block.

    ``kind``:
      * ``"load"``  — ``target = ckpt_storage[source_reg]`` (the hardware
        indexes the slot through the VC map);
      * ``"const"`` — ``target = imm``;
      * ``"op"``    — ``target = opcode(operands..., imm)`` where operands
        were materialised by earlier steps (or are loads emitted here).
    """

    kind: str
    target: Reg
    source_reg: Reg | None = None
    opcode: Opcode | None = None
    operands: tuple[Reg, ...] = ()
    imm: int = 0

    def render(self) -> str:
        if self.kind == "load":
            return f"{self.target.name} = ldckpt [{self.source_reg.name}]"
        if self.kind == "const":
            return f"{self.target.name} = li {self.imm}"
        ops = ", ".join(r.name for r in self.operands)
        return f"{self.target.name} = {self.opcode.value} {ops}, {self.imm}"


@dataclass
class RecoveryBlock:
    """The generated recovery code for one region."""

    region_id: int
    resume_block: str
    resume_index: int
    steps: list[RecoveryStep] = field(default_factory=list)

    @property
    def num_instructions(self) -> int:
        return len(self.steps)

    def render(self) -> str:
        lines = [f"; recovery block for region R{self.region_id}"]
        lines.extend("  " + step.render() for step in self.steps)
        lines.append(f"  jmp -> {self.resume_block}[{self.resume_index}]")
        return "\n".join(lines)


class RecoveryCodegenError(Exception):
    """A live-in register had no generatable restore sequence."""


def _expr_steps(
    target: Reg,
    expr: RecoveryExpr,
    exprs: dict[Reg, RecoveryExpr],
    emitted: set[Reg],
    steps: list[RecoveryStep],
    visiting: set[Reg],
) -> None:
    """Emit steps materialising ``expr`` into ``target`` (post-order)."""
    if expr.kind == "const":
        steps.append(RecoveryStep(kind="const", target=target, imm=expr.imm))
        return
    # Resolve operand registers first: each is either itself pruned
    # (recurse into its expression) or checkpointed (load).
    for reg in expr.referenced_registers():
        if reg in emitted:
            continue
        if reg in visiting:
            raise RecoveryCodegenError(
                f"cyclic recovery dependency through {reg.name}"
            )
        visiting.add(reg)
        operand_expr = exprs.get(reg)
        if operand_expr is not None:
            _expr_steps(reg, operand_expr, exprs, emitted, steps, visiting)
        else:
            steps.append(
                RecoveryStep(kind="load", target=reg, source_reg=reg)
            )
        visiting.discard(reg)
        emitted.add(reg)
    if expr.kind == "ckpt":
        src = expr.regs[0]
        steps.append(
            RecoveryStep(
                kind="op",
                target=target,
                opcode=Opcode.MOV,
                operands=(src,),
            )
        )
    else:
        steps.append(
            RecoveryStep(
                kind="op",
                target=target,
                opcode=expr.opcode,
                operands=expr.regs,
                imm=expr.imm,
            )
        )


def generate_recovery_blocks(compiled: CompiledProgram) -> dict[int, RecoveryBlock]:
    """Generate one recovery block per region of a compiled program.

    For every region live-in register the block emits either a
    checkpoint load or (for pruned checkpoints) the recomputation slice
    of Figure 9. A register is treated as pruned when *any* of its
    definitions carries a binding expression — the hardware's VC map
    decides at run time which variant is current; the generated code
    covers the reconstruction variant, and the evaluator (used in tests)
    resolves against the live VC state exactly as hardware would.
    """
    if compiled.recovery is None:
        raise ValueError("program compiled without resilience support")
    program = compiled.program

    exprs: dict[Reg, RecoveryExpr] = {}
    for instr in program.instructions():
        expr = instr.annotations.get(PRUNED_ANNOTATION)
        if expr is not None and instr.dest is not None:
            # Latest annotation wins; matches the machine's binding order
            # only per-execution, so the evaluator re-checks against the
            # VC map (see resolve_with_bindings).
            exprs[instr.dest] = expr

    blocks: dict[int, RecoveryBlock] = {}
    for region_id, entry in compiled.recovery.entries.items():
        block = RecoveryBlock(
            region_id=region_id,
            resume_block=entry.block,
            resume_index=entry.index + 1,
        )
        emitted: set[Reg] = set()
        for reg in sorted(entry.live_in):
            if reg in emitted:
                continue
            expr = exprs.get(reg)
            if expr is not None:
                _expr_steps(reg, expr, exprs, emitted, block.steps, {reg})
            else:
                block.steps.append(
                    RecoveryStep(kind="load", target=reg, source_reg=reg)
                )
            emitted.add(reg)
        blocks[region_id] = block
    return blocks


def evaluate_recovery_block(
    block: RecoveryBlock,
    vc_bindings: dict[int, tuple],
) -> dict[Reg, int]:
    """Execute a recovery block literally against verified bindings.

    ``ldckpt`` steps read the register's verified checkpoint — exactly
    the RBB's VC-indexed storage access — resolving expression bindings
    recursively (the machine's own recovery semantics); ``const``/``op``
    steps recompute values locally, as the generated instructions would.

    Returns the register environment after the block. Tests compare this
    environment against the registers the resilient machine restores —
    when the live bindings match the statically anticipated variant, the
    two must agree exactly.
    """
    from repro.runtime.machine import _apply_opcode

    env: dict[Reg, int] = {}

    def read_binding(reg: Reg) -> int:
        binding = vc_bindings.get(reg.index)
        if binding is None:
            raise RecoveryCodegenError(f"no binding for {reg.name}")
        kind, payload = binding
        if kind == "value":
            return payload
        return _eval(payload)

    def _eval(expr: RecoveryExpr) -> int:
        if expr.kind == "const":
            return wrap32(expr.imm)
        if expr.kind == "ckpt":
            return read_binding(expr.regs[0])
        values = [read_binding(r) for r in expr.regs]
        return _apply_opcode(expr.opcode, values, expr.imm)

    for step in block.steps:
        if step.kind == "load":
            env[step.target] = read_binding(step.source_reg)
        elif step.kind == "const":
            env[step.target] = wrap32(step.imm)
        elif step.opcode is Opcode.MOV:
            env[step.target] = env[step.operands[0]]
        else:
            values = [env[r] for r in step.operands]
            env[step.target] = _apply_opcode(step.opcode, values, step.imm)
    return env


def storage_address(reg: Reg, slot: int, num_slots: int = 5) -> int:
    """Checkpoint storage address for a (register, slot) pair."""
    from repro.runtime.memory import WORD

    return CKPT_STORAGE_BASE + (reg.index * num_slots + slot) * WORD
