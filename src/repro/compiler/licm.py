"""Checkpoint sinking out of loops, LICM-style (Section 4.1.4).

Eager checkpointing pins every checkpoint right after its defining
instruction. The paper observes the placement can be relaxed: a
checkpoint only has to execute before its region's boundary. For a loop
that lives entirely inside one region (possible when the loop body has no
stores, so the partitioner did not force a boundary at its header), a
register checkpointed inside the body is re-checkpointed every iteration
even though only the final value can ever be consumed by a later region.

This pass moves such checkpoints to the loop's exit blocks (still inside
the same region, *before* any boundary that starts there) and deduplicates
checkpoints of the same register within a block when no boundary
intervenes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import build_cfg
from repro.analysis.dominators import compute_dominators
from repro.analysis.loops import find_loops
from repro.isa.instructions import Instruction, checkpoint
from repro.isa.program import Program
from repro.isa.registers import Reg


@dataclass
class LicmStats:
    sunk: int  # checkpoints moved out of a loop body
    deduplicated: int  # redundant same-block checkpoints removed


def _loop_region(program: Program, body: set[str]) -> int | None:
    """Region id if the whole loop is inside one region with no boundary."""
    region: int | None = None
    for label in body:
        for instr in program.block(label).instructions:
            if instr.is_boundary:
                return None
            if instr.region_id is None:
                return None
            if region is None:
                region = instr.region_id
            elif instr.region_id != region:
                return None
    return region


def sink_checkpoints(program: Program) -> LicmStats:
    """Apply loop-exit checkpoint sinking and same-block deduplication."""
    cfg = build_cfg(program)
    dom = compute_dominators(cfg)
    loops = find_loops(cfg, dom)

    sunk = 0
    # Process innermost loops first so nested sinking composes: sort by
    # body size ascending.
    ordered = sorted(loops.loops.values(), key=lambda lp: len(lp.body))
    for loop in ordered:
        region = _loop_region(program, loop.body)
        if region is None:
            continue
        # Every exit block must be safe: all predecessors inside the loop,
        # so a checkpoint placed at its top runs exactly once per loop
        # execution, on every leaving path.
        exits = sorted(loop.exits)
        if not exits:
            continue
        safe = all(
            all(pred in loop.body for pred in cfg.preds(exit_label))
            for exit_label in exits
        )
        if not safe:
            continue
        # Collect checkpointed registers inside the body.
        regs: list[Reg] = []
        seen: set[Reg] = set()
        for label in loop.body:
            for instr in program.block(label).instructions:
                if instr.is_checkpoint and instr.srcs[0] not in seen:
                    seen.add(instr.srcs[0])
                    regs.append(instr.srcs[0])
        if not regs:
            continue
        # Remove in-loop checkpoints.
        for label in loop.body:
            block = program.block(label)
            removed = [i for i in block.instructions if i.is_checkpoint]
            if removed:
                block.instructions = [
                    i for i in block.instructions if not i.is_checkpoint
                ]
                sunk += len(removed)
        # Re-insert one checkpoint per register at the top of each exit
        # block, before any boundary that starts a new region there, and
        # tagged with the loop's region so verification timing is
        # unchanged.
        for exit_label in exits:
            block = program.block(exit_label)
            new = []
            for reg in regs:
                ck = checkpoint(reg)
                ck.region_id = region
                ck.annotations["licm_sunk"] = True
                new.append(ck)
            block.instructions[0:0] = new

    dedup = _deduplicate_in_blocks(program)
    return LicmStats(sunk=sunk, deduplicated=dedup)


def _deduplicate_in_blocks(program: Program) -> int:
    """Drop a checkpoint when a later one in the same block re-checkpoints
    the same register with no intervening boundary or redefinition gap
    that matters.

    Rule: walking a block forward, a pending checkpoint of ``r`` is
    cancelled by a later checkpoint of ``r`` in the same region before any
    BOUNDARY — only the final binding of a region is ever consulted by
    recovery, so the earlier store is dead.
    """
    removed = 0
    for block in program.blocks:
        kill: set[int] = set()
        pending: dict[Reg, Instruction] = {}
        for instr in block.instructions:
            if instr.is_boundary:
                pending.clear()
                continue
            if instr.is_checkpoint:
                reg = instr.srcs[0]
                prior = pending.get(reg)
                if prior is not None and prior.region_id == instr.region_id:
                    kill.add(prior.uid)
                    removed += 1
                pending[reg] = instr
        if kill:
            block.instructions = [
                i for i in block.instructions if i.uid not in kill
            ]
    return removed
