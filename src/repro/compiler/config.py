"""Compiler and hardware configuration knobs.

:class:`CompilerConfig` selects which Turnpike passes run, mirroring the
ablation axes of the paper's Figure 21. :func:`figure21_configs` returns
the exact eight configurations the paper compares.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CompilerConfig:
    """Which compiler-side Turnpike features are enabled.

    The defaults correspond to the full Turnpike compiler. The hardware
    bypass knobs (CLQ / coloring) live in the architecture config, but the
    compiler still needs ``sb_size`` to drive region partitioning (regions
    hold at most ``sb_size // 2`` stores, Section 4.3.1).
    """

    sb_size: int = 4
    # Baseline passes (always part of Turnstile and Turnpike).
    strength_reduction: bool = True
    eager_checkpointing: bool = True
    # Turnpike compiler optimizations (Section 4.1 / 4.2).
    checkpoint_pruning: bool = True
    licm_sinking: bool = True
    induction_variable_merging: bool = True
    instruction_scheduling: bool = True
    store_aware_regalloc: bool = True
    # Turnpike caps regions at half the SB so one region's verification
    # overlaps the next region's execution (Sec 4.3.1); Turnstile fills
    # the whole SB per region (Sec 2.1).
    overlap_partitioning: bool = True
    name: str = "turnpike"

    @property
    def max_stores_per_region(self) -> int:
        """Path-insensitive store-unit cap per region."""
        if self.overlap_partitioning:
            return max(1, self.sb_size // 2)
        return max(1, self.sb_size)

    def with_name(self, name: str) -> "CompilerConfig":
        return replace(self, name=name)


def turnstile_config(sb_size: int = 4) -> CompilerConfig:
    """The Turnstile baseline: eager checkpointing, no Turnpike passes."""
    return CompilerConfig(
        sb_size=sb_size,
        checkpoint_pruning=False,
        licm_sinking=False,
        induction_variable_merging=False,
        instruction_scheduling=False,
        store_aware_regalloc=False,
        overlap_partitioning=False,
        name="turnstile",
    )


def turnpike_config(sb_size: int = 4) -> CompilerConfig:
    """The full Turnpike compiler."""
    return CompilerConfig(sb_size=sb_size, name="turnpike")


def figure21_configs(sb_size: int = 4) -> list[tuple[str, CompilerConfig, dict[str, bool]]]:
    """The eight ablation configurations of Figure 21.

    Returns ``(label, compiler_config, hardware_flags)`` triples, where
    ``hardware_flags`` carries ``{"clq": bool, "coloring": bool}`` for the
    architecture side.
    """
    from dataclasses import replace as _replace

    base = turnstile_config(sb_size)
    # The hardware-bypass rows use the Turnpike overlap partitioning
    # (half-SB regions, Sec 4.3.1): overlapping one region's verification
    # with the next region's execution is what makes fast release pay off.
    hw_base = _replace(base, overlap_partitioning=True)
    configs: list[tuple[str, CompilerConfig, dict[str, bool]]] = []
    configs.append(("Turnstile", base, {"clq": False, "coloring": False}))
    configs.append(
        (
            "WAR-free Checking",
            hw_base.with_name("warfree"),
            {"clq": True, "coloring": False},
        )
    )
    configs.append(
        (
            "Fast Release",
            hw_base.with_name("fastrelease"),
            {"clq": True, "coloring": True},
        )
    )
    pruning = CompilerConfig(
        sb_size=sb_size,
        checkpoint_pruning=True,
        licm_sinking=False,
        induction_variable_merging=False,
        instruction_scheduling=False,
        store_aware_regalloc=False,
        name="fr+pruning",
    )
    configs.append(("Fast Release + Pruning", pruning, {"clq": True, "coloring": True}))
    licm = replace(pruning, licm_sinking=True, name="fr+pruning+licm")
    configs.append(
        ("Fast Release + Pruning + LICM", licm, {"clq": True, "coloring": True})
    )
    sched = replace(licm, instruction_scheduling=True, name="fr+pruning+licm+sched")
    configs.append(
        (
            "Fast Release + Pruning + LICM + Inst Sched",
            sched,
            {"clq": True, "coloring": True},
        )
    )
    ra = replace(sched, store_aware_regalloc=True, name="fr+pruning+licm+sched+ra")
    configs.append(
        (
            "Fast Release + Pruning + LICM + Inst Sched + RA Trick",
            ra,
            {"clq": True, "coloring": True},
        )
    )
    full = turnpike_config(sb_size)
    configs.append(("Turnpike", full, {"clq": True, "coloring": True}))
    return configs
