"""Recovery metadata: what each region needs to restart after an error.

Turnstile/Turnpike recovery re-executes the most recent unverified region
after restoring its *live-in* registers from verified checkpoint storage
(or by recomputing pruned checkpoints). The compiler computes, for every
region, its entry location and live-in register set; the resilient
machine consumes this map when an error is detected, and the tests use it
to check the central protocol invariant — every live-in of every region
is covered by an earlier checkpoint or a pruned-checkpoint binding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import build_cfg
from repro.analysis.liveness import compute_liveness
from repro.isa.program import Program
from repro.isa.registers import Reg


@dataclass(frozen=True)
class RegionEntry:
    """Restart information for one region.

    ``block``/``index`` locate the BOUNDARY instruction that opens the
    region; re-execution resumes at ``index + 1``. ``live_in`` lists the
    registers whose values must be restored before restarting.
    """

    region_id: int
    block: str
    index: int
    live_in: frozenset[Reg]


class RecoveryMap:
    """Per-region restart metadata for a compiled program."""

    def __init__(self, entries: dict[int, RegionEntry]):
        self.entries = entries

    def entry(self, region_id: int) -> RegionEntry:
        return self.entries[region_id]

    def __contains__(self, region_id: int) -> bool:
        return region_id in self.entries

    def __len__(self) -> int:
        return len(self.entries)


def build_recovery_map(program: Program) -> RecoveryMap:
    """Locate every region boundary and compute its live-in registers."""
    cfg = build_cfg(program)
    liveness = compute_liveness(cfg)
    entries: dict[int, RegionEntry] = {}
    reachable = cfg.reachable_blocks()
    for block in program.blocks:
        if block.label not in reachable:
            # A boundary in dead code can never open a region at run time;
            # giving it a recovery entry would be a phantom restart target.
            continue
        # Per-instruction liveness: live set *before* each instruction is
        # the live-after of the previous one; recompute via live_after.
        pairs = liveness.live_after(block.label)
        for pos, (instr, live_after) in enumerate(pairs):
            if not instr.is_boundary:
                continue
            rid = instr.region_id
            if rid is None:
                raise ValueError(f"boundary without region id: {instr!r}")
            if rid in entries:
                raise ValueError(f"region {rid} has two boundaries")
            # A BOUNDARY neither reads nor writes registers, so the live
            # set before it equals the live set after it.
            entries[rid] = RegionEntry(
                region_id=rid,
                block=block.label,
                index=pos,
                live_in=frozenset(live_after),
            )
    return RecoveryMap(entries)


def checkpoint_coverage_gaps(program: Program) -> list[tuple[int, Reg]]:
    """Protocol invariant check used by tests.

    For every region R and live-in register r of R, some earlier-executed
    instruction must bind r: a ``CKPT r``, a pruned-checkpoint annotation
    on a definition of r, or r being a program live-in (pre-verified by
    the runtime). This static check is necessarily approximate about
    execution order, so it verifies the weaker program-level property:
    every region live-in is either a program live-in or a register that is
    bound (checkpointed/annotated) at *every* definition... relaxed to *at
    least one* binding existing, with the exact ordering property checked
    dynamically by the resilient machine's paranoid mode.

    Returns ``(region_id, reg)`` pairs with no binding at all.
    """
    from repro.compiler.pruning import PRUNED_ANNOTATION

    bound: set[Reg] = set(program.live_in)
    for instr in program.instructions():
        if instr.is_checkpoint:
            bound.add(instr.srcs[0])
        elif instr.dest is not None and PRUNED_ANNOTATION in instr.annotations:
            bound.add(instr.dest)

    gaps: list[tuple[int, Reg]] = []
    recovery = build_recovery_map(program)
    for rid, entry in recovery.entries.items():
        for reg in entry.live_in:
            if reg not in bound:
                gaps.append((rid, reg))
    return gaps
