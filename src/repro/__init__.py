"""Turnpike: lightweight soft error resilience for in-order cores.

A full Python reproduction of the MICRO 2021 paper: the TK ISA and
compiler (region partitioning, eager checkpointing, the Turnpike
optimization suite), a trace-driven in-order timing model with the gated
store buffer / CLQ / hardware-coloring microarchitecture, an acoustic
sensor model, a fault-injection framework that validates the recovery
protocol, the 36-benchmark synthetic workload suite, and the experiment
harness regenerating every figure and table of the evaluation.

Quickstart::

    from repro import (
        load_workload, compile_program, compile_baseline,
        turnpike_config, turnstile_config, simulate_trace,
    )
    from repro.arch import ResilienceHardwareConfig
    from repro.runtime import execute

    wl = load_workload("CPU2017.lbm")
    compiled = compile_program(wl.program, turnpike_config())
    result = execute(compiled.program, wl.fresh_memory(), collect_trace=True)
    stats = simulate_trace(
        result.trace, resilience=ResilienceHardwareConfig.turnpike(wcdl=10)
    )
    print(stats.cycles, stats.colored_released, stats.warfree_released)
"""

from repro.compiler import (
    CompiledProgram,
    CompilerConfig,
    compile_baseline,
    compile_program,
    figure21_configs,
    turnpike_config,
    turnstile_config,
)
from repro.arch import (
    CoreConfig,
    InOrderCore,
    ResilienceHardwareConfig,
    SimStats,
    simulate_trace,
    slowdown,
)
from repro.runtime import (
    Injection,
    InjectionTarget,
    Memory,
    ResilienceConfig,
    ResilientMachine,
    compile_fast,
    execute,
    execute_fast,
)
from repro.workloads import (
    BenchmarkProfile,
    Workload,
    all_profiles,
    build_workload,
    load_workload,
)
from repro.harness import (
    GLOBAL_CACHE,
    RunCache,
    default_benchmarks,
    geomean,
    normalized_time,
    simulate,
)

def _detect_version() -> str:
    """Package version: installed metadata first, source fallback second.

    The fallback keeps ``repro --version`` and the service handshake
    working from a plain ``PYTHONPATH=src`` checkout, where no
    distribution metadata exists; keep it in sync with
    ``pyproject.toml``.
    """
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # PackageNotFoundError or metadata machinery issues
        return "1.0.0"


__version__ = _detect_version()

__all__ = [
    "CompiledProgram",
    "CompilerConfig",
    "compile_baseline",
    "compile_program",
    "figure21_configs",
    "turnpike_config",
    "turnstile_config",
    "CoreConfig",
    "InOrderCore",
    "ResilienceHardwareConfig",
    "SimStats",
    "simulate_trace",
    "slowdown",
    "Injection",
    "InjectionTarget",
    "Memory",
    "ResilienceConfig",
    "ResilientMachine",
    "compile_fast",
    "execute",
    "execute_fast",
    "BenchmarkProfile",
    "Workload",
    "all_profiles",
    "build_workload",
    "load_workload",
    "GLOBAL_CACHE",
    "RunCache",
    "default_benchmarks",
    "geomean",
    "normalized_time",
    "simulate",
    "__version__",
]
