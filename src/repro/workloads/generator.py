"""Profile-driven benchmark generation.

A :class:`BenchmarkProfile` describes a named benchmark as a sequence of
kernel invocations (with parameters) wrapped in an outer repeat loop,
built deterministically from the profile's seed. :func:`build_workload`
turns a profile into a :class:`Workload`: a virtual-register program plus
a memory-image factory.

Trip counts are expressed as *weights*; the generator scales them so the
fault-free dynamic instruction count of the baseline build lands near the
profile's ``target_instructions`` — keeping full-suite sweeps fast while
preserving each benchmark's character.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.runtime.memory import Memory
from repro.workloads.kernels import Arena, EMITTERS, KernelContext


@dataclass(frozen=True)
class KernelSpec:
    """One kernel invocation inside a benchmark."""

    kind: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EMITTERS:
            raise ValueError(f"unknown kernel kind {self.kind!r}")


@dataclass(frozen=True)
class BenchmarkProfile:
    """Deterministic description of one named benchmark."""

    name: str
    suite: str  # "CPU2006" | "CPU2017" | "SPLASH3"
    kernels: tuple[KernelSpec, ...]
    seed: int = 1
    outer_reps: int = 1
    notes: str = ""

    @property
    def uid(self) -> str:
        return f"{self.suite}.{self.name}"


@dataclass
class Workload:
    """A ready-to-compile benchmark: program + initial memory."""

    profile: BenchmarkProfile
    program: Program
    arena: Arena
    _pristine: Memory | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def name(self) -> str:
        return self.profile.uid

    def fresh_memory(self) -> Memory:
        """A new memory image with every array initialised.

        The pristine image is materialised once (array regeneration is
        seeded PRNG work that dominates repeated functional runs) and
        every caller gets an independent copy of it.
        """
        if self._pristine is None:
            mem = Memory()
            for spec in self.arena.arrays:
                mem.write_words(spec.base, spec.initial_words())
            self._pristine = mem
        return self._pristine.copy()


def build_workload(profile: BenchmarkProfile) -> Workload:
    """Materialise the profile into a program (deterministic per seed)."""
    rng = random.Random(profile.seed)
    builder = ProgramBuilder(profile.uid)
    arena = Arena(seed=profile.seed * 1000)
    ctx = KernelContext(builder=builder, arena=arena, rng=rng)

    builder.begin_block("entry")

    if profile.outer_reps > 1:
        rep = builder.li(0)
        rep_limit = builder.li(profile.outer_reps)
        rep_header = builder.fresh_label("main_rep_h")
        rep_exit = builder.fresh_label("main_rep_x")
        builder.jmp(rep_header)
        builder.begin_block(rep_header)
        for spec in profile.kernels:
            EMITTERS[spec.kind](ctx, **spec.params)
        builder.addi(rep, 1, dest=rep)
        builder.blt(rep, rep_limit, rep_header, rep_exit)
        builder.begin_block(rep_exit)
    else:
        for spec in profile.kernels:
            EMITTERS[spec.kind](ctx, **spec.params)

    builder.ret()
    program = builder.finish()
    return Workload(profile=profile, program=program, arena=arena)
