"""Synthetic workloads standing in for SPEC CPU2006/2017 and SPLASH-3."""

from repro.workloads.generator import (
    BenchmarkProfile,
    KernelSpec,
    Workload,
    build_workload,
)
from repro.workloads.kernels import Arena, ArraySpec, EMITTERS, KernelContext
from repro.workloads.extras import extra_profiles, load_extra_workload
from repro.workloads.suites import (
    all_profiles,
    load_workload,
    profile,
    quick_subset,
    suites,
)

__all__ = [
    "BenchmarkProfile",
    "KernelSpec",
    "Workload",
    "build_workload",
    "Arena",
    "ArraySpec",
    "EMITTERS",
    "KernelContext",
    "extra_profiles",
    "load_extra_workload",
    "all_profiles",
    "load_workload",
    "profile",
    "quick_subset",
    "suites",
]
