"""An optional "EXTRAS" suite built on the extended kernel library.

Not part of the paper's 36 benchmarks (and deliberately excluded from
``all_profiles()`` so the calibrated figures stay stable); useful for
stress-testing the compiler/protocol on code shapes SPEC-style profiles
under-represent, and as worked examples of custom profiles.
"""

from __future__ import annotations

import repro.workloads.extra_kernels  # noqa: F401 - registers the kernels
from repro.workloads.generator import (
    BenchmarkProfile,
    KernelSpec,
    Workload,
    build_workload,
)


def _k(kind: str, **params) -> KernelSpec:
    return KernelSpec(kind=kind, params=params)


def extra_profiles() -> list[BenchmarkProfile]:
    """Four extra benchmarks exercising the extended kernels."""
    return [
        BenchmarkProfile(
            name="crc32",
            suite="EXTRAS",
            seed=901,
            kernels=(
                _k("crc", trip=1200, array_words=4096, rounds=4),
            ),
            notes="checksum: ALU-chain-bound with table lookups",
        ),
        BenchmarkProfile(
            name="mergesort",
            suite="EXTRAS",
            seed=902,
            kernels=(
                _k("merge_pass", trip=1500, run_words=2048),
                _k("crc", trip=300, array_words=1024, rounds=2),
            ),
            notes="merge pass: data-dependent branches + output stream",
        ),
        BenchmarkProfile(
            name="spmv",
            suite="EXTRAS",
            seed=903,
            kernels=(
                _k("spmv", rows=120, nnz_per_row=12, vector_words=4096),
            ),
            notes="CSR SpMV: gather-indirect loads, one store per row",
        ),
        BenchmarkProfile(
            name="fir",
            suite="EXTRAS",
            seed=904,
            kernels=(
                _k("fir", trip=1100, array_words=4096, taps=5),
            ),
            notes="FIR filter: sliding-window loads, tap-held registers",
        ),
    ]


def load_extra_workload(name: str) -> Workload:
    for prof in extra_profiles():
        if prof.name == name or prof.uid == name:
            return build_workload(prof)
    raise KeyError(f"no extra benchmark {name!r}")
