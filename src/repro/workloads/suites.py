"""The 36 named benchmarks of the paper's evaluation.

Each SPEC CPU2006/CPU2017/SPLASH-3 benchmark is modelled as a seeded
synthetic profile whose kernel mix reflects its documented character
(pointer chasing mcf, streaming lbm/bwaves, branchy gcc/deepsjeng, the
LIVM-sensitive exchange2/leela/lu-cg/radix, the LICM-sensitive
deepsjeng/fotonik3d/nab/x264, and the spill-heavy gemsfdtd/lbm that the
store-aware register allocator rescues). Absolute dynamic lengths are
kept in the tens of thousands of instructions so full-suite sweeps run in
seconds, not hours; the figures normalise everything, so only relative
behaviour matters.
"""

from __future__ import annotations

from repro.workloads.generator import BenchmarkProfile, KernelSpec, Workload, build_workload


def _k(kind: str, **params) -> KernelSpec:
    return KernelSpec(kind=kind, params=params)


def _profiles() -> list[BenchmarkProfile]:
    profiles: list[BenchmarkProfile] = []

    def add(name: str, suite: str, seed: int, kernels: list[KernelSpec], notes: str = ""):
        profiles.append(
            BenchmarkProfile(
                name=name,
                suite=suite,
                seed=seed,
                kernels=tuple(kernels),
                notes=notes,
            )
        )

    # ---- SPEC CPU2006 ----------------------------------------------------
    add("astar", "CPU2006", 101, [
        _k("pointer_chase", trip=1200, nodes=16384, store_stride=64),
        _k("branchy", trip=800, array_words=1024, depth=2),
    ], "path-finding: pointer chasing + data-dependent branches")
    add("bwaves", "CPU2006", 102, [
        _k("streaming", trip=400, array_words=8192, ops=4, unroll=4),
        _k("stencil", trip=600, array_words=4096),
    ], "dense fluid solver: long store-sparse compute regions")
    add("bzip2", "CPU2006", 103, [
        _k("histogram", trip=900, keys_words=2048, bins=256),
        _k("branchy", trip=700, array_words=2048, depth=2),
    ], "compression: table updates with WAR conflicts")
    add("gcc", "CPU2006", 104, [
        _k("branchy", trip=1400, array_words=4096, depth=3),
        _k("histogram", trip=500, keys_words=1024, bins=128),
    ], "compiler: branchy, store-dense, small regions")
    add("gemsfdtd", "CPU2006", 105, [
        _k("spill_pressure", trip=500, array_words=4096, accumulators=20, coefficients=14),
        _k("stencil", trip=700, array_words=8192),
    ], "FDTD solver: extreme register pressure (RA-trick target)")
    add("gobmk", "CPU2006", 106, [
        _k("branchy", trip=900, array_words=2048, depth=2),
        _k("histogram", trip=700, keys_words=512, bins=64),
    ], "go engine: branchy board updates")
    add("hmmer", "CPU2006", 107, [
        _k("streaming", trip=260, array_words=4096, ops=3, unroll=4),
        _k("compute_inner", outer_trip=140, inner_trip=10, array_words=4096),
    ], "profile HMM: regular dynamic-programming sweeps")
    add("leslie3d", "CPU2006", 108, [
        _k("stencil", trip=320, array_words=8192, unroll=4),
        _k("streaming", trip=160, array_words=8192, ops=2, unroll=4),
    ], "CFD stencils")
    add("libquan", "CPU2006", 109, [
        _k("compute_inner", outer_trip=220, inner_trip=10, array_words=2048),
        _k("reduction_divs", trip=600, array_words=1024),
    ], "quantum simulation: gate loops over amplitudes")
    add("mcf", "CPU2006", 110, [
        _k("pointer_chase", trip=2500, nodes=24576, work=1, store_stride=64),
    ], "network simplex: cache-hostile pointer chasing")
    add("milc", "CPU2006", 111, [
        _k("streaming", trip=250, array_words=16384, ops=4, unroll=4),
        _k("matmul", n=8, reps=4),
    ], "lattice QCD: su3 matrix kernels")
    add("omnetpp", "CPU2006", 112, [
        _k("pointer_chase", trip=1000, nodes=8192, store_stride=64),
        _k("branchy", trip=600, array_words=1024, depth=2),
    ], "discrete event simulation: heap walks")
    add("perlbench", "CPU2006", 113, [
        _k("branchy", trip=1000, array_words=2048, depth=3),
        _k("pointer_chase", trip=500, nodes=4096, store_stride=64),
    ], "interpreter: dispatch-heavy")
    add("soplex", "CPU2006", 114, [
        _k("matmul", n=10, reps=3),
        _k("reduction_divs", trip=500, array_words=2048),
    ], "LP solver: dense algebra + divisions")
    add("xalan", "CPU2006", 115, [
        _k("pointer_chase", trip=900, nodes=8192, store_stride=64),
        _k("histogram", trip=600, keys_words=1024, bins=128),
    ], "XSLT: DOM walks + tables")
    add("zeusmp", "CPU2006", 116, [
        _k("stencil", trip=240, array_words=8192, unroll=4),
        _k("spill_pressure", trip=300, array_words=2048, accumulators=18, coefficients=12),
    ], "magnetohydrodynamics: wide stencils, high pressure")

    # ---- SPEC CPU2017 ----------------------------------------------------
    add("bwaves", "CPU2017", 201, [
        _k("streaming", trip=450, array_words=8192, ops=4, unroll=4),
    ], "fluid dynamics: pure streaming")
    add("cactubssn", "CPU2017", 202, [
        _k("matmul", n=8, reps=6),
        _k("compute_inner", outer_trip=130, inner_trip=9, array_words=4096),
    ], "numerical relativity: LICM-sensitive inner loops")
    add("deepsjeng", "CPU2017", 203, [
        _k("branchy", trip=1200, array_words=2048, depth=3),
        _k("compute_inner", outer_trip=110, inner_trip=9, array_words=1024),
    ], "chess: branchy search with store-free evaluation loops (LICM)")
    add("exchange2", "CPU2017", 204, [
        _k("iv_lockstep", trip=1800, array_words=2048, ivs=4),
        _k("branchy", trip=400, array_words=512, depth=1),
    ], "sudoku solver: many lockstep counters (LIVM target)")
    add("fotonik3d", "CPU2017", 205, [
        _k("compute_inner", outer_trip=240, inner_trip=10, array_words=8192),
        _k("stencil", trip=500, array_words=4096),
    ], "photonics FDTD: store-free field loops (LICM target)")
    add("lbm", "CPU2017", 206, [
        _k("streaming", trip=350, array_words=16384, ops=3, unroll=4),
        _k("spill_pressure", trip=400, array_words=4096, accumulators=22, coefficients=16),
    ], "lattice Boltzmann: streaming + spill-heavy collision (RA trick)")
    add("leela", "CPU2017", 207, [
        _k("iv_lockstep", trip=1500, array_words=2048, ivs=3),
        _k("branchy", trip=500, array_words=1024, depth=2),
    ], "go engine: lockstep feature counters (LIVM)")
    add("mcf", "CPU2017", 208, [
        _k("pointer_chase", trip=2800, nodes=24576, work=1, store_stride=64),
    ], "network simplex, bigger graphs")
    add("nab", "CPU2017", 209, [
        _k("compute_inner", outer_trip=180, inner_trip=10, array_words=2048),
        _k("reduction_divs", trip=500, array_words=2048),
    ], "molecular dynamics: store-free force loops (LICM)")
    add("roms", "CPU2017", 210, [
        _k("stencil", trip=290, array_words=8192, unroll=4),
        _k("streaming", trip=500, array_words=4096, ops=2),
    ], "ocean model stencils")
    add("x264", "CPU2017", 211, [
        _k("compute_inner", outer_trip=190, inner_trip=10, array_words=4096),
        _k("histogram", trip=400, keys_words=1024, bins=64),
    ], "video encoder: SAD loops without stores (LICM)")
    add("xalan", "CPU2017", 212, [
        _k("pointer_chase", trip=900, nodes=8192, store_stride=64),
        _k("branchy", trip=500, array_words=1024, depth=2),
    ], "XSLT")
    add("xz", "CPU2017", 213, [
        _k("histogram", trip=800, keys_words=4096, bins=256),
        _k("branchy", trip=600, array_words=2048, depth=2),
    ], "compression: match tables")

    # ---- SPLASH-3 -----------------------------------------------------------
    add("cholesky", "SPLASH3", 301, [
        _k("matmul", n=10, reps=4),
        _k("iv_lockstep", trip=600, array_words=1024, ivs=2),
    ], "sparse factorisation: supernode updates")
    add("fft", "SPLASH3", 302, [
        _k("streaming", trip=200, array_words=4096, ops=3, unroll=4),
        _k("compute_inner", outer_trip=130, inner_trip=9, array_words=4096),
    ], "radix-sqrt(n) FFT: butterfly sweeps")
    add("lu-cg", "SPLASH3", 303, [
        _k("matmul", n=12, reps=3),
        _k("iv_lockstep", trip=800, array_words=1024, ivs=3),
    ], "contiguous LU: blocked updates with lockstep pointers (LIVM)")
    add("ocean-ng", "SPLASH3", 304, [
        _k("stencil", trip=340, array_words=16384, unroll=4),
        _k("streaming", trip=400, array_words=8192, ops=2),
    ], "ocean simulation: grid relaxation")
    add("radiosity", "SPLASH3", 305, [
        _k("pointer_chase", trip=800, nodes=8192, store_stride=64),
        _k("reduction_divs", trip=400, array_words=1024),
    ], "hierarchical radiosity: patch interactions")
    add("radix", "SPLASH3", 306, [
        _k("radix_pass", trip=1200, array_words=4096),
        _k("streaming", trip=600, array_words=4096, ops=3),
        _k("iv_lockstep", trip=500, array_words=1024, ivs=2),
    ], "radix sort: counting passes with lockstep IVs (LIVM, LICM)")
    add("water-sp", "SPLASH3", 307, [
        _k("reduction_divs", trip=900, array_words=2048),
        _k("compute_inner", outer_trip=110, inner_trip=9, array_words=2048),
    ], "molecular dynamics: pairwise forces with divisions")

    return profiles


_PROFILES: list[BenchmarkProfile] | None = None


def all_profiles() -> list[BenchmarkProfile]:
    """All 36 benchmark profiles, in the paper's presentation order."""
    global _PROFILES
    if _PROFILES is None:
        _PROFILES = _profiles()
    return list(_PROFILES)


def profile(uid: str) -> BenchmarkProfile:
    """Look up by ``SUITE.name`` (e.g. ``"CPU2017.lbm"``)."""
    for prof in all_profiles():
        if prof.uid == uid:
            return prof
    raise KeyError(f"no benchmark {uid!r}")


def suites() -> dict[str, list[BenchmarkProfile]]:
    out: dict[str, list[BenchmarkProfile]] = {}
    for prof in all_profiles():
        out.setdefault(prof.suite, []).append(prof)
    return out


def load_workload(uid: str) -> Workload:
    return build_workload(profile(uid))


def quick_subset(count: int = 6) -> list[BenchmarkProfile]:
    """A small diverse subset for fast tests: one per behaviour class."""
    picks = [
        "CPU2006.mcf",
        "CPU2006.gcc",
        "CPU2017.bwaves",
        "CPU2017.exchange2",
        "CPU2017.lbm",
        "SPLASH3.radix",
    ]
    return [profile(uid) for uid in picks[:count]]
