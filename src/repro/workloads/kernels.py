"""Kernel library for synthetic benchmarks.

Each emitter appends one loop nest to a program under construction and
leaves the builder positioned in a fresh fall-through block. The kernels
are chosen to span the code patterns the paper's figures hinge on:

* ``streaming``        — unit-stride load/compute/store (lbm, bwaves);
* ``stencil``          — neighbourhood reads, one write (leslie3d, roms);
* ``pointer_chase``    — serial dependent loads (mcf, omnetpp);
* ``histogram``        — read-modify-write with WAR conflicts (gobmk);
* ``matmul``           — register-blocked triple loop (cactubssn);
* ``radix_pass``       — counting-sort pass with lockstep IVs (radix);
* ``branchy``          — data-dependent control flow (gcc, deepsjeng);
* ``reduction_divs``   — division-heavy scalar reduction (nab, water-sp);
* ``iv_lockstep``      — several pointer-bump IVs, the LIVM target
  (exchange2, leela, lu-cg);
* ``compute_inner``    — store-free inner loop under a storing outer
  loop, the LICM checkpoint-sinking target (fotonik3d, x264);
* ``spill_pressure``   — more live values than registers with write-hot
  accumulators, the store-aware-RA target (gemsfdtd, lbm).

All loops are counted (no data-dependent trip counts), so every workload
terminates regardless of memory contents.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.isa.builder import ProgramBuilder
from repro.isa.registers import Reg
from repro.runtime.memory import DATA_BASE, DATA_LIMIT, WORD


@dataclass
class ArraySpec:
    """A reserved data-segment array plus how to initialise it."""

    base: int
    length: int  # in words
    init: str  # "random" | "zeros" | "perm" | "indices"
    seed: int = 0

    def initial_words(self) -> list[int]:
        if self.init == "zeros":
            return [0] * self.length
        if self.init == "indices":
            return list(range(self.length))
        rng = random.Random(self.seed)
        if self.init == "random":
            return [rng.randrange(-(1 << 20), 1 << 20) for _ in range(self.length)]
        if self.init == "perm":
            # A single-cycle permutation stored as word *addresses*: each
            # cell holds the address of the next node (pointer chasing).
            order = list(range(self.length))
            rng.shuffle(order)
            words = [0] * self.length
            for pos in range(self.length):
                src = order[pos]
                dst = order[(pos + 1) % self.length]
                words[src] = self.base + dst * WORD
            return words
        raise ValueError(f"unknown init {self.init!r}")


class Arena:
    """Bump allocator over the data segment."""

    def __init__(self, seed: int = 0):
        self._next = DATA_BASE + WORD  # keep address 0 unused
        self._seed = seed
        self.arrays: list[ArraySpec] = []

    def alloc(self, words: int, init: str = "random") -> ArraySpec:
        base = self._next
        self._next += words * WORD
        if self._next >= DATA_LIMIT:
            raise MemoryError("data segment exhausted; shrink the workload")
        self._seed += 1
        spec = ArraySpec(base=base, length=words, init=init, seed=self._seed)
        self.arrays.append(spec)
        return spec


@dataclass
class KernelContext:
    """Shared state while emitting one benchmark program."""

    builder: ProgramBuilder
    arena: Arena
    rng: random.Random
    zero: Reg | None = None

    def zero_reg(self) -> Reg:
        if self.zero is None:
            self.zero = self.builder.li(0)
        return self.zero


def _counted_loop_header(ctx: KernelContext, trip: int, hint: str):
    """Emit preheader init + loop header; returns (i, limit, header, exit)."""
    b = ctx.builder
    i = b.li(0)
    limit = b.li(trip)
    header = b.fresh_label(f"{hint}_h")
    exit_label = b.fresh_label(f"{hint}_x")
    b.jmp(header)
    b.begin_block(header)
    return i, limit, header, exit_label


def _close_loop(ctx: KernelContext, i: Reg, limit: Reg, header: str, exit_label: str):
    b = ctx.builder
    b.addi(i, 1, dest=i)
    b.blt(i, limit, header, exit_label)
    b.begin_block(exit_label)


def _indexed_address(ctx: KernelContext, base_reg: Reg, index: Reg) -> Reg:
    """addr = base + index*4 in array-index style (strength-reduction fodder)."""
    b = ctx.builder
    off = b.shli(index, 2)
    return b.add(base_reg, off)


def emit_streaming(
    ctx: KernelContext,
    trip: int,
    array_words: int,
    ops: int = 2,
    unroll: int = 1,
):
    """c[i] = f(a[i], b[i]) with ``ops`` ALU ops of work per element.

    ``unroll`` replicates the body (as -O3 does for hot streaming loops),
    redefining the same accumulator register each time. Only the last
    definition per region is live-out — the Figure 3 effect that makes
    checkpoint counts sensitive to region (store buffer) size.
    """
    b = ctx.builder
    a = ctx.arena.alloc(array_words, "random")
    bb = ctx.arena.alloc(array_words, "random")
    c = ctx.arena.alloc(array_words, "zeros")
    if array_words & (array_words - 1):
        raise ValueError("streaming arrays must be a power-of-two length")
    ra = b.li(a.base)
    rb = b.li(bb.base)
    rc = b.li(c.base)
    mask = b.li(array_words - 1)
    carry = b.li(0)  # live-out accumulator redefined by every unroll copy
    i, limit, header, exit_label = _counted_loop_header(ctx, trip, "stream")
    base_idx = b.muli(i, unroll) if unroll > 1 else i
    for u in range(unroll):
        idx = b.and_(b.addi(base_idx, u) if u else base_idx, mask)
        va = b.load(_indexed_address(ctx, ra, idx))
        vb = b.load(_indexed_address(ctx, rb, idx))
        acc = b.add(va, vb)
        for _ in range(max(0, ops - 1)):
            acc = b.add(acc, va)
        b.add(acc, carry, dest=carry)
        b.store(acc, _indexed_address(ctx, rc, idx))
    _close_loop(ctx, i, limit, header, exit_label)
    out = ctx.arena.alloc(8, "zeros")
    b.store(carry, b.li(out.base))


def emit_stencil(
    ctx: KernelContext, trip: int, array_words: int, unroll: int = 1
):
    """out[i] = in[i-1] + in[i] + in[i+1] over a circular window.

    ``unroll`` replicates the body with a shared running value (the
    Figure 3 redefinition pattern), as -O3 would for this loop shape.
    """
    b = ctx.builder
    src = ctx.arena.alloc(array_words, "random")
    dst = ctx.arena.alloc(array_words, "zeros")
    rs = b.li(src.base)
    rd = b.li(dst.base)
    span = b.li(array_words - 2)
    carry = b.li(0)
    i, limit, header, exit_label = _counted_loop_header(ctx, trip, "stencil")
    base_idx = b.muli(i, unroll) if unroll > 1 else i
    for u in range(unroll):
        idx = b.rem(b.addi(base_idx, u) if u else base_idx, span)
        idx = b.addi(idx, 1)
        addr = _indexed_address(ctx, rs, idx)
        left = b.load(addr, offset=-WORD)
        mid = b.load(addr)
        right = b.load(addr, offset=WORD)
        s = b.add(left, mid)
        s = b.add(s, right)
        b.add(s, carry, dest=carry)
        b.store(s, _indexed_address(ctx, rd, idx))
    _close_loop(ctx, i, limit, header, exit_label)
    out = ctx.arena.alloc(8, "zeros")
    b.store(carry, b.li(out.base))


def emit_pointer_chase(
    ctx: KernelContext,
    trip: int,
    nodes: int,
    work: int = 1,
    store_stride: int = 0,
):
    """ptr = load(ptr) chains: serial, cache-hostile when nodes is large.

    With ``store_stride > 0`` every iteration also writes a scratch field
    (as mcf's network simplex updates node state), which keeps regions
    short and exercises the delinquent-load -> checkpoint data hazard the
    paper's Figure 6 describes.
    """
    b = ctx.builder
    chain = ctx.arena.alloc(nodes, "perm")
    sums = ctx.arena.alloc(max(64, store_stride), "zeros")
    ptr = b.li(chain.base)
    acc = b.li(0)
    rsum = b.li(sums.base)
    smask = b.li(max(63, store_stride - 1))
    i, limit, header, exit_label = _counted_loop_header(ctx, trip, "chase")
    b.load(ptr, dest=ptr)  # the delinquent load updating a live-out reg
    acc = b.add(acc, ptr, dest=acc)
    for _ in range(work):
        acc = b.xor(acc, ptr, dest=acc)
    if store_stride > 0:
        slot = b.and_(i, smask)
        b.store(acc, _indexed_address(ctx, rsum, slot))
    _close_loop(ctx, i, limit, header, exit_label)
    b.store(acc, rsum)


def emit_histogram(
    ctx: KernelContext, trip: int, keys_words: int, bins: int, work: int = 3
):
    """bins[key]++: loads and stores the same address (WAR in-region).

    ``work`` extra ALU ops per iteration model the key hashing real table
    codes do between memory operations.
    """
    b = ctx.builder
    keys = ctx.arena.alloc(keys_words, "random")
    table = ctx.arena.alloc(bins, "zeros")
    rk = b.li(keys.base)
    rt = b.li(table.base)
    kmask = b.li(keys_words - 1)
    bmask = b.li(bins - 1)
    i, limit, header, exit_label = _counted_loop_header(ctx, trip, "hist")
    ki = b.and_(i, kmask)
    key = b.load(_indexed_address(ctx, rk, ki))
    for step in range(work):
        key = b.xor(key, b.shri(key, 3 + step))
    slot = b.and_(key, bmask)
    addr = _indexed_address(ctx, rt, slot)
    count = b.load(addr)
    count = b.addi(count, 1)
    b.store(count, addr)
    _close_loop(ctx, i, limit, header, exit_label)


def emit_matmul(ctx: KernelContext, n: int, reps: int = 1):
    """Register-blocked n x n matrix multiply (n kept small, looped)."""
    b = ctx.builder
    a = ctx.arena.alloc(n * n, "random")
    bm = ctx.arena.alloc(n * n, "random")
    c = ctx.arena.alloc(n * n, "zeros")
    ra = b.li(a.base)
    rb = b.li(bm.base)
    rc = b.li(c.base)
    rn = b.li(n)
    r, rlimit, rheader, rexit = _counted_loop_header(ctx, reps, "mm_rep")
    i, ilimit, iheader, iexit = _counted_loop_header(ctx, n, "mm_i")
    j, jlimit, jheader, jexit = _counted_loop_header(ctx, n, "mm_j")
    acc = b.li(0)
    k, klimit, kheader, kexit = _counted_loop_header(ctx, n, "mm_k")
    row = b.mul(i, rn)
    aidx = b.add(row, k)
    va = b.load(_indexed_address(ctx, ra, aidx))
    col = b.mul(k, rn)
    bidx = b.add(col, j)
    vb = b.load(_indexed_address(ctx, rb, bidx))
    prod = b.mul(va, vb)
    b.add(acc, prod, dest=acc)
    _close_loop(ctx, k, klimit, kheader, kexit)
    crow = b.mul(i, rn)
    cidx = b.add(crow, j)
    b.store(acc, _indexed_address(ctx, rc, cidx))
    _close_loop(ctx, j, jlimit, jheader, jexit)
    _close_loop(ctx, i, ilimit, iheader, iexit)
    _close_loop(ctx, r, rlimit, rheader, rexit)


def emit_radix_pass(ctx: KernelContext, trip: int, array_words: int):
    """Counting-sort style pass with two lockstep pointer IVs (LIVM bait)."""
    b = ctx.builder
    src = ctx.arena.alloc(array_words, "random")
    dst = ctx.arena.alloc(array_words, "zeros")
    counts = ctx.arena.alloc(16, "zeros")
    rcnt = b.li(counts.base)
    # Hand-written pointer-bumping: two extra basic IVs in lockstep with i.
    psrc = b.li(src.base)
    pdst = b.li(dst.base)
    if trip > array_words:
        raise ValueError("radix trip count must not exceed the array length")
    i, limit, header, exit_label = _counted_loop_header(ctx, trip, "radix")
    v = b.load(psrc)
    digit = b.andi(v, 15)
    caddr = _indexed_address(ctx, rcnt, digit)
    cnt = b.load(caddr)
    cnt = b.addi(cnt, 1)
    b.store(cnt, caddr)
    b.store(v, pdst)
    b.addi(psrc, WORD, dest=psrc)
    b.addi(pdst, WORD, dest=pdst)
    _close_loop(ctx, i, limit, header, exit_label)


def emit_branchy(ctx: KernelContext, trip: int, array_words: int, depth: int = 2):
    """Data-dependent branching over random data (predictor-hostile)."""
    b = ctx.builder
    data = ctx.arena.alloc(array_words, "random")
    out = ctx.arena.alloc(array_words, "zeros")
    rd = b.li(data.base)
    ro = b.li(out.base)
    mask = b.li(array_words - 1)
    zero = ctx.zero_reg()
    i, limit, header, exit_label = _counted_loop_header(ctx, trip, "branchy")
    idx = b.and_(i, mask)
    v = b.load(_indexed_address(ctx, rd, idx))
    acc = b.mov(v)
    for level in range(depth):
        bit = b.andi(v, 1 << level)
        then_l = b.fresh_label(f"br{level}_t")
        else_l = b.fresh_label(f"br{level}_e")
        join_l = b.fresh_label(f"br{level}_j")
        b.bne(bit, zero, then_l, else_l)
        b.begin_block(then_l)
        b.addi(acc, 3 + level, dest=acc)
        b.jmp(join_l)
        b.begin_block(else_l)
        b.xor(acc, v, dest=acc)
        b.jmp(join_l)
        b.begin_block(join_l)
    b.store(acc, _indexed_address(ctx, ro, idx))
    _close_loop(ctx, i, limit, header, exit_label)


def emit_reduction_divs(ctx: KernelContext, trip: int, array_words: int):
    """Long-latency scalar reduction: division chains with one result
    store per iteration (force/energy write-back, as MD codes do)."""
    b = ctx.builder
    data = ctx.arena.alloc(array_words, "random")
    out = ctx.arena.alloc(64, "zeros")
    rd = b.li(data.base)
    ro = b.li(out.base)
    mask = b.li(array_words - 1)
    omask = b.li(63)
    acc = b.li(1)
    i, limit, header, exit_label = _counted_loop_header(ctx, trip, "redux")
    idx = b.and_(i, mask)
    v = b.load(_indexed_address(ctx, rd, idx))
    v = b.or_(v, limit)  # keep divisor nonzero
    q = b.div(acc, v)
    acc = b.add(q, v, dest=acc)
    slot = b.and_(i, omask)
    b.store(acc, _indexed_address(ctx, ro, slot))
    _close_loop(ctx, i, limit, header, exit_label)
    b.store(acc, ro)


def emit_iv_lockstep(ctx: KernelContext, trip: int, array_words: int, ivs: int = 3):
    """Several arrays walked by independent pointer IVs (LIVM merges them)."""
    b = ctx.builder
    if trip > array_words:
        raise ValueError("iv_lockstep trip count must not exceed the array length")
    arrays = [ctx.arena.alloc(array_words, "random") for _ in range(ivs)]
    out = ctx.arena.alloc(array_words, "zeros")
    pointers = [b.li(arr.base) for arr in arrays]
    pout = b.li(out.base)
    i, limit, header, exit_label = _counted_loop_header(ctx, trip, "ivs")
    acc = None
    for ptr in pointers:
        v = b.load(ptr)
        acc = v if acc is None else b.add(acc, v)
    assert acc is not None
    b.store(acc, pout)
    for ptr in pointers:
        b.addi(ptr, WORD, dest=ptr)
    b.addi(pout, WORD, dest=pout)
    # The loop trip count is held <= array_words by the caller.
    _close_loop(ctx, i, limit, header, exit_label)


def emit_compute_inner(
    ctx: KernelContext, outer_trip: int, inner_trip: int, array_words: int
):
    """Store-free inner loop under a storing outer loop (LICM sinking bait).

    The inner loop updates accumulators every iteration; eager
    checkpointing would checkpoint them per inner iteration, LICM sinks
    those checkpoints to the inner-loop exit.
    """
    b = ctx.builder
    data = ctx.arena.alloc(array_words, "random")
    out = ctx.arena.alloc(max(outer_trip, 8), "zeros")
    rd = b.li(data.base)
    ro = b.li(out.base)
    mask = b.li(array_words - 1)
    # The accumulator lives across outer iterations (a running prefix),
    # so it is live at the outer-loop region boundary: eager checkpointing
    # must checkpoint its inner-loop update every inner iteration — until
    # LICM sinks that checkpoint to the inner-loop exit (Figure 10).
    acc = b.li(0)
    o, olimit, oheader, oexit = _counted_loop_header(ctx, outer_trip, "ci_o")
    j, jlimit, jheader, jexit = _counted_loop_header(ctx, inner_trip, "ci_i")
    mix = b.add(o, j)
    idx = b.and_(mix, mask)
    v = b.load(_indexed_address(ctx, rd, idx))
    b.add(acc, v, dest=acc)
    _close_loop(ctx, j, jlimit, jheader, jexit)
    b.store(acc, _indexed_address(ctx, ro, o))
    _close_loop(ctx, o, olimit, oheader, oexit)


def emit_spill_pressure(
    ctx: KernelContext,
    trip: int,
    array_words: int,
    accumulators: int = 16,
    coefficients: int = 16,
):
    """More live values than registers; accumulators are write-hot.

    Weight structure per iteration: each accumulator is read once and
    written once, each coefficient is read twice — equal weight (2) under
    a read/write-blind cost model, so the conventional allocator's
    density/furthest-end tiebreak spills the *accumulators* (their
    intervals stretch to the final result stores) at one spill store per
    accumulator per iteration. The store-aware allocator (write factor 4)
    weighs accumulators at 5 and keeps them resident, spilling read-only
    coefficients instead. Either choice costs two memory ops per spilled
    value per iteration (reload+store vs two reloads), so the
    non-resilient baseline is barely affected — the "maintain allocation
    quality" constraint of Section 4.1.1 — while the resilient build
    sheds its spill stores.
    """
    b = ctx.builder
    data = ctx.arena.alloc(array_words, "random")
    out = ctx.arena.alloc(accumulators, "zeros")
    rd = b.li(data.base)
    mask = b.li(array_words - 1)
    coeffs = [b.li(3 + 2 * k) for k in range(coefficients)]
    accs = [b.li(0) for _ in range(accumulators)]
    i, limit, header, exit_label = _counted_loop_header(ctx, trip, "spill")
    idx = b.and_(i, mask)
    v = b.load(_indexed_address(ctx, rd, idx))
    for k, acc in enumerate(accs):
        c = coeffs[k % len(coeffs)]
        t = b.add(v, c)  # coefficient read 1
        t = b.xor(t, c)  # coefficient read 2
        b.add(acc, t, dest=acc)  # accumulator read + write
    _close_loop(ctx, i, limit, header, exit_label)
    ro = b.li(out.base)
    for k, acc in enumerate(accs):
        b.store(acc, ro, offset=k * WORD)


EMITTERS = {
    "streaming": emit_streaming,
    "stencil": emit_stencil,
    "pointer_chase": emit_pointer_chase,
    "histogram": emit_histogram,
    "matmul": emit_matmul,
    "radix_pass": emit_radix_pass,
    "branchy": emit_branchy,
    "reduction_divs": emit_reduction_divs,
    "iv_lockstep": emit_iv_lockstep,
    "compute_inner": emit_compute_inner,
    "spill_pressure": emit_spill_pressure,
}
