"""Additional kernels beyond the 36-benchmark suite's needs.

These extend the workload library for users building their own
profiles: bit-twiddling (CRC-style), a merge pass over sorted runs, a
CSR sparse-matrix-vector product, and a FIR filter. Each follows the
same emitter contract as :mod:`repro.workloads.kernels` and is
registered into ``EMITTERS`` on import (importing this module is enough
to use the kinds in a :class:`KernelSpec`).
"""

from __future__ import annotations

from repro.runtime.memory import WORD
from repro.workloads.kernels import (
    EMITTERS,
    KernelContext,
    _close_loop,
    _counted_loop_header,
    _indexed_address,
)


def emit_crc(ctx: KernelContext, trip: int, array_words: int, rounds: int = 4):
    """CRC-style bit-mixing over a data stream: long ALU chains, one
    running digest (live-out), one table lookup per round."""
    b = ctx.builder
    data = ctx.arena.alloc(array_words, "random")
    table = ctx.arena.alloc(256, "random")
    out = ctx.arena.alloc(8, "zeros")
    rd = b.li(data.base)
    rt = b.li(table.base)
    mask = b.li(array_words - 1)
    bmask = b.li(255)
    digest = b.li(-1)
    i, limit, header, exit_label = _counted_loop_header(ctx, trip, "crc")
    idx = b.and_(i, mask)
    v = b.load(_indexed_address(ctx, rd, idx))
    b.xor(digest, v, dest=digest)
    for r in range(rounds):
        low = b.and_(digest, bmask)
        entry = b.load(_indexed_address(ctx, rt, low))
        shifted = b.shri(digest, 8)
        mixed = b.xor(shifted, entry)
        b.mov(mixed, dest=digest)
    _close_loop(ctx, i, limit, header, exit_label)
    b.store(digest, b.li(out.base))


def emit_merge_pass(ctx: KernelContext, trip: int, run_words: int):
    """One merge step of mergesort: two sorted runs into an output run.

    Data-dependent branch per element (comparison outcome) and a
    pointer-bump output stream — branchy and store-regular at once.
    """
    b = ctx.builder
    if trip > 2 * run_words:
        raise ValueError("merge trip count must not exceed the output length")
    left = ctx.arena.alloc(run_words, "indices")
    right = ctx.arena.alloc(run_words, "indices")
    out = ctx.arena.alloc(2 * run_words, "zeros")
    pl = b.li(left.base)
    pr = b.li(right.base)
    po = b.li(out.base)
    lmask = b.li(run_words - 1)
    i, limit, header, exit_label = _counted_loop_header(ctx, trip, "merge")
    li_idx = b.and_(i, lmask)
    vl = b.load(_indexed_address(ctx, pl, li_idx))
    vr = b.load(_indexed_address(ctx, pr, li_idx))
    take_l = b.fresh_label("mg_l")
    take_r = b.fresh_label("mg_r")
    join = b.fresh_label("mg_j")
    b.blt(vl, vr, take_l, take_r)
    b.begin_block(take_l)
    b.store(vl, po)
    b.jmp(join)
    b.begin_block(take_r)
    b.store(vr, po)
    b.jmp(join)
    b.begin_block(join)
    b.addi(po, WORD, dest=po)
    _close_loop(ctx, i, limit, header, exit_label)


def emit_spmv(
    ctx: KernelContext,
    rows: int,
    nnz_per_row: int,
    vector_words: int,
):
    """CSR sparse matrix-vector product: indirect loads (gather) per
    nonzero, one result store per row — the irregular-memory pattern of
    scientific codes the suite otherwise lacks."""
    b = ctx.builder
    if vector_words & (vector_words - 1):
        raise ValueError("spmv vector length must be a power of two")
    nnz = rows * nnz_per_row
    values = ctx.arena.alloc(nnz, "random")
    cols = ctx.arena.alloc(nnz, "random")
    vec = ctx.arena.alloc(vector_words, "random")
    out = ctx.arena.alloc(rows, "zeros")
    rv = b.li(values.base)
    rc = b.li(cols.base)
    rx = b.li(vec.base)
    ry = b.li(out.base)
    vmask = b.li(vector_words - 1)
    row, rlimit, rheader, rexit = _counted_loop_header(ctx, rows, "spmv_r")
    acc = b.li(0)
    k, klimit, kheader, kexit = _counted_loop_header(ctx, nnz_per_row, "spmv_k")
    rowbase = b.muli(row, nnz_per_row)
    nz = b.add(rowbase, k)
    a = b.load(_indexed_address(ctx, rv, nz))
    col = b.load(_indexed_address(ctx, rc, nz))
    col_idx = b.and_(col, vmask)
    x = b.load(_indexed_address(ctx, rx, col_idx))  # the gather
    prod = b.mul(a, x)
    b.add(acc, prod, dest=acc)
    _close_loop(ctx, k, klimit, kheader, kexit)
    b.store(acc, _indexed_address(ctx, ry, row))
    _close_loop(ctx, row, rlimit, rheader, rexit)


def emit_fir(ctx: KernelContext, trip: int, array_words: int, taps: int = 5):
    """FIR filter: a sliding window of loads, tap constants kept live in
    registers (steady register pressure), one store per sample."""
    b = ctx.builder
    signal = ctx.arena.alloc(array_words, "random")
    out = ctx.arena.alloc(array_words, "zeros")
    rs = b.li(signal.base)
    ro = b.li(out.base)
    span = b.li(array_words - taps - 1)
    coeffs = [b.li(3 + 2 * t) for t in range(taps)]
    i, limit, header, exit_label = _counted_loop_header(ctx, trip, "fir")
    idx = b.rem(i, span)
    addr = _indexed_address(ctx, rs, idx)
    acc = None
    for t, c in enumerate(coeffs):
        sample = b.load(addr, offset=t * WORD)
        term = b.mul(sample, c)
        acc = term if acc is None else b.add(acc, term)
    b.store(acc, _indexed_address(ctx, ro, idx))
    _close_loop(ctx, i, limit, header, exit_label)


EMITTERS.update(
    {
        "crc": emit_crc,
        "merge_pass": emit_merge_pass,
        "spmv": emit_spmv,
        "fir": emit_fir,
    }
)
