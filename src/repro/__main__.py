"""Command-line interface: ``python -m repro <command> ...``.

Commands:
  list                       — list the 36 benchmarks
  run <uid> [--wcdl N] [--sb N] [--scheme turnpike|turnstile|baseline]
      [--backend fast|codegen|reference]
                             — compile + simulate one benchmark
  inject [uid] [--count N] [--wcdl N] [--targets a,b] [--workers N]
         [--manifest PATH] [--resume] [--export PATH]
         [--accel on|off] [--snapshot-interval N] [--shards LO:HI]
         [--sample] [--ci-width W] [--confidence C] [--token-rate N]
                             — differential fault-injection campaign
                               across protocol variants (parallel,
                               resumable via the manifest; snapshot
                               acceleration on by default and
                               observationally invisible; --shards
                               restricts to a shard-id range — the
                               fabric's lease primitive; --sample
                               switches to stratified importance
                               sampling over the vulnerability map,
                               reporting AVF with a confidence interval
                               instead of per-index records)
  vuln [uid] [--scheme S] [--wcdl N] [--variants a,b]
       [--format text|json] [--no-cache]
       [--validate [--seed N] [--ci-width W]]
                             — bit-level vulnerability analysis: the
                               masked/vulnerable/unknown breakdown per
                               structure, or (--validate) the
                               sampled-vs-exhaustive cross-check on
                               quick benchmarks
  lint <uid>|--all [--scheme S] [--sb N] [--format text|json|sarif]
       [--no-differential] [--strict] [--output PATH] [--workers N]
                             — static resilience verifier over compiled
                               benchmarks (exit 0 clean, 1 findings,
                               2 usage); --workers shards --all across
                               processes
  figure <id>                — regenerate one figure/table on the full
                               suite (fig4, fig14, fig15, fig18, fig19,
                               fig20, fig21, fig22, fig23, fig24, fig25,
                               fig26, table1)
  cache info|clear|warm|prune|verify [--workers N] [--list] [--json]
                             — inspect, empty, pre-populate,
                               generation-sync, or verify the
                               persistent simulation artifact cache
                               (info output is deterministically
                               ordered; --list enumerates artifacts
                               sorted by key, with source digests for
                               codegen modules; prune drops artifacts
                               from dead source generations; verify
                               recompiles one cached codegen module
                               from scratch and compares digests)
  sensors [--clock GHZ]      — sensor-count vs WCDL table
  serve [--port P] [--workers N] [--queue-limit N] [--journal DIR]
        [--role local|coordinator|worker] [--coordinator H:P]
        [--coordinator-journal DIR] [--node-id ID]
                             — run the async batch job service
                               (HTTP/JSON; queue + dedup + crash-safe
                               journal; drains gracefully on SIGTERM).
                               --role coordinator scatters campaigns
                               across registered worker nodes; --role
                               worker enrolls this server with a
                               coordinator via heartbeats
  nodes [--json]             — list a coordinator's worker nodes
  submit run|inject|lint|vuln ... [--wait] [--priority P]
         [--endpoint H:P]   — submit a job to a running service
  jobs [--json] [--mine]     — list service jobs
  result <job-id> [--wait]   — fetch a job's output (exits with the
                               job's own exit code)
"""

from __future__ import annotations

import argparse
import sys


def _cmd_list(_args) -> int:
    from repro.workloads.suites import all_profiles

    for prof in all_profiles():
        print(f"{prof.uid:24s} {prof.notes}")
    return 0


def _cmd_run(args) -> int:
    from repro.harness.runner import run_report_text

    print(
        run_report_text(
            args.uid,
            scheme=args.scheme,
            wcdl=args.wcdl,
            sb_size=args.sb,
            backend=args.backend,
        )
    )
    return 0


def _cmd_inject(args) -> int:
    from repro.faults.campaign import (
        AccelOptions,
        CampaignSpec,
        execute_campaign,
    )

    targets = tuple(t.strip() for t in args.targets.split(",") if t.strip())
    variants = tuple(v.strip() for v in args.variants.split(",") if v.strip())
    try:
        spec = CampaignSpec(
            uid=args.uid,
            wcdl=args.wcdl,
            count=args.count,
            seed=args.seed,
            targets=targets,
            variants=variants,
            shard_size=args.shard_size,
            ecc=args.ecc,
            upset=args.upset,
        )
    except ValueError as exc:
        print(f"invalid campaign: {exc}", file=sys.stderr)
        return 2
    if args.resume and args.manifest is None:
        print("--resume requires --manifest", file=sys.stderr)
        return 2
    only_shards = None
    if args.shards is not None:
        from repro.service.jobs import parse_shard_range

        try:
            lo, hi = parse_shard_range(args.shards)
        except ValueError as exc:
            print(f"invalid --shards: {exc}", file=sys.stderr)
            return 2
        only_shards = set(range(lo, hi))

    if args.snapshot_interval is None:
        accel = AccelOptions(enabled=args.accel == "on")
    else:
        accel = AccelOptions(
            enabled=args.accel == "on",
            snapshot_interval=args.snapshot_interval,
        )
    sampling = None
    if args.sample:
        if args.resume or args.manifest or args.shards:
            print(
                "inject: --sample is adaptive and incompatible with "
                "--resume/--manifest/--shards",
                file=sys.stderr,
            )
            return 2
        from repro.faults.sampling import SamplingOptions

        try:
            sampling = SamplingOptions(
                enabled=True,
                ci_width=args.ci_width,
                confidence=args.confidence,
                token_rate=args.token_rate,
            )
        except ValueError as exc:
            print(f"invalid sampling options: {exc}", file=sys.stderr)
            return 2
    try:
        _report, text = execute_campaign(
            spec,
            manifest_path=args.manifest,
            accel=accel,
            workers=args.workers,
            resume=args.resume,
            export_path=args.export,
            progress=lambda done, total: print(
                f"  shard {done}/{total} done", file=sys.stderr
            ),
            only_shards=only_shards,
            sampling=sampling,
        )
    except ValueError as exc:  # e.g. manifest/spec mismatch on --resume
        print(f"cannot run campaign: {exc}", file=sys.stderr)
        return 2
    print(text)
    if args.export:
        print(f"aggregate written to {args.export}", file=sys.stderr)
    return 0


_VALIDATE_QUICK = ("SPLASH3.radix", "CPU2006.gcc", "CPU2017.exchange2")


def _cmd_vuln(args) -> int:
    import json as _json

    if args.validate:
        from repro.faults.sampling import validate_benchmark

        uids = [args.uid] if args.uid else list(_VALIDATE_QUICK)
        results = []
        for uid in uids:
            try:
                result = validate_benchmark(
                    uid,
                    wcdl=args.wcdl,
                    seed=args.seed,
                    ci_width=args.ci_width,
                    use_cache=not args.no_cache,
                )
            except (KeyError, ValueError) as exc:
                print(f"vuln: cannot validate {uid}: {exc}", file=sys.stderr)
                return 2
            results.append(result)
        if args.format == "json":
            print(_json.dumps(
                {"results": [r.to_dict() for r in results],
                 "ok": all(r.ok for r in results)},
                indent=2, sort_keys=True,
            ))
        else:
            for result in results:
                print(result.render_text())
        return 0 if all(r.ok for r in results) else 1

    if not args.uid:
        print("vuln: need a benchmark uid (or --validate)", file=sys.stderr)
        return 2
    from repro.verify.vuln import vulnerability_map

    variants = tuple(
        v.strip() for v in args.variants.split(",") if v.strip()
    )
    try:
        vmap = vulnerability_map(
            args.uid,
            scheme=args.scheme,
            wcdl=args.wcdl,
            variants=variants,
            use_cache=not args.no_cache,
        )
    except (KeyError, ValueError) as exc:
        print(f"vuln: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(_json.dumps(vmap.to_dict(), indent=2, sort_keys=True))
    else:
        print(vmap.render_text())
    return 0


def _cmd_lint(args) -> int:
    from repro.verify.lint import run_lint

    return run_lint(args)


def _cmd_figure(args) -> int:
    from repro.harness import experiments as exp
    from repro.harness import reporting as rep

    fid = args.id.lower()
    if fid in ("fig4", "fig04"):
        result = exp.fig04_checkpoint_ratio()
        print(rep.format_series_table(
            [result[40], result[4]], value_format="{:.3f}", aggregate="mean",
            title="Figure 4 - checkpoint ratio vs SB size"))
    elif fid in ("fig14", "fig15"):
        result = exp.fig14_fig15_clq_designs()
        key = "overhead" if fid == "fig14" else "warfree_ratio"
        print(rep.format_series_table(
            [result[key]["ideal"], result[key]["compact"]],
            value_format="{:.3f}",
            title=f"Figure {fid[3:]} - ideal vs compact CLQ"))
    elif fid == "fig18":
        for clock, points in exp.fig18_sensor_latency().items():
            print(f"{clock} GHz: " + "  ".join(f"{n}->{lat:.1f}cy" for n, lat in points))
    elif fid == "fig19":
        result = exp.fig19_turnpike_wcdl()
        print(rep.format_series_table(
            [result[w] for w in sorted(result)],
            title="Figure 19 - Turnpike overhead vs WCDL"))
    elif fid == "fig20":
        result = exp.fig20_turnstile_wcdl()
        print(rep.format_series_table(
            [result[w] for w in sorted(result)],
            title="Figure 20 - Turnstile overhead vs WCDL"))
    elif fid == "fig21":
        print(rep.format_series_table(
            exp.fig21_ablation(), title="Figure 21 - optimization ablation"))
    elif fid == "fig22":
        result = exp.fig22_sb_sensitivity()
        series = [result["turnstile"][s] for s in sorted(result["turnstile"])]
        series += [result["turnpike"][s] for s in sorted(result["turnpike"])]
        print(rep.format_series_table(series, title="Figure 22 - SB sensitivity"))
    elif fid == "fig23":
        breakdown = exp.fig23_store_breakdown()
        print(rep.format_breakdown_table(breakdown))
        means = exp.breakdown_means(breakdown)
        print("means:", "  ".join(f"{k}={100 * v:.1f}%" for k, v in means.items()))
    elif fid == "fig24":
        print(rep.format_mapping_table(
            exp.fig24_clq_occupancy(), headers=("average", "maximum"),
            title="Figure 24 - CLQ occupancy"))
    elif fid == "fig25":
        result = exp.fig25_clq_size()
        print(rep.format_series_table(
            [result[2], result[4]], value_format="{:.3f}",
            title="Figure 25 - CLQ-2 vs CLQ-4"))
    elif fid == "fig26":
        data = exp.fig26_region_codesize()
        print(rep.format_mapping_table(
            {k: (v[0], 100 * v[1]) for k, v in data.items()},
            headers=("region size", "growth %"),
            title="Figure 26 - region size / code growth"))
    elif fid == "table1":
        print(rep.format_table1(exp.table1_hw_cost()))
    else:
        print(f"unknown figure id {args.id!r}", file=sys.stderr)
        return 2
    return 0


_SWEEP_ALIASES = {
    "fig4": "fig04", "fig14": "fig14_15", "fig15": "fig14_15",
}


def _sweep_json(name: str, result) -> object:
    """Plain-data projection of one figure result for --json output."""
    from repro.harness.experiments import Series

    def plain(value):
        if isinstance(value, Series):
            return {
                "name": value.name,
                "per_benchmark": value.per_benchmark,
                "geomean": value.geomean,
            }
        if isinstance(value, dict):
            return {str(k): plain(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [plain(v) for v in value]
        if hasattr(value, "__dict__") and not isinstance(value, (int, float, str)):
            return {k: plain(v) for k, v in vars(value).items()}
        return value

    return plain(result)


def _sweep_ecc_fan(args) -> int:
    import json as _json
    import time

    from repro.faults.campaign import CampaignSpec
    from repro.harness.runner import resolve_workers
    from repro.harness.sweep import run_campaign_fan

    if args.figures:
        print(
            "sweep: --ecc-codes fans a fault campaign across codes; "
            "figure ids do not apply",
            file=sys.stderr,
        )
        return 2
    codes = tuple(c.strip() for c in args.ecc_codes.split(",") if c.strip())
    try:
        spec = CampaignSpec(
            uid=args.ecc_uid,
            wcdl=args.ecc_wcdl,
            count=args.ecc_count,
            seed=args.ecc_seed,
            targets=tuple(
                t.strip() for t in args.ecc_targets.split(",") if t.strip()
            ),
            variants=tuple(
                v.strip() for v in args.ecc_variants.split(",") if v.strip()
            ),
            upset=args.ecc_upset,
        )
    except ValueError as exc:
        print(f"sweep: invalid campaign: {exc}", file=sys.stderr)
        return 2
    workers = resolve_workers(args.workers)
    started = time.perf_counter()
    try:
        results = run_campaign_fan(
            spec,
            codes,
            workers=workers,
            progress=lambda label, done, total: print(
                f"  [{label}] shard {done}/{total} done", file=sys.stderr
            ),
        )
    except ValueError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    if args.json:
        payload: dict = {
            label: {
                "spec": report.spec.to_dict(),
                "per_variant": report.per_variant(),
                "per_target": report.per_target(),
            }
            for label, (report, _text) in results.items()
        }
        payload["elapsed_seconds"] = round(elapsed, 3)
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for label, (_report, text) in results.items():
        print(f"=== code axis: {label} ===")
        print(text)
        print()
    print(
        f"fanned {len(results)} code point(s) in {elapsed:.1f}s "
        f"with {workers} worker(s)"
    )
    return 0


def _cmd_sweep(args) -> int:
    import json as _json
    import time

    from repro.harness import experiments as exp
    from repro.harness import reporting as rep
    from repro.harness.runner import resolve_workers

    if args.ecc_codes:
        return _sweep_ecc_fan(args)
    wanted = None
    if args.figures:
        wanted = tuple(
            dict.fromkeys(
                _SWEEP_ALIASES.get(fid.lower(), fid.lower())
                for fid in args.figures
            )
        )
    benchmarks = args.benchmarks.split(",") if args.benchmarks else None
    workers = resolve_workers(args.workers)
    started = time.perf_counter()
    try:
        results = exp.figure_suite(
            benchmarks, figures=wanted, workers=workers
        )
    except ValueError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    if args.json:
        payload = {
            name: _sweep_json(name, result)
            for name, result in results.items()
        }
        payload["elapsed_seconds"] = round(elapsed, 3)
        print(_json.dumps(payload, indent=2, sort_keys=True, default=str))
        return 0
    renderers = {
        "fig04": lambda r: rep.format_series_table(
            [r[40], r[4]], value_format="{:.3f}", aggregate="mean",
            title="Figure 4 - checkpoint ratio vs SB size"),
        "fig14_15": lambda r: "\n".join((
            rep.format_series_table(
                [r["overhead"]["ideal"], r["overhead"]["compact"]],
                value_format="{:.3f}",
                title="Figure 14 - ideal vs compact CLQ overhead"),
            rep.format_series_table(
                [r["warfree_ratio"]["ideal"], r["warfree_ratio"]["compact"]],
                value_format="{:.3f}",
                title="Figure 15 - WAR-free release ratio"),
        )),
        "fig18": lambda r: "\n".join(
            f"{clock} GHz: " + "  ".join(
                f"{n}->{lat:.1f}cy" for n, lat in points)
            for clock, points in r.items()),
        "fig19": lambda r: rep.format_series_table(
            [r[w] for w in sorted(r)],
            title="Figure 19 - Turnpike overhead vs WCDL"),
        "fig20": lambda r: rep.format_series_table(
            [r[w] for w in sorted(r)],
            title="Figure 20 - Turnstile overhead vs WCDL"),
        "fig21": lambda r: rep.format_series_table(
            r, title="Figure 21 - optimization ablation"),
        "fig22": lambda r: rep.format_series_table(
            [r["turnstile"][s] for s in sorted(r["turnstile"])]
            + [r["turnpike"][s] for s in sorted(r["turnpike"])],
            title="Figure 22 - SB sensitivity"),
        "fig23": lambda r: rep.format_breakdown_table(r),
        "fig24": lambda r: rep.format_mapping_table(
            r, headers=("average", "maximum"),
            title="Figure 24 - CLQ occupancy"),
        "fig25": lambda r: rep.format_series_table(
            [r[s] for s in sorted(r)], value_format="{:.3f}",
            title="Figure 25 - CLQ size sensitivity"),
        "fig26": lambda r: rep.format_mapping_table(
            {k: (v[0], 100 * v[1]) for k, v in r.items()},
            headers=("region size", "growth %"),
            title="Figure 26 - region size / code growth"),
        "table1": rep.format_table1,
    }
    for name, result in results.items():
        print(renderers[name](result))
        print()
    print(
        f"swept {len(results)} figure(s) in {elapsed:.1f}s "
        f"with {workers} worker(s)"
    )
    return 0


def _cmd_ecc(args) -> int:
    from repro.ecc.explorer import (
        default_codes,
        default_structures,
        explore,
        format_points,
        pareto_frontier,
        points_to_json,
    )
    from repro.ecc.faultmodel import parse_patterns

    codes = (
        tuple(c.strip() for c in args.codes.split(",") if c.strip())
        if args.codes
        else default_codes()
    )
    structures = (
        tuple(s.strip() for s in args.structure.split(",") if s.strip())
        if args.structure
        else default_structures()
    )
    try:
        patterns = parse_patterns(args.patterns)
        interleave = (False, True) if args.interleave else (False,)
        points = explore(
            codes,
            structures,
            patterns,
            seed=args.seed,
            trials=args.trials,
            interleave_options=interleave,
        )
    except ValueError as exc:
        print(f"ecc: {exc}", file=sys.stderr)
        return 2
    frontier = pareto_frontier(points) if args.pareto else None
    if args.format == "json":
        print(points_to_json(points, frontier))
    else:
        print(format_points(points, frontier))
    return 0


def _cache_verify(cache) -> int:
    """Recompile one cached codegen module and compare its digests.

    Picks the first codegen artifact in deterministic (kind, key) order,
    rebuilds the exact same program from the header's (uid, config), runs
    the warmup/formation pipeline from scratch, and compares the stored
    ``program-digest`` and canonical ``source-digest`` against the fresh
    render. Exit 0 when they match (or nothing to verify), 1 otherwise.
    """
    import json as _json

    from repro.compiler.config import CompilerConfig
    from repro.compiler.pipeline import compile_baseline, compile_program
    from repro.runtime.codegen import CodegenProgram, parse_header
    from repro.workloads.suites import load_workload

    entries = [entry for entry in cache.entries() if entry[0] == "codegen"]
    if not entries:
        print("cache verify: no codegen artifacts to verify")
        return 0
    key = entries[0][1]
    source = cache.load_codegen(key)
    parsed = parse_header(source) if source is not None else None
    if parsed is None:
        print(f"cache verify: codegen-{key}: corrupt header or body",
              file=sys.stderr)
        return 1
    fields = parsed[0]
    uid = fields.get("uid", "")
    config_json = fields.get("config", "")
    if not uid or not config_json:
        print(f"cache verify: codegen-{key}: anonymous module (no uid/config "
              "header), cannot rebuild", file=sys.stderr)
        return 1
    try:
        config = CompilerConfig(**_json.loads(config_json))
        workload = load_workload(uid)
    except (KeyError, TypeError, ValueError) as exc:
        print(f"cache verify: codegen-{key}: cannot reconstruct inputs: {exc}",
              file=sys.stderr)
        return 1
    if config.name == "baseline":
        compiled = compile_baseline(workload.program)
    else:
        compiled = compile_program(workload.program, config)
    fresh = CodegenProgram(compiled.program, cache=None)
    fresh.execute(workload.fresh_memory())  # warmup run compiles the module
    fresh_parsed = None if fresh.source is None else parse_header(fresh.source)
    if fresh_parsed is None:
        print(f"cache verify: codegen-{key}: rebuild produced no module "
              f"(superblock formation disabled?)", file=sys.stderr)
        return 1
    fresh_fields = fresh_parsed[0]
    print(f"verifying codegen-{key} ({uid}, scheme "
          f"{fields.get('scheme') or '?'})")
    ok = True
    for name in ("program-digest", "source-digest"):
        stored, rebuilt = fields.get(name, ""), fresh_fields.get(name, "")
        match = stored == rebuilt
        ok = ok and match
        print(f"  {name}: stored {stored or '?'}  "
              f"rebuilt {rebuilt or '?'}  {'ok' if match else 'MISMATCH'}")
    return 0 if ok else 1


def _cmd_cache(args) -> int:
    import json as _json

    from repro.harness.artifacts import ArtifactCache

    cache = ArtifactCache.default()
    if cache is None:
        print("persistent cache disabled (REPRO_CACHE_DIR=0)", file=sys.stderr)
        return 2
    if args.action == "info":
        from repro.runtime.codegen import parse_header

        def _source_digest(key: str) -> str | None:
            source = cache.load_codegen(key)
            parsed = parse_header(source) if source is not None else None
            return None if parsed is None else parsed[0].get("source-digest")

        info = cache.info()
        if args.json:
            if args.list:
                entries = []
                for kind, key, size in cache.entries():
                    entry: dict[str, object] = {
                        "kind": kind, "key": key, "bytes": size,
                    }
                    if kind == "codegen":
                        entry["source_digest"] = _source_digest(key)
                    entries.append(entry)
                info["entries"] = entries
            print(_json.dumps(info, indent=2, sort_keys=True))
            return 0
        from repro.harness.artifacts import human_size

        by_kind = info["bytes_by_kind"]
        print(f"location:  {info['root']}")
        print(
            f"artifacts: {info['artifacts']} "
            f"({info['traces']} traces, {info['stats']} stats, "
            f"{info['goldens']} goldens, {info['codegens']} codegens)"
        )
        for kind, size in by_kind.items():
            print(f"  {kind + ':':<9} {human_size(size)}")
        print(f"code hash: {info['code_digest']}")
        print(
            f"footprint: {human_size(info['bytes'])} total in "
            f"{info['artifacts']} artifact(s) at {info['root']}"
        )
        if args.list:
            for kind, key, size in cache.entries():
                line = f"{kind:<8} {key}  {human_size(size)}"
                if kind == "codegen":
                    digest = _source_digest(key)
                    line += f"  source={digest or 'CORRUPT'}"
                print(line)
    elif args.action == "verify":
        return _cache_verify(cache)
    elif args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached artifact(s) from {cache.root}")
    elif args.action == "prune":
        removed = cache.sync_generation()
        print(
            f"pruned {removed} dead-generation artifact(s) from "
            f"{cache.root} (generation {cache.info()['code_digest']})"
        )
    elif args.action == "warm":
        from repro.harness.runner import resolve_workers, warm_suite

        workers = resolve_workers(args.workers)
        print(
            f"warming benchmark x scheme matrix with {workers} worker(s)...",
            file=sys.stderr,
        )
        results = warm_suite(workers=workers)
        info = cache.info()
        print(
            f"warmed {len(results)} (benchmark, scheme) pairs; cache now "
            f"holds {info['artifacts']} artifacts "
            f"({info['bytes'] / 1024:.1f} KiB)"
        )
    return 0


def _cmd_sensors(args) -> int:
    from repro.sensors import (
        area_overhead_percent,
        detection_latency_cycles,
        sensors_for_wcdl,
    )

    print(f"{'WCDL (cycles)':>14}{'sensors':>9}{'area overhead':>15}")
    for wcdl in (10, 15, 20, 30, 40, 50):
        n = sensors_for_wcdl(float(wcdl), clock_ghz=args.clock)
        print(f"{wcdl:>14}{n:>9}{area_overhead_percent(n):>14.2f}%")
    print(
        f"\n(300 sensors -> {detection_latency_cycles(300, args.clock):.1f} "
        f"cycles at {args.clock} GHz)"
    )
    return 0


def _cmd_serve(args) -> int:
    from repro.service.server import serve

    return serve(args)


def _cmd_submit(args) -> int:
    from repro.service.client import cmd_submit

    return cmd_submit(args)


def _cmd_jobs(args) -> int:
    from repro.service.client import cmd_jobs

    return cmd_jobs(args)


def _cmd_result(args) -> int:
    from repro.service.client import cmd_result

    return cmd_result(args)


def _cmd_nodes(args) -> int:
    from repro.service.client import cmd_nodes

    return cmd_nodes(args)


def _add_client_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--endpoint",
        default=None,
        help="service endpoint host:port (default: REPRO_SERVICE env or "
        "the endpoint file in the journal directory)",
    )
    parser.add_argument(
        "--journal",
        default=None,
        help="service journal directory used for endpoint discovery "
        "(default: REPRO_SERVICE_DIR or ~/.cache/repro-turnpike/service)",
    )
    parser.add_argument(
        "--client",
        default=None,
        help="client name for fairness/accounting (default: host:pid)",
    )
    parser.add_argument(
        "--no-handshake",
        action="store_true",
        help="skip the version/digest compatibility handshake warning",
    )


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro", description="Turnpike reproduction toolkit"
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks")

    run_p = sub.add_parser("run", help="compile + simulate one benchmark")
    run_p.add_argument("uid")
    run_p.add_argument("--wcdl", type=int, default=10)
    run_p.add_argument("--sb", type=int, default=4)
    run_p.add_argument(
        "--scheme",
        choices=("turnpike", "turnstile", "baseline"),
        default="turnpike",
    )
    run_p.add_argument(
        "--backend",
        choices=("fast", "codegen", "reference"),
        default="fast",
        help="functional simulation backend (fast: compiled basic-block "
        "replay; codegen: cached superblock modules with guard-and-bail "
        "dispatch; reference: the golden interpreter)",
    )

    inj_p = sub.add_parser("inject", help="fault-injection campaign")
    inj_p.add_argument("uid", nargs="?", default="SPLASH3.radix")
    inj_p.add_argument("--count", type=int, default=30)
    inj_p.add_argument("--wcdl", type=int, default=10)
    inj_p.add_argument("--seed", type=int, default=2024)
    inj_p.add_argument(
        "--targets",
        default="register,store_buffer,clq,coloring",
        help="comma-separated structures to strike (register, store_buffer,"
        " clq, coloring, checkpoint, pc, memory)",
    )
    inj_p.add_argument(
        "--variants",
        default="turnstile,warfree,turnpike,unsafe",
        help="comma-separated protocol variants to diff",
    )
    inj_p.add_argument(
        "--workers", type=int, default=1, help="worker processes for shards"
    )
    inj_p.add_argument(
        "--shard-size", type=int, default=8, help="injections per shard"
    )
    inj_p.add_argument(
        "--manifest",
        default=None,
        help="JSON manifest checkpointed after every shard (enables resume)",
    )
    inj_p.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted campaign from --manifest",
    )
    inj_p.add_argument(
        "--export", default=None, help="write the aggregate JSON to this path"
    )
    inj_p.add_argument(
        "--accel",
        choices=("on", "off"),
        default="on",
        help="snapshot acceleration: golden-run memoization, injection "
        "fast-forward, and convergence early-exit (observationally "
        "invisible; aggregate JSON is byte-identical either way)",
    )
    inj_p.add_argument(
        "--snapshot-interval",
        type=int,
        default=None,
        help="ticks between golden-run snapshots (<= 0: fingerprints only, "
        "no fast-forward)",
    )
    inj_p.add_argument(
        "--shards",
        default=None,
        metavar="LO:HI",
        help="run only shard ids [LO, HI) — a campaign lease; results "
        "checkpoint into --manifest for later merge/resume",
    )
    inj_p.add_argument(
        "--sample",
        action="store_true",
        help="stratified importance sampling over the vulnerability map: "
        "masked strata audited at a token rate (any failure aborts "
        "loudly), vulnerable strata sampled adaptively until the "
        "Wilson interval is tighter than --ci-width; reports AVF "
        "with a confidence interval instead of per-index records",
    )
    inj_p.add_argument(
        "--ci-width",
        type=float,
        default=0.05,
        help="--sample: target half-width of each stratum's weighted "
        "confidence interval",
    )
    inj_p.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        help="--sample: confidence level for the Wilson intervals",
    )
    inj_p.add_argument(
        "--token-rate",
        type=int,
        default=8,
        help="--sample: injections per masked stratum spent cross-checking "
        "the static masked claim",
    )
    inj_p.add_argument(
        "--ecc",
        default=None,
        metavar="CODE",
        help="decode struck words through a real ECC (parity, sec, secded, "
        "secdaec, bch) instead of the abstract parity fail-safe; "
        "miscorrections substitute the wrong value and surface as the "
        "'miscorrected' outcome",
    )
    inj_p.add_argument(
        "--upset",
        default=None,
        metavar="PATTERN",
        help="multi-bit upset shape per strike (single, adjacent-double, "
        "burst<k>, random<k>, column<k>; default: the historical "
        "single/double draw)",
    )

    vuln_p = sub.add_parser(
        "vuln", help="bit-level vulnerability analysis"
    )
    vuln_p.add_argument("uid", nargs="?", default=None)
    vuln_p.add_argument(
        "--scheme", choices=("turnpike", "turnstile"), default="turnpike"
    )
    vuln_p.add_argument("--wcdl", type=int, default=10)
    vuln_p.add_argument(
        "--variants",
        default="turnstile,warfree,turnpike",
        help="comma-separated protocol variants to classify under",
    )
    vuln_p.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    vuln_p.add_argument(
        "--no-cache",
        action="store_true",
        help="rebuild the map even when a cached artifact exists",
    )
    vuln_p.add_argument(
        "--validate",
        action="store_true",
        help="cross-check the sampled estimator against an exhaustive "
        "audit (default: the quick benchmark trio; exit 1 on any "
        "misclassified masked cell or uncovered interval)",
    )
    vuln_p.add_argument(
        "--seed", type=int, default=1234, help="--validate: RNG seed"
    )
    vuln_p.add_argument(
        "--ci-width",
        type=float,
        default=0.05,
        help="--validate: target weighted interval half-width",
    )

    lint_p = sub.add_parser(
        "lint", help="statically verify compiled benchmarks"
    )
    lint_p.add_argument("uid", nargs="?", default=None)
    lint_p.add_argument(
        "--all", action="store_true", help="lint every benchmark"
    )
    lint_p.add_argument(
        "--scheme", choices=("turnpike", "turnstile"), default="turnpike"
    )
    lint_p.add_argument("--sb", type=int, default=4)
    lint_p.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text"
    )
    lint_p.add_argument(
        "--no-differential",
        action="store_true",
        help="skip the dynamic WAR cross-check (static rules only)",
    )
    lint_p.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures",
    )
    lint_p.add_argument(
        "--max-per-rule",
        type=int,
        default=8,
        help="text output: findings shown per rule/severity (-1: all)",
    )
    lint_p.add_argument(
        "--output", default=None, help="write the report to this path"
    )
    lint_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --all (default: REPRO_WORKERS or 1; "
        "0 means one per CPU)",
    )
    lint_p.add_argument(
        "--upset-model",
        default="single",
        metavar="PATTERN",
        help="fault model R9 checks the declared protection codes "
        "against (single, adjacent-double, burst<k>, random<k>, "
        "column<k>; default single)",
    )

    fig_p = sub.add_parser("figure", help="regenerate a figure/table")
    fig_p.add_argument("id")

    sweep_p = sub.add_parser(
        "sweep",
        help="evaluate figure lattices through the multi-lane sweep engine",
    )
    sweep_p.add_argument(
        "figures",
        nargs="*",
        help="figure ids to sweep (default: the whole suite); shared "
        "design points are evaluated once",
    )
    sweep_p.add_argument(
        "--benchmarks",
        default=None,
        help="comma-separated benchmark uids (default: all 36)",
    )
    sweep_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for lane batches (default: REPRO_WORKERS "
        "or 1; 0 means one per CPU)",
    )
    sweep_p.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of tables",
    )
    sweep_p.add_argument(
        "--ecc-codes",
        default=None,
        metavar="CODES",
        help="fan one fault campaign across a comma-separated code axis "
        "(parity, sec, secded, secdaec, bch; 'off' = abstract fail-safe) "
        "instead of sweeping figures; duplicate codes dedup in order",
    )
    sweep_p.add_argument(
        "--ecc-uid",
        default="SPLASH3.radix",
        help="--ecc-codes: benchmark to strike",
    )
    sweep_p.add_argument(
        "--ecc-count", type=int, default=24,
        help="--ecc-codes: injections per code point",
    )
    sweep_p.add_argument(
        "--ecc-seed", type=int, default=2024,
        help="--ecc-codes: campaign seed (shared across the axis)",
    )
    sweep_p.add_argument(
        "--ecc-wcdl", type=int, default=10,
        help="--ecc-codes: worst-case detection latency",
    )
    sweep_p.add_argument(
        "--ecc-targets",
        default="register,store_buffer,clq,coloring",
        help="--ecc-codes: comma-separated structures to strike",
    )
    sweep_p.add_argument(
        "--ecc-variants",
        default="turnstile,warfree,turnpike,unsafe",
        help="--ecc-codes: comma-separated protocol variants to diff",
    )
    sweep_p.add_argument(
        "--ecc-upset",
        default=None,
        metavar="PATTERN",
        help="--ecc-codes: multi-bit upset shape per strike (default: "
        "the historical single/double draw)",
    )

    ecc_p = sub.add_parser(
        "ecc",
        help="explore the ECC design space (codes x structures x upsets)",
    )
    ecc_p.add_argument(
        "--codes",
        default=None,
        metavar="CODES",
        help="comma-separated codes to evaluate (parity, sec, secded, "
        "secdaec, bch; default: all)",
    )
    ecc_p.add_argument(
        "--structure",
        default=None,
        metavar="NAMES",
        help="comma-separated protected structures (sb, clq, checkpoint; "
        "default: all)",
    )
    ecc_p.add_argument(
        "--patterns",
        default="single,adjacent-double,burst3",
        metavar="PATTERNS",
        help="comma-separated upset shapes (single, adjacent-double, "
        "burst<k>, random<k>, column<k>)",
    )
    ecc_p.add_argument(
        "--pareto",
        action="store_true",
        help="mark the per-structure Pareto frontier (coverage up, "
        "area/energy down)",
    )
    ecc_p.add_argument(
        "--interleave",
        action="store_true",
        help="also evaluate bit-interleaved codeword layouts",
    )
    ecc_p.add_argument(
        "--trials",
        type=int,
        default=2000,
        help="Monte-Carlo trials per (layout, pattern) when the instance "
        "set is too large to enumerate",
    )
    ecc_p.add_argument("--seed", type=int, default=0)
    ecc_p.add_argument(
        "--format", choices=("text", "json"), default="text"
    )

    cache_p = sub.add_parser(
        "cache", help="manage the persistent simulation artifact cache"
    )
    cache_p.add_argument(
        "action", choices=("info", "clear", "warm", "prune", "verify")
    )
    cache_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for warm (default: REPRO_WORKERS or 1; "
        "0 means one per CPU)",
    )
    cache_p.add_argument(
        "--list",
        action="store_true",
        help="info: enumerate every artifact, sorted by (kind, key)",
    )
    cache_p.add_argument(
        "--json",
        action="store_true",
        help="info: emit machine-readable JSON (sorted keys)",
    )

    sen_p = sub.add_parser("sensors", help="sensor sizing table")
    sen_p.add_argument("--clock", type=float, default=2.5)

    serve_p = sub.add_parser(
        "serve", help="run the async batch simulation service"
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port", type=int, default=0, help="TCP port (0: pick a free one)"
    )
    serve_p.add_argument(
        "--workers", type=int, default=2, help="worker processes in the pool"
    )
    serve_p.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        help="bounded queue size; submissions beyond it get HTTP 429",
    )
    serve_p.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retries (with exponential backoff) after a worker death",
    )
    serve_p.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="default per-job timeout in seconds (none by default)",
    )
    serve_p.add_argument(
        "--journal",
        default=None,
        help="journal directory (crash-safe job log, result store, "
        "campaign manifests; default REPRO_SERVICE_DIR or "
        "~/.cache/repro-turnpike/service)",
    )
    serve_p.add_argument(
        "--role",
        choices=("local", "coordinator", "worker"),
        default="local",
        help="local: single-node server (default); coordinator: scatter "
        "campaigns across worker nodes; worker: enroll with a coordinator",
    )
    serve_p.add_argument(
        "--coordinator",
        default=None,
        metavar="HOST:PORT",
        help="worker role: the coordinator's explicit endpoint",
    )
    serve_p.add_argument(
        "--coordinator-journal",
        default=None,
        metavar="DIR",
        help="worker role: discover (and follow) the coordinator via the "
        "endpoint file in this journal directory",
    )
    serve_p.add_argument(
        "--node-id",
        default=None,
        help="worker role: fabric identity (default: node-<pid>)",
    )
    serve_p.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        help="worker role: seconds between heartbeats to the coordinator",
    )
    serve_p.add_argument(
        "--node-timeout",
        type=float,
        default=10.0,
        help="coordinator role: seconds without a heartbeat before a node "
        "is declared dead and its leases re-dispatched",
    )
    serve_p.add_argument(
        "--lease-timeout",
        type=float,
        default=300.0,
        help="coordinator role: hard per-lease deadline on one node",
    )
    serve_p.add_argument(
        "--steal-after",
        type=float,
        default=60.0,
        help="coordinator role: seconds before a straggling lease is "
        "duplicated onto another node (work stealing)",
    )
    serve_p.add_argument(
        "--lease-shards",
        type=int,
        default=1,
        help="coordinator role: campaign shards per lease",
    )

    submit_p = sub.add_parser(
        "submit", help="submit a job to a running service"
    )
    kind_sub = submit_p.add_subparsers(dest="kind", required=True)
    for kind in ("run", "inject", "lint", "vuln", "sweep", "ecc"):
        kp = kind_sub.add_parser(kind, help=f"submit a {kind} job")
        _add_client_flags(kp)
        kp.add_argument(
            "--priority",
            type=int,
            default=10,
            help="scheduling priority (lower runs first; default 10)",
        )
        kp.add_argument(
            "--job-timeout",
            type=float,
            default=None,
            help="per-job timeout in seconds",
        )
        kp.add_argument(
            "--wait",
            action="store_true",
            help="block until done, print the job's stdout, exit with "
            "the job's exit code",
        )
        kp.add_argument("--wait-timeout", type=float, default=None)
        if kind == "run":
            kp.add_argument("uid")
            kp.add_argument("--wcdl", type=int, default=None)
            kp.add_argument("--sb", type=int, default=None)
            kp.add_argument(
                "--scheme",
                choices=("turnpike", "turnstile", "baseline"),
                default=None,
            )
            kp.add_argument(
                "--backend",
                choices=("fast", "codegen", "reference"),
                default=None,
            )
        elif kind == "inject":
            kp.add_argument("uid", nargs="?", default=None)
            kp.add_argument("--count", type=int, default=None)
            kp.add_argument("--wcdl", type=int, default=None)
            kp.add_argument("--seed", type=int, default=None)
            kp.add_argument("--targets", default=None)
            kp.add_argument("--variants", default=None)
            kp.add_argument(
                "--shard-size", dest="shard_size", type=int, default=None
            )
            kp.add_argument("--accel", choices=("on", "off"), default=None)
            kp.add_argument(
                "--snapshot-interval",
                dest="snapshot_interval",
                type=int,
                default=None,
            )
            kp.add_argument("--shards", default=None, metavar="LO:HI")
            kp.add_argument("--ecc", default=None, metavar="CODE")
            kp.add_argument("--upset", default=None, metavar="PATTERN")
        elif kind == "lint":
            kp.add_argument("uid", nargs="?", default=None)
            kp.add_argument("--all", action="store_true")
            kp.add_argument(
                "--scheme", choices=("turnpike", "turnstile"), default=None
            )
            kp.add_argument("--sb", type=int, default=None)
            kp.add_argument(
                "--format", choices=("text", "json", "sarif"), default=None
            )
            kp.add_argument("--no-differential", action="store_true")
            kp.add_argument("--strict", action="store_true")
            kp.add_argument(
                "--upset-model",
                dest="upset_model",
                default=None,
                metavar="PATTERN",
            )
        elif kind == "vuln":
            kp.add_argument("uid")
            kp.add_argument("--wcdl", type=int, default=None)
            kp.add_argument(
                "--scheme", choices=("turnpike", "turnstile"), default=None
            )
            kp.add_argument("--variants", default=None)
            kp.add_argument(
                "--format", choices=("text", "json"), default=None
            )
        elif kind == "sweep":
            kp.add_argument(
                "--figures",
                default=None,
                help="comma-separated figure ids (default: whole suite)",
            )
            kp.add_argument(
                "--benchmarks",
                default=None,
                help="comma-separated benchmark uids (default: all 36)",
            )
            kp.add_argument(
                "--format", choices=("text", "json"), default=None
            )
        else:  # ecc
            kp.add_argument("--codes", default=None, metavar="CODES")
            kp.add_argument(
                "--structure",
                dest="structures",
                default=None,
                metavar="NAMES",
            )
            kp.add_argument("--patterns", default=None, metavar="PATTERNS")
            kp.add_argument("--pareto", action="store_true")
            kp.add_argument("--interleave", action="store_true")
            kp.add_argument("--trials", type=int, default=None)
            kp.add_argument("--seed", type=int, default=None)
            kp.add_argument(
                "--format", choices=("text", "json"), default=None
            )

    jobs_p = sub.add_parser("jobs", help="list jobs on a running service")
    _add_client_flags(jobs_p)
    jobs_p.add_argument("--json", action="store_true")
    jobs_p.add_argument(
        "--mine", action="store_true", help="only this client's jobs"
    )

    nodes_p = sub.add_parser(
        "nodes", help="list a coordinator's registered worker nodes"
    )
    _add_client_flags(nodes_p)
    nodes_p.add_argument("--json", action="store_true")

    result_p = sub.add_parser("result", help="fetch one job's output")
    _add_client_flags(result_p)
    result_p.add_argument("job_id")
    result_p.add_argument("--wait", action="store_true")
    result_p.add_argument("--wait-timeout", type=float, default=None)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "inject": _cmd_inject,
        "vuln": _cmd_vuln,
        "lint": _cmd_lint,
        "figure": _cmd_figure,
        "sweep": _cmd_sweep,
        "ecc": _cmd_ecc,
        "cache": _cmd_cache,
        "sensors": _cmd_sensors,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
        "result": _cmd_result,
        "nodes": _cmd_nodes,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
