"""Command-line interface: ``python -m repro <command> ...``.

Commands:
  list                       — list the 36 benchmarks
  run <uid> [--wcdl N] [--sb N] [--scheme turnpike|turnstile|baseline]
      [--backend fast|reference]
                             — compile + simulate one benchmark
  inject [uid] [--count N] [--wcdl N] [--targets a,b] [--workers N]
         [--manifest PATH] [--resume] [--export PATH]
         [--accel on|off] [--snapshot-interval N]
                             — differential fault-injection campaign
                               across protocol variants (parallel,
                               resumable via the manifest; snapshot
                               acceleration on by default and
                               observationally invisible)
  lint <uid>|--all [--scheme S] [--sb N] [--format text|json|sarif]
       [--no-differential] [--strict] [--output PATH] [--workers N]
                             — static resilience verifier over compiled
                               benchmarks (exit 0 clean, 1 findings,
                               2 usage); --workers shards --all across
                               processes
  figure <id>                — regenerate one figure/table on the full
                               suite (fig4, fig14, fig15, fig18, fig19,
                               fig20, fig21, fig22, fig23, fig24, fig25,
                               fig26, table1)
  cache info|clear|warm [--workers N]
                             — inspect, empty, or pre-populate the
                               persistent simulation artifact cache
  sensors [--clock GHZ]      — sensor-count vs WCDL table
"""

from __future__ import annotations

import argparse
import sys


def _cmd_list(_args) -> int:
    from repro.workloads.suites import all_profiles

    for prof in all_profiles():
        print(f"{prof.uid:24s} {prof.notes}")
    return 0


def _cmd_run(args) -> int:
    from repro import (
        CoreConfig,
        InOrderCore,
        ResilienceHardwareConfig,
        compile_baseline,
        compile_program,
        execute,
        execute_fast,
        load_workload,
        turnpike_config,
        turnstile_config,
    )

    run_functional = execute_fast if args.backend == "fast" else execute
    workload = load_workload(args.uid)
    if args.scheme == "baseline":
        compiled = compile_baseline(workload.program)
        hw = ResilienceHardwareConfig.baseline()
    elif args.scheme == "turnstile":
        compiled = compile_program(
            workload.program, turnstile_config(sb_size=args.sb)
        )
        hw = ResilienceHardwareConfig.turnstile(wcdl=args.wcdl, sb_size=args.sb)
    else:
        compiled = compile_program(
            workload.program, turnpike_config(sb_size=args.sb)
        )
        hw = ResilienceHardwareConfig.turnpike(wcdl=args.wcdl, sb_size=args.sb)

    result = run_functional(
        compiled.program, workload.fresh_memory(), collect_trace=True
    )
    stats = InOrderCore(CoreConfig(), hw).run(result.trace)

    base = compile_baseline(workload.program)
    base_run = run_functional(
        base.program, workload.fresh_memory(), collect_trace=True
    )
    base_stats = InOrderCore(
        CoreConfig(), ResilienceHardwareConfig.baseline()
    ).run(base_run.trace)

    print(f"benchmark:        {args.uid}")
    print(f"scheme:           {args.scheme} (WCDL={args.wcdl}, SB={args.sb})")
    print(f"instructions:     {stats.instructions}")
    print(f"cycles:           {stats.cycles:.0f}")
    print(f"normalized time:  {stats.cycles / base_stats.cycles:.3f}")
    print(f"IPC:              {stats.ipc:.2f}")
    print(f"regions:          {stats.regions} (avg {stats.dynamic_region_size:.1f} instr)")
    print(
        f"stores:           {stats.warfree_released} WAR-free released, "
        f"{stats.colored_released} colored, {stats.quarantined} quarantined"
    )
    print(
        f"stalls:           SB {stats.sb_stall_cycles:.0f}, "
        f"data {stats.data_stall_cycles:.0f}, "
        f"branch {stats.branch_stall_cycles:.0f} cycles"
    )
    return 0


def _cmd_inject(args) -> int:
    from repro.faults.campaign import (
        AccelOptions,
        CampaignRunner,
        CampaignSpec,
        format_differential_report,
    )

    targets = tuple(t.strip() for t in args.targets.split(",") if t.strip())
    variants = tuple(v.strip() for v in args.variants.split(",") if v.strip())
    try:
        spec = CampaignSpec(
            uid=args.uid,
            wcdl=args.wcdl,
            count=args.count,
            seed=args.seed,
            targets=targets,
            variants=variants,
            shard_size=args.shard_size,
        )
    except ValueError as exc:
        print(f"invalid campaign: {exc}", file=sys.stderr)
        return 2
    if args.resume and args.manifest is None:
        print("--resume requires --manifest", file=sys.stderr)
        return 2

    if args.snapshot_interval is None:
        accel = AccelOptions(enabled=args.accel == "on")
    else:
        accel = AccelOptions(
            enabled=args.accel == "on",
            snapshot_interval=args.snapshot_interval,
        )
    runner = CampaignRunner(spec, manifest_path=args.manifest, accel=accel)
    try:
        report = runner.run(
            workers=args.workers,
            resume=args.resume,
            progress=lambda done, total: print(
                f"  shard {done}/{total} done", file=sys.stderr
            ),
        )
    except ValueError as exc:  # e.g. manifest/spec mismatch on --resume
        print(f"cannot run campaign: {exc}", file=sys.stderr)
        return 2
    print(format_differential_report(report))
    if args.export:
        from repro.harness.export import campaign_to_json

        with open(args.export, "w") as fh:
            fh.write(campaign_to_json(report))
        print(f"aggregate written to {args.export}", file=sys.stderr)
    return 0


def _cmd_lint(args) -> int:
    from repro.verify.lint import run_lint

    return run_lint(args)


def _cmd_figure(args) -> int:
    from repro.harness import experiments as exp
    from repro.harness import reporting as rep

    fid = args.id.lower()
    if fid in ("fig4", "fig04"):
        result = exp.fig04_checkpoint_ratio()
        print(rep.format_series_table(
            [result[40], result[4]], value_format="{:.3f}", aggregate="mean",
            title="Figure 4 - checkpoint ratio vs SB size"))
    elif fid in ("fig14", "fig15"):
        result = exp.fig14_fig15_clq_designs()
        key = "overhead" if fid == "fig14" else "warfree_ratio"
        print(rep.format_series_table(
            [result[key]["ideal"], result[key]["compact"]],
            value_format="{:.3f}",
            title=f"Figure {fid[3:]} - ideal vs compact CLQ"))
    elif fid == "fig18":
        for clock, points in exp.fig18_sensor_latency().items():
            print(f"{clock} GHz: " + "  ".join(f"{n}->{lat:.1f}cy" for n, lat in points))
    elif fid == "fig19":
        result = exp.fig19_turnpike_wcdl()
        print(rep.format_series_table(
            [result[w] for w in sorted(result)],
            title="Figure 19 - Turnpike overhead vs WCDL"))
    elif fid == "fig20":
        result = exp.fig20_turnstile_wcdl()
        print(rep.format_series_table(
            [result[w] for w in sorted(result)],
            title="Figure 20 - Turnstile overhead vs WCDL"))
    elif fid == "fig21":
        print(rep.format_series_table(
            exp.fig21_ablation(), title="Figure 21 - optimization ablation"))
    elif fid == "fig22":
        result = exp.fig22_sb_sensitivity()
        series = [result["turnstile"][s] for s in sorted(result["turnstile"])]
        series += [result["turnpike"][s] for s in sorted(result["turnpike"])]
        print(rep.format_series_table(series, title="Figure 22 - SB sensitivity"))
    elif fid == "fig23":
        breakdown = exp.fig23_store_breakdown()
        print(rep.format_breakdown_table(breakdown))
        means = exp.breakdown_means(breakdown)
        print("means:", "  ".join(f"{k}={100 * v:.1f}%" for k, v in means.items()))
    elif fid == "fig24":
        print(rep.format_mapping_table(
            exp.fig24_clq_occupancy(), headers=("average", "maximum"),
            title="Figure 24 - CLQ occupancy"))
    elif fid == "fig25":
        result = exp.fig25_clq_size()
        print(rep.format_series_table(
            [result[2], result[4]], value_format="{:.3f}",
            title="Figure 25 - CLQ-2 vs CLQ-4"))
    elif fid == "fig26":
        data = exp.fig26_region_codesize()
        print(rep.format_mapping_table(
            {k: (v[0], 100 * v[1]) for k, v in data.items()},
            headers=("region size", "growth %"),
            title="Figure 26 - region size / code growth"))
    elif fid == "table1":
        print(rep.format_table1(exp.table1_hw_cost()))
    else:
        print(f"unknown figure id {args.id!r}", file=sys.stderr)
        return 2
    return 0


def _cmd_cache(args) -> int:
    from repro.harness.artifacts import ArtifactCache

    cache = ArtifactCache.default()
    if cache is None:
        print("persistent cache disabled (REPRO_CACHE_DIR=0)", file=sys.stderr)
        return 2
    if args.action == "info":
        info = cache.info()
        print(f"location:  {info['root']}")
        print(
            f"artifacts: {info['artifacts']} "
            f"({info['traces']} traces, {info['stats']} stats, "
            f"{info['goldens']} goldens)"
        )
        print(f"size:      {info['bytes'] / 1024:.1f} KiB")
        print(f"code hash: {info['code_digest']}")
    elif args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached artifact(s) from {cache.root}")
    elif args.action == "warm":
        from repro.harness.runner import resolve_workers, warm_suite

        workers = resolve_workers(args.workers)
        print(
            f"warming benchmark x scheme matrix with {workers} worker(s)...",
            file=sys.stderr,
        )
        results = warm_suite(workers=workers)
        info = cache.info()
        print(
            f"warmed {len(results)} (benchmark, scheme) pairs; cache now "
            f"holds {info['artifacts']} artifacts "
            f"({info['bytes'] / 1024:.1f} KiB)"
        )
    return 0


def _cmd_sensors(args) -> int:
    from repro.sensors import (
        area_overhead_percent,
        detection_latency_cycles,
        sensors_for_wcdl,
    )

    print(f"{'WCDL (cycles)':>14}{'sensors':>9}{'area overhead':>15}")
    for wcdl in (10, 15, 20, 30, 40, 50):
        n = sensors_for_wcdl(float(wcdl), clock_ghz=args.clock)
        print(f"{wcdl:>14}{n:>9}{area_overhead_percent(n):>14.2f}%")
    print(
        f"\n(300 sensors -> {detection_latency_cycles(300, args.clock):.1f} "
        f"cycles at {args.clock} GHz)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Turnpike reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks")

    run_p = sub.add_parser("run", help="compile + simulate one benchmark")
    run_p.add_argument("uid")
    run_p.add_argument("--wcdl", type=int, default=10)
    run_p.add_argument("--sb", type=int, default=4)
    run_p.add_argument(
        "--scheme",
        choices=("turnpike", "turnstile", "baseline"),
        default="turnpike",
    )
    run_p.add_argument(
        "--backend",
        choices=("fast", "reference"),
        default="fast",
        help="functional simulation backend (fast: compiled basic-block "
        "replay; reference: the golden interpreter)",
    )

    inj_p = sub.add_parser("inject", help="fault-injection campaign")
    inj_p.add_argument("uid", nargs="?", default="SPLASH3.radix")
    inj_p.add_argument("--count", type=int, default=30)
    inj_p.add_argument("--wcdl", type=int, default=10)
    inj_p.add_argument("--seed", type=int, default=2024)
    inj_p.add_argument(
        "--targets",
        default="register,store_buffer,clq,coloring",
        help="comma-separated structures to strike (register, store_buffer,"
        " clq, coloring, checkpoint, pc, memory)",
    )
    inj_p.add_argument(
        "--variants",
        default="turnstile,warfree,turnpike,unsafe",
        help="comma-separated protocol variants to diff",
    )
    inj_p.add_argument(
        "--workers", type=int, default=1, help="worker processes for shards"
    )
    inj_p.add_argument(
        "--shard-size", type=int, default=8, help="injections per shard"
    )
    inj_p.add_argument(
        "--manifest",
        default=None,
        help="JSON manifest checkpointed after every shard (enables resume)",
    )
    inj_p.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted campaign from --manifest",
    )
    inj_p.add_argument(
        "--export", default=None, help="write the aggregate JSON to this path"
    )
    inj_p.add_argument(
        "--accel",
        choices=("on", "off"),
        default="on",
        help="snapshot acceleration: golden-run memoization, injection "
        "fast-forward, and convergence early-exit (observationally "
        "invisible; aggregate JSON is byte-identical either way)",
    )
    inj_p.add_argument(
        "--snapshot-interval",
        type=int,
        default=None,
        help="ticks between golden-run snapshots (<= 0: fingerprints only, "
        "no fast-forward)",
    )

    lint_p = sub.add_parser(
        "lint", help="statically verify compiled benchmarks"
    )
    lint_p.add_argument("uid", nargs="?", default=None)
    lint_p.add_argument(
        "--all", action="store_true", help="lint every benchmark"
    )
    lint_p.add_argument(
        "--scheme", choices=("turnpike", "turnstile"), default="turnpike"
    )
    lint_p.add_argument("--sb", type=int, default=4)
    lint_p.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text"
    )
    lint_p.add_argument(
        "--no-differential",
        action="store_true",
        help="skip the dynamic WAR cross-check (static rules only)",
    )
    lint_p.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures",
    )
    lint_p.add_argument(
        "--max-per-rule",
        type=int,
        default=8,
        help="text output: findings shown per rule/severity (-1: all)",
    )
    lint_p.add_argument(
        "--output", default=None, help="write the report to this path"
    )
    lint_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --all (default: REPRO_WORKERS or 1; "
        "0 means one per CPU)",
    )

    fig_p = sub.add_parser("figure", help="regenerate a figure/table")
    fig_p.add_argument("id")

    cache_p = sub.add_parser(
        "cache", help="manage the persistent simulation artifact cache"
    )
    cache_p.add_argument("action", choices=("info", "clear", "warm"))
    cache_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for warm (default: REPRO_WORKERS or 1; "
        "0 means one per CPU)",
    )

    sen_p = sub.add_parser("sensors", help="sensor sizing table")
    sen_p.add_argument("--clock", type=float, default=2.5)

    args = parser.parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "inject": _cmd_inject,
        "lint": _cmd_lint,
        "figure": _cmd_figure,
        "cache": _cmd_cache,
        "sensors": _cmd_sensors,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
