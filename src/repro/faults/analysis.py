"""Recovery-cost analysis: what does an error actually cost?

The paper establishes that recovery is *correct*; this module measures
what it *costs* — re-executed instructions per recovery and the
dependence on WCDL (longer detection latency => more unverified regions
=> restarts reach further back). This extends the paper's evaluation
with the data an embedded-systems adopter would ask for next: given a
soft-error rate, how many cycles per second go to re-execution?
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.pipeline import CompiledProgram
from repro.faults.injector import (
    CONTAINED_KINDS,
    CampaignResult,
    random_register_injections,
)
from repro.runtime.interpreter import execute
from repro.runtime.machine import ResilienceConfig, ResilientMachine
from repro.runtime.memory import Memory


@dataclass
class RecoveryCost:
    """Cost measurements for one injected run."""

    recovered: bool
    correct: bool
    reexecuted_instructions: int  # committed beyond the fault-free count
    detection_was_parity: bool


@dataclass
class RecoveryCostReport:
    """Aggregate recovery-cost statistics for one (program, WCDL)."""

    wcdl: int
    runs: list[RecoveryCost] = field(default_factory=list)

    @property
    def recovery_runs(self) -> list[RecoveryCost]:
        return [r for r in self.runs if r.recovered]

    @property
    def mean_reexecution(self) -> float:
        recs = self.recovery_runs
        if not recs:
            return 0.0
        return sum(r.reexecuted_instructions for r in recs) / len(recs)

    @property
    def max_reexecution(self) -> int:
        recs = self.recovery_runs
        return max((r.reexecuted_instructions for r in recs), default=0)

    @property
    def all_correct(self) -> bool:
        return all(r.correct for r in self.runs)


def measure_recovery_cost(
    compiled: CompiledProgram,
    memory: Memory,
    wcdl: int,
    count: int = 20,
    seed: int = 77,
) -> RecoveryCostReport:
    """Inject ``count`` register flips and measure re-execution cost.

    Cost = committed instructions in the injected run minus the
    fault-free committed count: exactly the work redone because of the
    error (restart of the earliest unverified region plus everything the
    discarded execution had completed after that point).
    """
    golden_run = execute(compiled.program, memory.copy(), collect_trace=True)
    assert golden_run.trace is not None
    golden_summary = golden_run.summary()
    golden_committed = golden_summary.committed
    golden_image = golden_run.memory.data_image()

    config = ResilienceConfig(wcdl=wcdl)
    injections = random_register_injections(
        compiled,
        wcdl=wcdl,
        count=count,
        seed=seed,
        horizon=max(2, golden_committed - 1),
    )
    report = RecoveryCostReport(wcdl=wcdl)
    for injection in injections:
        machine = ResilientMachine(compiled, config, memory.copy())
        machine.arm_injection(injection)
        stats = machine.run()
        report.runs.append(
            RecoveryCost(
                recovered=stats.recoveries > 0,
                correct=machine.mem.data_image() == golden_image,
                reexecuted_instructions=max(
                    0, stats.committed - golden_committed
                ),
                detection_was_parity=stats.parity_detections > 0,
            )
        )
    return report


def vulnerability_report(result: CampaignResult) -> dict[str, dict[str, object]]:
    """Per-structure vulnerability summary of a mixed-target campaign.

    For each injected structure: the outcome-kind histogram plus the two
    numbers an adopter actually asks for — the containment rate (MASKED +
    RECOVERED + DETECTED_HALT over runs) and the SDC rate.
    """
    report: dict[str, dict[str, object]] = {}
    for target, hist in sorted(result.by_target().items()):
        runs = sum(hist.values())
        contained = sum(hist[kind.value] for kind in CONTAINED_KINDS)
        report[target] = {
            "runs": runs,
            "kinds": hist,
            "containment_rate": contained / runs if runs else 1.0,
            "sdc_rate": hist["sdc"] / runs if runs else 0.0,
        }
    return report


def recovery_cost_vs_wcdl(
    compiled: CompiledProgram,
    memory: Memory,
    wcdls: tuple[int, ...] = (10, 30, 50),
    count: int = 20,
    seed: int = 77,
) -> dict[int, RecoveryCostReport]:
    """Sweep WCDL: longer detection latency means deeper rollback."""
    return {
        wcdl: measure_recovery_cost(compiled, memory, wcdl, count, seed)
        for wcdl in wcdls
    }
