"""Stratified importance-sampled AVF estimation over vulnerability maps.

Exhaustive fault-injection campaigns spend almost all of their runs on
cells the static analysis (:mod:`repro.verify.vuln`) already proves
masked. This module turns the :class:`~repro.verify.vuln.VulnerabilityMap`
into sampling *strata* — masked / vulnerable / unknown cell populations
per injection target — and estimates the architectural vulnerability
factor (AVF: the probability a uniformly random bit-cycle strike corrupts
the architectural outcome) as the population-weighted sum of per-stratum
failure rates:

    AVF = sum_s w_s * p_s,    w_s = |stratum_s| / |population|

* **masked** strata are charged a fixed *token rate* of cross-check
  injections: the analysis claims p = 0, every token must come back
  correct, and a single corrupting hit raises
  :class:`MaskedMisclassification` — the campaign fails loudly rather
  than silently under-reporting.
* **vulnerable** and **unknown** strata are sampled adaptively in
  batches until the stratum's Wilson score interval, scaled by its
  population weight, is tighter than the requested ``ci_width`` (or the
  stratum budget is exhausted).

The total interval half-width is ``sum_s w_s * hw_s`` — conservative
(no independence assumption between strata). Every draw is derived from
``(seed, variant, target, stratum, draw-index)`` alone, so sampled
campaigns are exactly reproducible.

``validate_benchmark`` is the differential validator behind
``repro vuln --validate``: on a restricted register-cell population it
runs the exhaustive ground truth, checks that not one masked-classified
cell corrupts the output, and checks the sampled interval covers the
exhaustive AVF at a fraction of the injections.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.verify.vuln import (
    MASKED,
    SOUND_VARIANTS,
    STRUCTURE_TARGETS,
    UNKNOWN,
    VULNERABLE,
    VulnerabilityMap,
)

_FULL = 0xFFFF_FFFF

#: (target, reg-or-None, bit, time, detection-delay) -> outcome correct?
RunCell = Callable[[str, int | None, int, int, int], bool]


class MaskedMisclassification(RuntimeError):
    """A statically masked cell corrupted the output under injection."""


# -- confidence arithmetic ---------------------------------------------------

_Z_TABLE = {
    0.90: 1.6448536269514722,
    0.95: 1.959963984540054,
    0.99: 2.5758293035489004,
}


def _inverse_normal_cdf(p: float) -> float:
    """Acklam's rational approximation of the standard normal quantile."""
    if not 0.0 < p < 1.0:
        raise ValueError("quantile argument must be in (0, 1)")
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > 1 - p_low:
        q = math.sqrt(-2.0 * math.log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                 + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
            + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                            + b[4]) * r + 1)


def z_score(confidence: float) -> float:
    """Two-sided z critical value for a confidence level in (0, 1)."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    z = _Z_TABLE.get(confidence)
    if z is not None:
        return z
    return _inverse_normal_cdf(0.5 + confidence / 2.0)


def wilson(failures: int, n: int, z: float) -> tuple[float, float]:
    """Wilson score interval as ``(center, half_width)``.

    With n = 0 there is no information: the interval is all of [0, 1].
    """
    if n == 0:
        return 0.5, 0.5
    p = failures / n
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p + z2 / (2.0 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))
    return center, half


# -- options -----------------------------------------------------------------


@dataclass(frozen=True)
class SamplingOptions:
    """Knobs of an importance-sampled campaign.

    ``ci_width`` bounds each stratum's *weighted* Wilson half-width
    (its contribution to the overall interval); ``token_rate`` is the
    number of cross-check injections charged to every masked stratum;
    ``batch`` is the adaptive sampling step; ``max_per_stratum`` caps a
    stratum's draw count (never above the stratum population).
    """

    enabled: bool = False
    ci_width: float = 0.05
    confidence: float = 0.95
    token_rate: int = 8
    batch: int = 16
    max_per_stratum: int = 512

    def __post_init__(self) -> None:
        if self.ci_width <= 0.0:
            raise ValueError("ci_width must be positive")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if self.token_rate < 1 or self.batch < 1 or self.max_per_stratum < 1:
            raise ValueError("sampling budgets must be >= 1")

    def to_dict(self) -> dict[str, object]:
        return {
            "enabled": self.enabled,
            "ci_width": self.ci_width,
            "confidence": self.confidence,
            "token_rate": self.token_rate,
            "batch": self.batch,
            "max_per_stratum": self.max_per_stratum,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> SamplingOptions:
        return cls(
            enabled=bool(data["enabled"]),
            ci_width=float(data["ci_width"]),  # type: ignore[arg-type]
            confidence=float(data["confidence"]),  # type: ignore[arg-type]
            token_rate=int(data["token_rate"]),  # type: ignore[call-overload]
            batch=int(data["batch"]),  # type: ignore[call-overload]
            max_per_stratum=int(data["max_per_stratum"]),  # type: ignore[call-overload]
        )


# -- strata ------------------------------------------------------------------


@dataclass
class Stratum:
    """One same-class cell population of one injection target.

    Cells are stored as run-length segments ``(count, reg, t_start,
    mask)``: ``count`` cells covering consecutive ticks from ``t_start``
    with ``popcount(mask)`` bits per tick (``reg`` is -1 for structure
    targets, whose "bits" index the struck entry). The flat cell index
    space ``[0, size)`` is what draws sample from.
    """

    target: str
    label: str
    segments: list[tuple[int, int, int, int]] = field(default_factory=list)
    _prefix: list[int] = field(default_factory=list, repr=False)

    def add(self, count: int, reg: int, t_start: int, mask: int) -> None:
        if count > 0:
            self.segments.append((count, reg, t_start, mask))
            self._prefix = []

    @property
    def size(self) -> int:
        return sum(seg[0] for seg in self.segments)

    def cell(self, index: int) -> tuple[int | None, int, int]:
        """Flat index -> ``(reg_or_None, bit, time)``."""
        if not self._prefix:
            total = 0
            for seg in self.segments:
                total += seg[0]
                self._prefix.append(total)
        pos = bisect_right(self._prefix, index)
        if pos >= len(self.segments):
            raise IndexError(index)
        count, reg, t_start, mask = self.segments[pos]
        offset = index - (self._prefix[pos] - count)
        per_tick = mask.bit_count()
        time = t_start + offset // per_tick
        rank = offset % per_tick
        bit = _nth_set_bit(mask, rank)
        return (reg if reg >= 0 else None), bit, time


def _nth_set_bit(mask: int, rank: int) -> int:
    for bit in range(32):
        if (mask >> bit) & 1:
            if rank == 0:
                return bit
            rank -= 1
    raise ValueError(f"mask {mask:#x} has no set bit of rank {rank}")


def build_strata(
    vmap: VulnerabilityMap, variant: str, target: str
) -> dict[str, Stratum]:
    """Partition one target's campaign cell population by static class.

    The population matches what enumerated campaigns draw from: times in
    ``[1, horizon - 1]``, 32 bits per tick, every non-reserved register
    for the register target. Unsound variants (and unmodelled targets)
    place everything in the ``unknown`` stratum.
    """
    strata = {
        MASKED: Stratum(target, MASKED),
        VULNERABLE: Stratum(target, VULNERABLE),
        UNKNOWN: Stratum(target, UNKNOWN),
    }
    lo, hi = 1, vmap.horizon - 1
    if hi < lo:
        return strata
    sound = variant in SOUND_VARIANTS and variant in vmap.variants
    if target == "register":
        regs = [
            r for r in range(vmap.num_registers) if r not in vmap.reserved
        ]
        for reg in regs:
            if not sound:
                strata[UNKNOWN].add((hi - lo + 1) * 32, reg, lo, _FULL)
                continue
            pos = lo
            for start, end, mask in vmap.reg_live.get(reg, []):
                s, e = max(start, lo), min(end, hi)
                if s > e:
                    continue
                if s > pos:
                    strata[MASKED].add((s - pos) * 32, reg, pos, _FULL)
                ticks = e - s + 1
                strata[VULNERABLE].add(ticks * mask.bit_count(), reg, s, mask)
                dead = ~mask & _FULL
                if dead:
                    strata[MASKED].add(ticks * dead.bit_count(), reg, s, dead)
                pos = e + 1
            if pos <= hi:
                strata[MASKED].add((hi - pos + 1) * 32, reg, pos, _FULL)
        return strata
    if target in STRUCTURE_TARGETS:
        if not sound:
            strata[UNKNOWN].add((hi - lo + 1) * 32, -1, lo, _FULL)
            return strata
        pos = lo
        for start, end in vmap.structures.get(variant, {}).get(target, []):
            s, e = max(start, lo), min(end, hi)
            if s > e:
                continue
            if s > pos:
                strata[MASKED].add((s - pos) * 32, -1, pos, _FULL)
            strata[VULNERABLE].add((e - s + 1) * 32, -1, s, _FULL)
            pos = e + 1
        if pos <= hi:
            strata[MASKED].add((hi - pos + 1) * 32, -1, pos, _FULL)
        return strata
    # Unmodelled target (pc / memory / checkpoint): no static claim.
    strata[UNKNOWN].add((hi - lo + 1) * 32, -1, lo, _FULL)
    return strata


# -- adaptive per-stratum sampling -------------------------------------------


@dataclass
class StratumEstimate:
    """Sampled failure-rate estimate of one stratum."""

    target: str
    label: str
    population: int
    weight: float
    injections: int
    failures: int
    center: float
    half_width: float


def _draw(
    stratum: Stratum, rng_key: str, index: int, wcdl: int
) -> tuple[int | None, int, int, int]:
    """The ``index``-th deterministic draw: (reg, bit, time, delay)."""
    rng = random.Random(f"{rng_key}:{index}")
    reg, bit, time = stratum.cell(rng.randrange(stratum.size))
    delay = rng.randrange(0, wcdl + 1)
    return reg, bit, time, delay


def sample_stratum(
    stratum: Stratum,
    *,
    weight: float,
    options: SamplingOptions,
    z: float,
    rng_key: str,
    wcdl: int,
    run_cell: RunCell,
) -> StratumEstimate:
    """Estimate one stratum's failure rate under the sampling policy."""
    size = stratum.size
    if size == 0:
        return StratumEstimate(
            stratum.target, stratum.label, 0, 0.0, 0, 0, 0.0, 0.0
        )
    if stratum.label == MASKED:
        tokens = min(options.token_rate, size)
        for i in range(tokens):
            reg, bit, time, delay = _draw(stratum, rng_key, i, wcdl)
            if not run_cell(stratum.target, reg, bit, time, delay):
                raise MaskedMisclassification(
                    f"statically masked cell corrupted the output: "
                    f"target={stratum.target} reg={reg} bit={bit} "
                    f"time={time} delay={delay}"
                )
        return StratumEstimate(
            stratum.target, stratum.label, size, weight, tokens, 0, 0.0, 0.0
        )
    cap = min(options.max_per_stratum, size)
    failures = 0
    n = 0
    while n < cap:
        batch = min(options.batch, cap - n)
        for i in range(n, n + batch):
            reg, bit, time, delay = _draw(stratum, rng_key, i, wcdl)
            if not run_cell(stratum.target, reg, bit, time, delay):
                failures += 1
        n += batch
        _, half = wilson(failures, n, z)
        if weight * half <= options.ci_width:
            break
    center, half = wilson(failures, n, z)
    return StratumEstimate(
        stratum.target, stratum.label, size, weight, n, failures, center, half
    )


def estimate_avf(
    vmap: VulnerabilityMap,
    variant: str,
    targets: tuple[str, ...],
    *,
    options: SamplingOptions,
    seed: int,
    wcdl: int,
    run_cell: RunCell,
) -> dict[str, dict[str, object]]:
    """Per-target AVF estimates with confidence intervals for one variant."""
    z = z_score(options.confidence)
    out: dict[str, dict[str, object]] = {}
    for target in targets:
        strata = build_strata(vmap, variant, target)
        total = sum(s.size for s in strata.values())
        if total == 0:
            continue
        estimates: list[StratumEstimate] = []
        for label in (MASKED, VULNERABLE, UNKNOWN):
            stratum = strata[label]
            estimates.append(
                sample_stratum(
                    stratum,
                    weight=stratum.size / total,
                    options=options,
                    z=z,
                    rng_key=f"{seed}:avf:{variant}:{target}:{label}",
                    wcdl=wcdl,
                    run_cell=run_cell,
                )
            )
        avf = sum(e.weight * e.center for e in estimates)
        half = sum(e.weight * e.half_width for e in estimates)
        out[target] = {
            "avf": avf,
            "ci_low": max(0.0, avf - half),
            "ci_high": min(1.0, avf + half),
            "half_width": half,
            "confidence": options.confidence,
            "population": total,
            "injections": sum(e.injections for e in estimates),
            "strata": {
                e.label: {
                    "population": e.population,
                    "weight": e.weight,
                    "injections": e.injections,
                    "failures": e.failures,
                    "center": e.center,
                    "half_width": e.half_width,
                }
                for e in estimates
            },
        }
    return out


# -- differential validation (repro vuln --validate) -------------------------


@dataclass
class ValidationResult:
    """Sampled-vs-exhaustive comparison on a restricted cell population."""

    uid: str
    variant: str
    cells: int
    exhaustive_injections: int
    exhaustive_avf: float
    masked_cells: int
    masked_misclassified: int
    sampled_injections: int
    sampled_avf: float
    ci_low: float
    ci_high: float
    covered: bool
    saved_ratio: float

    @property
    def ok(self) -> bool:
        return self.masked_misclassified == 0 and self.covered

    def render_text(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        return (
            f"{self.uid} [{self.variant}] {verdict}: "
            f"exhaustive AVF {self.exhaustive_avf:.4f} over {self.cells} "
            f"cells ({self.masked_cells} masked, "
            f"{self.masked_misclassified} misclassified); sampled "
            f"{self.sampled_avf:.4f} in [{self.ci_low:.4f}, "
            f"{self.ci_high:.4f}] ({'covers' if self.covered else 'MISSES'} "
            f"truth) with {self.sampled_injections}/"
            f"{self.exhaustive_injections} injections "
            f"({self.saved_ratio:.0%} saved)"
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "uid": self.uid,
            "variant": self.variant,
            "cells": self.cells,
            "exhaustive_injections": self.exhaustive_injections,
            "exhaustive_avf": self.exhaustive_avf,
            "masked_cells": self.masked_cells,
            "masked_misclassified": self.masked_misclassified,
            "sampled_injections": self.sampled_injections,
            "sampled_avf": self.sampled_avf,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "covered": self.covered,
            "saved_ratio": self.saved_ratio,
            "ok": self.ok,
        }


VALIDATION_BITS = (0, 7, 15, 31)
VALIDATION_CELL_BUDGET = 480


def validate_benchmark(
    uid: str,
    *,
    variant: str = "turnpike",
    wcdl: int = 10,
    seed: int = 1234,
    ci_width: float = 0.05,
    confidence: float = 0.95,
    max_steps: int = 4_000_000,
    use_cache: bool = True,
) -> ValidationResult:
    """Differential sampled-vs-exhaustive validation on one benchmark.

    Restricts the campaign population to register cells over a bit
    subset and a tick stride (~a few hundred cells), so the exhaustive
    sweep stays cheap enough for CI, then asserts the two contract
    properties: zero masked misclassifications and interval coverage of
    the exhaustive ground truth.
    """
    from repro.compiler.config import turnpike_config
    from repro.compiler.pipeline import compile_program
    # Deferred: repro.faults.campaign imports this module at top level.
    from repro.faults.campaign import CampaignSpec, _golden_record
    from repro.faults.injector import golden_memory, run_with_injection
    from repro.faults.snapshot import DEFAULT_SNAPSHOT_INTERVAL
    from repro.isa.registers import Reg
    from repro.runtime.machine import Injection, InjectionTarget
    from repro.verify.vuln import variant_config, vulnerability_map
    from repro.workloads.suites import load_workload

    vmap = vulnerability_map(
        uid,
        wcdl=wcdl,
        variants=(variant,),
        max_steps=max_steps,
        use_cache=use_cache,
    )
    workload = load_workload(uid)
    compiled = compile_program(workload.program, turnpike_config())
    memory = workload.fresh_memory()
    golden = golden_memory(compiled, memory)
    config = variant_config(variant, wcdl)
    accel_spec = CampaignSpec(
        uid=uid, wcdl=wcdl, count=1, seed=seed,
        variants=(variant,), max_steps=max_steps,
    )
    accel = _golden_record(accel_spec, variant, DEFAULT_SNAPSHOT_INTERVAL)

    regs = [r for r in range(vmap.num_registers) if r not in vmap.reserved]
    lo, hi = 1, vmap.horizon - 1
    ticks = max(0, hi - lo + 1)
    per_tick = len(regs) * len(VALIDATION_BITS)
    stride = max(1, (ticks * per_tick) // VALIDATION_CELL_BUDGET)
    cells = [
        (reg, bit, t)
        for t in range(lo, hi + 1, stride)
        for reg in regs
        for bit in VALIDATION_BITS
    ]

    outcomes: dict[int, bool] = {}

    def run_cell_index(index: int) -> bool:
        cached = outcomes.get(index)
        if cached is not None:
            return cached
        reg, bit, time = cells[index]
        delay = random.Random(f"{seed}:val:{index}").randrange(0, wcdl + 1)
        outcome = run_with_injection(
            compiled,
            config,
            memory,
            Injection(
                time=time,
                target=InjectionTarget.REGISTER,
                reg=Reg.phys(reg),
                bit=bit,
                detection_delay=delay,
            ),
            golden,
            max_steps=max_steps,
            accel=accel,
        )
        outcomes[index] = outcome.correct
        return outcome.correct

    # Exhaustive ground truth + masked-soundness audit over every cell.
    classes = [
        vmap.classify("register", t, bit=b, reg=r, variant=variant)
        for r, b, t in cells
    ]
    failures = 0
    masked_cells = 0
    misclassified = 0
    for index, klass in enumerate(classes):
        correct = run_cell_index(index)
        if not correct:
            failures += 1
        if klass == MASKED:
            masked_cells += 1
            if not correct:
                misclassified += 1
    exhaustive_avf = failures / len(cells) if cells else 0.0

    # Sampled estimator over the same finite population (draws resolve
    # through the memo, so its injection count is the marginal cost).
    by_class: dict[str, list[int]] = {MASKED: [], VULNERABLE: [], UNKNOWN: []}
    for index, klass in enumerate(classes):
        by_class[klass].append(index)
    options = SamplingOptions(
        enabled=True, ci_width=ci_width, confidence=confidence
    )
    z = z_score(confidence)
    sampled: set[int] = set()
    avf = 0.0
    half = 0.0
    for label, members in by_class.items():
        if not members:
            continue
        weight = len(members) / len(cells)
        rng_key = f"{seed}:val:{variant}:{label}"
        if label == MASKED:
            # Token cross-check draws. A corrupting hit here is already
            # counted by the exhaustive audit above, so the validator
            # reports it as a FAIL verdict rather than raising.
            for i in range(min(options.token_rate, len(members))):
                rng = random.Random(f"{rng_key}:{i}")
                index = members[rng.randrange(len(members))]
                sampled.add(index)
                run_cell_index(index)
            continue
        cap = min(options.max_per_stratum, len(members))
        fail = 0
        n = 0
        while n < cap:
            batch = min(options.batch, cap - n)
            for i in range(n, n + batch):
                rng = random.Random(f"{rng_key}:{i}")
                index = members[rng.randrange(len(members))]
                sampled.add(index)
                if not run_cell_index(index):
                    fail += 1
            n += batch
            _, hw = wilson(fail, n, z)
            if weight * hw <= options.ci_width:
                break
        center, hw = wilson(fail, n, z)
        avf += weight * center
        half += weight * hw
    ci_low = max(0.0, avf - half)
    ci_high = min(1.0, avf + half)
    covered = ci_low <= exhaustive_avf <= ci_high
    return ValidationResult(
        uid=uid,
        variant=variant,
        cells=len(cells),
        exhaustive_injections=len(cells),
        exhaustive_avf=exhaustive_avf,
        masked_cells=masked_cells,
        masked_misclassified=misclassified,
        sampled_injections=len(sampled),
        sampled_avf=avf,
        ci_low=ci_low,
        ci_high=ci_high,
        covered=covered,
        saved_ratio=1.0 - (len(sampled) / len(cells) if cells else 0.0),
    )
