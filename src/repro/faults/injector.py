"""Single-event-upset injection harness.

Runs a compiled program on the :class:`ResilientMachine` with one bit
flip injected at a chosen commit tick, then compares the final data
memory against a fault-free golden run. This is how the repository
*proves* the paper's safety arguments rather than asserting them:

* WAR-free fast release is recoverable (Section 4.3.1);
* colored checkpoint release is recoverable (Section 4.3.2);
* uncolored checkpoint release corrupts recovery (Figure 16) — the
  deliberately unsafe mode must produce mismatches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.compiler.pipeline import CompiledProgram
from repro.isa.registers import Reg
from repro.runtime.interpreter import execute
from repro.runtime.machine import (
    Injection,
    InjectionTarget,
    RecoveryFailure,
    ResilienceConfig,
    ResilientMachine,
)
from repro.runtime.memory import Memory


@dataclass
class InjectionOutcome:
    """Result of one injected run."""

    injection: Injection
    correct: bool  # final data memory == golden
    recovered: bool  # at least one recovery was exercised
    masked: bool  # no recovery ran (flip overwritten / never detected?)
    parity_detected: bool
    error: str | None = None  # protocol/recovery exception text


@dataclass
class CampaignResult:
    """Aggregate over many injections."""

    outcomes: list[InjectionOutcome] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.outcomes)

    @property
    def correct_runs(self) -> int:
        return sum(1 for o in self.outcomes if o.correct)

    @property
    def sdc_runs(self) -> int:
        """Silent data corruptions: wrong output, no crash."""
        return sum(1 for o in self.outcomes if not o.correct and o.error is None)

    @property
    def failed_runs(self) -> int:
        return sum(1 for o in self.outcomes if o.error is not None)

    @property
    def recovery_runs(self) -> int:
        return sum(1 for o in self.outcomes if o.recovered)

    def summary(self) -> dict[str, int]:
        return {
            "runs": self.runs,
            "correct": self.correct_runs,
            "sdc": self.sdc_runs,
            "failed": self.failed_runs,
            "recoveries": self.recovery_runs,
        }


def golden_memory(compiled: CompiledProgram, memory: Memory) -> dict[int, int]:
    """Fault-free reference image of the data segment."""
    result = execute(compiled.program, memory.copy())
    return result.memory.data_image()


def run_with_injection(
    compiled: CompiledProgram,
    config: ResilienceConfig,
    memory: Memory,
    injection: Injection,
    golden: dict[int, int] | None = None,
) -> InjectionOutcome:
    """Execute one injected run and compare against the golden image."""
    if golden is None:
        golden = golden_memory(compiled, memory)
    machine = ResilientMachine(compiled, config, memory.copy())
    machine.arm_injection(injection)
    try:
        stats = machine.run()
    except (RecoveryFailure, Exception) as exc:  # noqa: BLE001 - reported
        return InjectionOutcome(
            injection=injection,
            correct=False,
            recovered=False,
            masked=False,
            parity_detected=False,
            error=f"{type(exc).__name__}: {exc}",
        )
    image = machine.mem.data_image()
    return InjectionOutcome(
        injection=injection,
        correct=image == golden,
        recovered=stats.recoveries > 0,
        masked=stats.recoveries == 0,
        parity_detected=stats.parity_detections > 0,
    )


def random_register_injections(
    compiled: CompiledProgram,
    wcdl: int,
    count: int,
    seed: int,
    horizon: int,
) -> list[Injection]:
    """Uniformly sample register bit flips over the commit timeline."""
    rng = random.Random(seed)
    num_regs = compiled.program.register_file.num_registers
    reserved = set(compiled.program.register_file.reserved)
    injections = []
    for _ in range(count):
        while True:
            reg_idx = rng.randrange(num_regs)
            if reg_idx not in reserved:
                break
        injections.append(
            Injection(
                time=rng.randrange(1, max(2, horizon)),
                target=InjectionTarget.REGISTER,
                reg=Reg.phys(reg_idx),
                bit=rng.randrange(32),
                detection_delay=rng.randrange(0, wcdl + 1),
            )
        )
    return injections


def run_campaign(
    compiled: CompiledProgram,
    config: ResilienceConfig,
    memory: Memory,
    injections: list[Injection],
) -> CampaignResult:
    """Run a batch of injections against one program/config."""
    golden = golden_memory(compiled, memory)
    result = CampaignResult()
    for injection in injections:
        result.outcomes.append(
            run_with_injection(compiled, config, memory, injection, golden)
        )
    return result
