"""Single-event-upset injection harness with a typed error taxonomy.

Runs a compiled program on the :class:`ResilientMachine` with one fault
injected at a chosen commit tick, then compares the final data memory
against a fault-free golden run. This is how the repository *proves* the
paper's safety arguments rather than asserting them:

* WAR-free fast release is recoverable (Section 4.3.1);
* colored checkpoint release is recoverable (Section 4.3.2);
* uncolored checkpoint release corrupts recovery (Figure 16) — the
  deliberately unsafe mode must produce mismatches.

Every run is classified into a :class:`FaultOutcomeKind` so campaigns
can distinguish "the protocol contained the error" (MASKED / RECOVERED /
DETECTED_HALT) from "something is wrong with the model or the protocol"
(SDC / PROTOCOL_BUG / TIMEOUT). Unexpected exceptions are never silently
counted as contained: they surface as PROTOCOL_BUG with a full
traceback.
"""

from __future__ import annotations

import enum
import random
import traceback as _traceback
from dataclasses import dataclass, field

from repro.compiler.pipeline import CompiledProgram
from repro.faults.snapshot import (
    ConvergedExit,
    GoldenRecord,
    prepare_accelerated_run,
)
from repro.isa.registers import Reg
from repro.runtime.interpreter import execute
from repro.runtime.machine import (
    DetectedHalt,
    Injection,
    InjectionTarget,
    ProtocolError,
    RecoveryFailure,
    ResilienceConfig,
    ResilientMachine,
    WatchdogTimeout,
)
from repro.runtime.memory import Memory


class FaultOutcomeKind(enum.Enum):
    """What one injected run amounted to.

    * MASKED — the flip never influenced architectural state: output
      correct, no recovery ran (overwritten / struck idle storage /
      corrected in place by ECC).
    * RECOVERED — detection fired, recovery re-executed, output correct.
    * DETECTED_HALT — hardware detected an uncorrectable error (multi-bit
      ECC, missing binding) and failed-stop instead of corrupting state.
    * SDC — silent data corruption: the run finished with wrong output.
    * MISCORRECTED — real-code ECC mode only: the decoder applied a
      *wrong* correction to a struck word and that substituted value
      corrupted the final output. A distinct bucket from SDC because
      the fail-safe itself manufactured the bad value.
    * PROTOCOL_BUG — the protocol model reached an impossible state or
      the simulator raised an unexpected exception.
    * TIMEOUT — the watchdog killed a livelocked injected run.
    """

    MASKED = "masked"
    RECOVERED = "recovered"
    DETECTED_HALT = "detected_halt"
    SDC = "sdc"
    MISCORRECTED = "miscorrected"
    PROTOCOL_BUG = "protocol_bug"
    TIMEOUT = "timeout"


#: Outcomes in which the error was correctly contained by the protocol.
CONTAINED_KINDS = frozenset(
    {
        FaultOutcomeKind.MASKED,
        FaultOutcomeKind.RECOVERED,
        FaultOutcomeKind.DETECTED_HALT,
    }
)

#: The taxonomy before real-code ECC mode existed. Campaign aggregates
#: run with ECC off zero-fill only these, keeping their JSON
#: byte-identical to pre-ECC campaigns.
LEGACY_KINDS: tuple[FaultOutcomeKind, ...] = (
    FaultOutcomeKind.MASKED,
    FaultOutcomeKind.RECOVERED,
    FaultOutcomeKind.DETECTED_HALT,
    FaultOutcomeKind.SDC,
    FaultOutcomeKind.PROTOCOL_BUG,
    FaultOutcomeKind.TIMEOUT,
)


@dataclass
class InjectionOutcome:
    """Result of one injected run."""

    injection: Injection
    kind: FaultOutcomeKind
    correct: bool  # final data memory == golden
    recovered: bool  # at least one recovery was exercised
    parity_detected: bool
    error: str | None = None  # exception text for non-completed runs
    traceback: str | None = None  # full traceback for PROTOCOL_BUG

    @property
    def masked(self) -> bool:
        """Correct output with no recovery — never true for an SDC."""
        return self.kind is FaultOutcomeKind.MASKED

    @property
    def contained(self) -> bool:
        return self.kind in CONTAINED_KINDS


@dataclass
class CampaignResult:
    """Aggregate over many injections."""

    outcomes: list[InjectionOutcome] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.outcomes)

    @property
    def correct_runs(self) -> int:
        return sum(1 for o in self.outcomes if o.correct)

    @property
    def sdc_runs(self) -> int:
        """Silent data corruptions: wrong output, no crash."""
        return sum(1 for o in self.outcomes if o.kind is FaultOutcomeKind.SDC)

    @property
    def failed_runs(self) -> int:
        return sum(1 for o in self.outcomes if o.error is not None)

    @property
    def recovery_runs(self) -> int:
        return sum(1 for o in self.outcomes if o.recovered)

    @property
    def masked_runs(self) -> int:
        return sum(1 for o in self.outcomes if o.masked)

    @property
    def bug_runs(self) -> int:
        return sum(
            1 for o in self.outcomes if o.kind is FaultOutcomeKind.PROTOCOL_BUG
        )

    def by_kind(
        self, kinds: tuple[FaultOutcomeKind, ...] | None = None
    ) -> dict[str, int]:
        """Histogram over the outcome taxonomy.

        ``kinds`` selects the zero-filled key set (``LEGACY_KINDS`` for
        pre-ECC byte-identity); kinds that actually occurred are always
        counted regardless.
        """
        hist = {kind.value: 0 for kind in (kinds or tuple(FaultOutcomeKind))}
        for o in self.outcomes:
            hist[o.kind.value] = hist.get(o.kind.value, 0) + 1
        return hist

    def by_target(
        self, kinds: tuple[FaultOutcomeKind, ...] | None = None
    ) -> dict[str, dict[str, int]]:
        """Per-structure vulnerability report: target -> kind histogram."""
        template = kinds or tuple(FaultOutcomeKind)
        table: dict[str, dict[str, int]] = {}
        for o in self.outcomes:
            hist = table.setdefault(
                o.injection.target.value,
                {kind.value: 0 for kind in template},
            )
            hist[o.kind.value] = hist.get(o.kind.value, 0) + 1
        return table

    def summary(self) -> dict[str, int]:
        return {
            "runs": self.runs,
            "correct": self.correct_runs,
            "sdc": self.sdc_runs,
            "failed": self.failed_runs,
            "recoveries": self.recovery_runs,
            **self.by_kind(),
        }


# -- serialization (campaign manifests) ------------------------------------


def injection_to_dict(injection: Injection) -> dict:
    return {
        "time": injection.time,
        "target": injection.target.value,
        "reg": injection.reg.index if injection.reg is not None else None,
        "bit": injection.bit,
        "bits": list(injection.bits),
        "detection_delay": injection.detection_delay,
        "addr": injection.addr,
    }


def injection_from_dict(data: dict) -> Injection:
    reg = data.get("reg")
    return Injection(
        time=data["time"],
        target=InjectionTarget(data["target"]),
        reg=Reg.phys(reg) if reg is not None else None,
        bit=data.get("bit", 0),
        bits=tuple(data.get("bits", ())),
        detection_delay=data.get("detection_delay", 0),
        addr=data.get("addr"),
    )


def outcome_to_dict(outcome: InjectionOutcome) -> dict:
    return {
        "injection": injection_to_dict(outcome.injection),
        "kind": outcome.kind.value,
        "correct": outcome.correct,
        "recovered": outcome.recovered,
        "parity_detected": outcome.parity_detected,
        "error": outcome.error,
        "traceback": outcome.traceback,
    }


def outcome_from_dict(data: dict) -> InjectionOutcome:
    return InjectionOutcome(
        injection=injection_from_dict(data["injection"]),
        kind=FaultOutcomeKind(data["kind"]),
        correct=data["correct"],
        recovered=data["recovered"],
        parity_detected=data["parity_detected"],
        error=data.get("error"),
        traceback=data.get("traceback"),
    )


# -- single runs -----------------------------------------------------------


def golden_memory(compiled: CompiledProgram, memory: Memory) -> dict[int, int]:
    """Fault-free reference image of the data segment."""
    result = execute(compiled.program, memory.copy())
    return result.memory.data_image()


def run_with_injection(
    compiled: CompiledProgram,
    config: ResilienceConfig,
    memory: Memory,
    injection: Injection,
    golden: dict[int, int] | None = None,
    max_steps: int = 4_000_000,
    wall_clock_budget: float | None = None,
    accel: "GoldenRecord | None" = None,
) -> InjectionOutcome:
    """Execute one injected run and classify it against the golden image.

    ``accel`` (a :class:`repro.faults.snapshot.GoldenRecord` built for
    the *same* compiled program, config, memory and ``max_steps``)
    enables snapshot fast-forward to the injection tick and convergence
    early-exit against the golden fingerprint stream. Acceleration is
    observationally invisible — the returned outcome is identical to an
    unaccelerated run — and is ignored under a wall-clock budget (the
    budget's trip point is inherently timing-dependent).
    """
    if golden is None:
        golden = golden_memory(compiled, memory)
    machine = ResilientMachine(
        compiled,
        config,
        memory.copy(),
        max_steps=max_steps,
        wall_clock_budget=wall_clock_budget,
    )
    if accel is not None and wall_clock_budget is None:
        # Restore before arming: restore() overwrites the injection slot.
        prepare_accelerated_run(machine, accel, injection.time, memory)
    machine.arm_injection(injection)
    try:
        stats = machine.run()
    except ConvergedExit as conv:
        # The injected run's architectural state matched a golden tick:
        # its future *is* the golden suffix. Splice the terminal result.
        total_steps = conv.steps + (accel.total_steps - conv.golden_steps)
        if total_steps > max_steps:
            # The from-scratch run would have tripped the watchdog while
            # replaying this suffix.
            return InjectionOutcome(
                injection=injection,
                kind=FaultOutcomeKind.TIMEOUT,
                correct=False,
                recovered=machine.stats.recoveries > 0,
                parity_detected=machine.stats.parity_detections > 0,
                error=(
                    f"WatchdogTimeout: {compiled.program.name}: exceeded "
                    f"{max_steps} steps (possible recovery livelock)"
                ),
            )
        recovered = machine.stats.recoveries > 0
        return InjectionOutcome(
            injection=injection,
            kind=(
                FaultOutcomeKind.RECOVERED
                if recovered
                else FaultOutcomeKind.MASKED
            ),
            correct=True,
            recovered=recovered,
            parity_detected=machine.stats.parity_detections > 0,
        )
    except WatchdogTimeout as exc:
        return InjectionOutcome(
            injection=injection,
            kind=FaultOutcomeKind.TIMEOUT,
            correct=False,
            recovered=machine.stats.recoveries > 0,
            parity_detected=machine.stats.parity_detections > 0,
            error=f"{type(exc).__name__}: {exc}",
        )
    except (DetectedHalt, RecoveryFailure) as exc:
        # The hardware detected an error it could not repair and halted:
        # the error is contained (fail-stop), just not transparent.
        return InjectionOutcome(
            injection=injection,
            kind=FaultOutcomeKind.DETECTED_HALT,
            correct=False,
            recovered=machine.stats.recoveries > 0,
            parity_detected=machine.stats.parity_detections > 0,
            error=f"{type(exc).__name__}: {exc}",
        )
    except (ProtocolError, Exception) as exc:  # noqa: BLE001 - classified
        # Anything else — ProtocolError or an unexpected simulator crash —
        # is a bug in the model or the protocol, never a contained fault.
        return InjectionOutcome(
            injection=injection,
            kind=FaultOutcomeKind.PROTOCOL_BUG,
            correct=False,
            recovered=machine.stats.recoveries > 0,
            parity_detected=machine.stats.parity_detections > 0,
            error=f"{type(exc).__name__}: {exc}",
            traceback=_traceback.format_exc(),
        )
    image = machine.mem.data_image()
    correct = image == golden
    recovered = stats.recoveries > 0
    if not correct:
        # Wrong output manufactured by the ECC decoder itself (a wrong
        # "correction" substituted into the run) is its own bucket;
        # plain SDC means the corruption slipped past everything.
        kind = (
            FaultOutcomeKind.MISCORRECTED
            if stats.ecc_miscorrections > 0
            else FaultOutcomeKind.SDC
        )
    elif recovered:
        kind = FaultOutcomeKind.RECOVERED
    else:
        kind = FaultOutcomeKind.MASKED
    return InjectionOutcome(
        injection=injection,
        kind=kind,
        correct=correct,
        recovered=recovered,
        parity_detected=stats.parity_detections > 0,
    )


# -- injection generators --------------------------------------------------

#: Structures an SEU campaign can strike, in round-robin order.
DEFAULT_TARGET_MIX: tuple[InjectionTarget, ...] = (
    InjectionTarget.REGISTER,
    InjectionTarget.STORE_BUFFER,
    InjectionTarget.CLQ,
    InjectionTarget.COLORING,
    InjectionTarget.CHECKPOINT,
    InjectionTarget.PC,
    InjectionTarget.MEMORY,
)

#: Fraction of injections upgraded to double-bit events.
DOUBLE_FLIP_RATE = 0.2


def injection_for_index(
    compiled: CompiledProgram,
    wcdl: int,
    seed: int,
    index: int,
    horizon: int,
    targets: tuple[InjectionTarget, ...] = DEFAULT_TARGET_MIX,
    upset: str | None = None,
) -> Injection:
    """Deterministically derive injection ``index`` of a campaign.

    Each injection depends only on ``(seed, index)`` plus the static
    campaign parameters — never on how many injections were generated
    before it — so a resumed campaign reproduces exactly the same faults
    regardless of which shards already ran.

    ``upset`` names a :mod:`repro.ecc.faultmodel` pattern that shapes
    the flipped bit set (e.g. ``adjacent-double``, ``burst3``); None
    keeps the classic single/occasional-double generator and its exact
    historical rng draw order.
    """
    rng = random.Random(f"{seed}:{index}")
    target = targets[index % len(targets)]
    time = rng.randrange(1, max(2, horizon))
    delay = rng.randrange(0, wcdl + 1)
    bits: tuple[int, ...]
    if upset is not None:
        from repro.ecc.faultmodel import pattern

        mask = pattern(upset).sample(rng, 32)
        positions = tuple(b for b in range(32) if (mask >> b) & 1)
        bit = positions[0]
        bits = positions if len(positions) > 1 else ()
    else:
        bit = rng.randrange(32)
        bits = ()
        if rng.random() < DOUBLE_FLIP_RATE:
            second = rng.randrange(31)
            if second >= bit:
                second += 1
            bits = (bit, second)
    reg = None
    if target is InjectionTarget.REGISTER:
        num_regs = compiled.program.register_file.num_registers
        reserved = set(compiled.program.register_file.reserved)
        while True:
            reg_idx = rng.randrange(num_regs)
            if reg_idx not in reserved:
                break
        reg = Reg.phys(reg_idx)
    return Injection(
        time=time,
        target=target,
        reg=reg,
        bit=bit,
        bits=bits,
        detection_delay=delay,
    )


def random_mixed_injections(
    compiled: CompiledProgram,
    wcdl: int,
    count: int,
    seed: int,
    horizon: int,
    targets: tuple[InjectionTarget, ...] = DEFAULT_TARGET_MIX,
) -> list[Injection]:
    """``count`` deterministic injections cycling over ``targets``."""
    return [
        injection_for_index(compiled, wcdl, seed, index, horizon, targets)
        for index in range(count)
    ]


def random_register_injections(
    compiled: CompiledProgram,
    wcdl: int,
    count: int,
    seed: int,
    horizon: int,
) -> list[Injection]:
    """Uniformly sample register bit flips over the commit timeline."""
    rng = random.Random(seed)
    num_regs = compiled.program.register_file.num_registers
    reserved = set(compiled.program.register_file.reserved)
    injections = []
    for _ in range(count):
        while True:
            reg_idx = rng.randrange(num_regs)
            if reg_idx not in reserved:
                break
        injections.append(
            Injection(
                time=rng.randrange(1, max(2, horizon)),
                target=InjectionTarget.REGISTER,
                reg=Reg.phys(reg_idx),
                bit=rng.randrange(32),
                detection_delay=rng.randrange(0, wcdl + 1),
            )
        )
    return injections


def run_campaign(
    compiled: CompiledProgram,
    config: ResilienceConfig,
    memory: Memory,
    injections: list[Injection],
    max_steps: int = 4_000_000,
) -> CampaignResult:
    """Run a batch of injections against one program/config."""
    golden = golden_memory(compiled, memory)
    result = CampaignResult()
    for injection in injections:
        result.outcomes.append(
            run_with_injection(
                compiled, config, memory, injection, golden, max_steps=max_steps
            )
        )
    return result
