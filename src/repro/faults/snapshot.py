"""Snapshot acceleration for fault-injection campaigns.

A campaign's cost is dominated by re-simulating the *same* fault-free
prefix and suffix thousands of times: an injection at tick ``T`` first
replays ``T`` clean ticks to reach the strike, applies a one-tick
perturbation, recovers within a few WCDL windows, and then replays the
remaining clean suffix to completion. This module removes both replays:

* :func:`record_golden_run` executes each (benchmark, variant) pair
  fault-free **once**, capturing periodic :class:`MachineSnapshot`\\ s
  plus a per-tick *architectural fingerprint* stream.
* :func:`prepare_accelerated_run` fast-forwards an injection run by
  restoring the nearest snapshot strictly before the injection tick
  (prefix removal) and installs a convergence checker.
* The checker compares the injected machine's fingerprint against the
  golden stream after recovery quiesces; on a match it raises
  :class:`ConvergedExit`, and the injector splices the golden terminal
  statistics (suffix removal).

Soundness
---------

The fingerprint is a stable 64-bit hash of the machine's *observable
state*: program point, live-register values, and the effective memory
image (the cell dict with every pending store-buffer write applied, as
an incremental XOR fingerprint).  The checker only ever compares it
once the injected machine carries **no outstanding fault state**: no
armed injection, no pending detection, no tainted registers or cells,
and no latent ECC flips in memory or checkpoint storage.  Under that
guard the observable state determines the entire future:

* **Control flow and step count** depend only on the program point,
  register reads (``instr.srcs``) and load values.  A load returns the
  youngest pending store-buffer value or the memory cell — exactly what
  the effective image encodes — so two machines with equal observable
  state execute the same instruction sequence forever.
* **The final data image** is the effective image evolved by those same
  writes: quarantined stores drain the very values the fingerprint
  already folded in, so drain *timing* (RBB deadlines, CLQ fast-release
  decisions) cannot change it.
* **Recovery metadata is write-only.**  Checkpoint bindings, coloring
  maps, checkpoint storage and the CLQ are only ever *read* during a
  recovery or an injection — and with no fault state left, neither can
  occur again on either run.  The structures may differ (a recovered
  run's free-list rotation and binding kinds diverge from golden's
  forever), but no future transition observes the difference.
* **Liveness filtering** — recovery rebuilds only checkpointed (live)
  registers, so a recovered run's dead registers differ from golden
  forever.  Dead registers cannot influence any future transition, so
  the encoding includes only the registers *live at the current program
  point*, computed by a backward dataflow fixpoint over the compiled
  CFG.

Equal observable state therefore implies identical futures — final
memory image, remaining step count, and zero further recoveries,
detections or parity events on both sides.  Splicing cannot change an
outcome's taxonomy class, only the wall-clock spent computing it.  Two
distinct golden ticks can never share an observable state (the machine
is deterministic, so both would have to finish in the same number of
remaining steps), hence duplicate fingerprints are genuine 64-bit
collisions; they are dropped from the index, which is always sound — a
missed match merely means the run simulates to completion.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

from repro.compiler.pipeline import CompiledProgram
from repro.runtime.machine import (
    MachineSnapshot,
    ResilienceConfig,
    ResilientMachine,
    SnapshotError,
    _cell_hash,
    memory_fingerprint,
)
from repro.runtime.memory import Memory

DEFAULT_SNAPSHOT_INTERVAL = 256

_M64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """splitmix64 finalizer: full-avalanche 64-bit mix, pure arithmetic.

    Process-independent by construction (Python's builtin ``hash`` is
    salted per process, so golden records written by one worker must not
    be matched with it), and an order of magnitude cheaper than hashing
    a ``repr`` — the golden recording computes a fingerprint every tick.
    """
    x &= _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


class ConvergedExit(Exception):
    """Raised out of ``ResilientMachine.run`` when the injected run's
    architectural state matches a tick of the golden stream.

    Carries enough to splice the golden suffix: ``golden_tick`` /
    ``golden_steps`` locate the matched point in the golden run and
    ``steps`` is the injected run's own step count at the match.
    """

    def __init__(self, golden_tick: int, golden_steps: int, steps: int):
        super().__init__(
            f"converged with the golden run at tick {golden_tick}"
        )
        self.golden_tick = golden_tick
        self.golden_steps = golden_steps
        self.steps = steps


class _FingerprintEngine:
    """Computes per-tick observable-state fingerprints for one machine."""

    def __init__(self, machine: ResilientMachine):
        self.machine = machine
        program = machine.program
        self._block_index = {b.label: i for i, b in enumerate(program.blocks)}
        self._succs: dict[str, list[str]] = {}
        for block in program.blocks:
            succs: list[str] = []
            for instr in block.instructions:
                if instr.targets:
                    succs.extend(instr.targets)
            self._succs[block.label] = succs
        self._block_live_in = self._solve_liveness(program)
        # label -> per-position live-register tuples (lazily materialised).
        self._live: dict[str, list[tuple]] = {}
        self._blocks = {b.label: b.instructions for b in program.blocks}

    # -- liveness ---------------------------------------------------------

    def _solve_liveness(self, program) -> dict[str, set]:
        """Backward may-liveness fixpoint over the compiled CFG.

        Every register read in the machine goes through ``instr.srcs``
        (ALU operands, load bases, store value+base, branch operands,
        checkpoint sources), and every write through ``instr.dest``, so
        gen/kill straight off the instruction encoding is exact.
        """
        live_in: dict[str, set] = {b.label: set() for b in program.blocks}
        changed = True
        while changed:
            changed = False
            for block in reversed(program.blocks):
                live: set = set()
                for succ in self._succs[block.label]:
                    live |= live_in[succ]
                for instr in reversed(block.instructions):
                    if instr.dest is not None:
                        live = live - {instr.dest}
                    if instr.srcs:
                        live = live | set(instr.srcs)
                if live != live_in[block.label]:
                    live_in[block.label] = live
                    changed = True
        return live_in

    def _live_list(self, label: str) -> list[tuple]:
        """Live register *indices* before each instruction (plus live-out).

        Stored as sorted index tuples so :meth:`fingerprint` can read the
        machine's flat register list directly; the canon's value order is
        unchanged (ascending register index, exactly as before).
        """
        cached = self._live.get(label)
        if cached is not None:
            return cached
        instrs = self._blocks[label]
        live: set = set()
        for succ in self._succs[label]:
            live |= self._block_live_in[succ]
        out: list[tuple] = [()] * (len(instrs) + 1)
        out[len(instrs)] = tuple(sorted(r.index for r in live))
        for i in range(len(instrs) - 1, -1, -1):
            instr = instrs[i]
            if instr.dest is not None:
                live = live - {instr.dest}
            if instr.srcs:
                live = live | set(instr.srcs)
            out[i] = tuple(sorted(r.index for r in live))
        self._live[label] = out
        return out

    # -- the observable canon ---------------------------------------------

    def fingerprint(self, label: str, pc: int, t: int) -> int:
        """Stable hash of the machine's observable state at the
        loop-bottom point ``(label, pc)`` reached at tick ``t``.

        The canon is (block, pc, live-register values, effective memory
        fingerprint), where the effective image applies every pending
        regular store-buffer entry over the cell dict — exactly the
        values loads can observe and drains will eventually merge.  See
        the module docstring for why this determines the entire future
        once no fault state is outstanding.
        """
        m = self.machine
        live = self._live_list(label)
        live_regs = live[pc] if pc < len(live) else live[-1]
        vals = m.regs.vals
        eff = m._mem_fp
        entries = m.sb.entries
        if entries:
            pending: dict[int, int] = {}
            for entry in entries:
                if not entry.is_checkpoint:
                    pending[entry.addr] = entry.value  # youngest wins
            if pending:
                cells_get = m.mem.cells.get
                for addr, value in pending.items():
                    eff ^= _cell_hash(addr, cells_get(addr, 0))
                    eff ^= _cell_hash(addr, value)
        # Iterated splitmix64 over (block, pc, live values..., eff): each
        # step is order-sensitive, so this is a stable 64-bit digest of
        # the same canonical tuple the old repr-based hash encoded.
        h = _mix64(self._block_index[label] * 0x9E3779B97F4A7C15 + pc + 1)
        for i in live_regs:
            h = _mix64(h ^ (vals[i] & _M64))
        return _mix64(h ^ (eff & _M64))


def _canon_expr(expr) -> tuple:
    return (
        expr.kind,
        expr.opcode.name if expr.opcode is not None else None,
        tuple(r.index for r in expr.regs),
        expr.imm,
    )


def _canon_binding(binding) -> tuple:
    kind, payload = binding
    if kind == "value":
        return (0, payload)
    if kind == "slot":
        return (1, payload)
    return (2, _canon_expr(payload))


def full_state_canonical(machine: ResilientMachine, t: int) -> tuple:
    """Exhaustive translation-invariant encoding of the machine state.

    Much stricter than the observable canon the convergence checker
    uses: every protocol structure is included, with region-instance
    ids renumbered by age rank and timestamps made relative to ``t``.
    The parity suite uses it to assert that ``snapshot``/``restore``
    reproduces a machine *exactly*, not merely observably.
    """
    m = machine
    rbb = m.rbb
    imap = {
        inst.instance: rank
        for rank, inst in enumerate(rbb.active_instances())
    }
    rank_of = imap.get
    cur = rbb.current
    return (
        tuple(sorted((r.index, v) for r, v in m.regs.items())),
        tuple(sorted(m.mem.cells.items())),
        (cur.region_id, cur.start_time - t) if cur is not None else None,
        tuple(
            (inst.region_id, inst.start_time - t, inst.end_time - t)
            for inst in rbb.unverified
        ),
        m.sb.canonical(imap),
        m.clq.canonical(imap) if m.clq is not None else None,
        m.coloring.canonical(imap),
        tuple(sorted(m.ckpt_storage.items())),
        tuple(sorted(
            (idx, _canon_binding(b)) for idx, b in m.vc_bindings.items()
        )),
        tuple(
            (
                rank_of(inst, ~inst),
                tuple(
                    (ridx, _canon_binding(b))
                    for ridx, b in bindings.items()
                ),
            )
            for inst, bindings in m.pending_bindings.items()
        ),
        m._detection_due is None,
        tuple(sorted(
            (key, tuple(sorted(bits)))
            for key, bits in m._slot_flips.items()
        )),
        tuple(sorted(
            (addr, tuple(sorted(bits)))
            for addr, bits in m._mem_flips.items()
        )),
        tuple(sorted(r.index for r in m._tainted_regs)),
        tuple(sorted(m._tainted_cells)),
    )


class _ConvergenceChecker:
    """``_on_tick`` hook: raises :class:`ConvergedExit` on a golden match.

    Checks are gated on the machine carrying *no outstanding fault
    state*, then throttled with an exponential backoff (reset whenever a
    new recovery fires, since convergence usually follows within a few
    ticks of the rollback).
    """

    MAX_GAP = 64

    __slots__ = ("_machine", "_fp_index", "_engine", "_gap", "_skip",
                 "_recoveries")

    def __init__(self, machine: ResilientMachine,
                 fp_index: dict[int, tuple[int, int]],
                 engine: _FingerprintEngine):
        self._machine = machine
        self._fp_index = fp_index
        self._engine = engine
        self._gap = 1
        self._skip = 0
        self._recoveries = machine.stats.recoveries

    def __call__(self, label: str, pc: int, t: int, steps: int) -> None:
        m = self._machine
        if m.injection is not None:
            return  # strike not applied yet — nothing to converge from
        recoveries = m.stats.recoveries
        if recoveries != self._recoveries:
            self._recoveries = recoveries
            self._gap = 1
            self._skip = 0
        if (
            m._tainted_cells
            or m._tainted_regs
            or m._detection_due is not None
            or m._slot_flips
            or m._mem_flips
        ):
            # Outstanding fault state: cannot have converged yet. Checked
            # cells-first — silent corruptions keep tainted cells for the
            # whole remaining run, so that read short-circuits the most.
            return
        if self._skip:
            self._skip -= 1
            return
        hit = self._fp_index.get(self._engine.fingerprint(label, pc, t))
        if hit is not None:
            raise ConvergedExit(
                golden_tick=hit[0], golden_steps=hit[1], steps=steps
            )
        self._skip = self._gap
        if self._gap < self.MAX_GAP:
            self._gap <<= 1


@dataclass
class GoldenRecord:
    """One fault-free run's acceleration artefacts.

    ``fp_index`` maps each unambiguous per-tick fingerprint to its
    ``(tick, steps)`` position in the golden run; ``snapshots`` carry
    delta-encoded machine images at ``snap_times`` (sorted ascending).
    """

    interval: int | None
    max_steps: int
    total_ticks: int
    total_steps: int
    fp_index: dict[int, tuple[int, int]] = field(repr=False)
    snap_times: list[int] = field(repr=False)
    snapshots: list[MachineSnapshot] = field(repr=False)

    def snapshot_index_before(self, time: int) -> int | None:
        """Index of the latest snapshot strictly before ``time``.

        Strict: restoring *at* the injection tick would land after
        ``_maybe_inject`` already passed that tick, silently skipping
        the strike.
        """
        i = bisect_left(self.snap_times, time) - 1
        return i if i >= 0 else None

    def cells_at(self, index: int, base_cells: dict[int, int]) -> dict[int, int]:
        """Memory cell dict at snapshot ``index``: the initial image plus
        every delta up to and including that snapshot.

        Rebuilt fresh on every call — memoising per-snapshot full images
        would multiply the working set by the snapshot count.
        """
        cells = dict(base_cells)
        for snap in self.snapshots[: index + 1]:
            cells.update(snap.mem_delta)
        return cells


def record_golden_run(
    compiled: CompiledProgram,
    config: ResilienceConfig,
    memory: Memory,
    *,
    interval: int | None = DEFAULT_SNAPSHOT_INTERVAL,
    max_steps: int = 4_000_000,
    golden_image: dict[int, int] | None = None,
) -> GoldenRecord:
    """Execute one fault-free run and capture its acceleration record.

    ``interval`` spaces the periodic snapshots in ticks (``None`` or
    ``<= 0`` records fingerprints only — fast-forward disabled, the
    degenerate configuration the parity suite exercises).  When
    ``golden_image`` (the interpreter reference) is given, the run's
    final data image is checked against it: splicing is only sound if
    the golden suffix itself terminates correctly.
    """
    if interval is not None and interval <= 0:
        interval = None
    machine = ResilientMachine(compiled, config, memory.copy(),
                               max_steps=max_steps)
    machine._mem_fp = memory_fingerprint(machine.mem.cells)
    engine = _FingerprintEngine(machine)
    fp_index: dict[int, tuple[int, int]] = {}
    ambiguous: set[int] = set()
    snapshots: list[MachineSnapshot] = []
    snap_times: list[int] = []
    prev_cells = dict(machine.mem.cells)
    cursor = {"last_snap_t": 0, "ticks": 0}

    def hook(label: str, pc: int, t: int, steps: int) -> None:
        cursor["ticks"] = t
        fp = engine.fingerprint(label, pc, t)
        if fp in ambiguous:
            pass
        elif fp in fp_index:
            # Two distinct golden ticks share a fingerprint (either a
            # genuinely revisited state or a 64-bit collision): matching
            # it could splice the wrong suffix length, so drop it.
            del fp_index[fp]
            ambiguous.add(fp)
        else:
            fp_index[fp] = (t, steps)
        if interval is not None and t - cursor["last_snap_t"] >= interval:
            snapshots.append(
                machine.snapshot(label, pc, t, steps, prev_cells=prev_cells)
            )
            snap_times.append(t)
            prev_cells.clear()
            prev_cells.update(machine.mem.cells)
            cursor["last_snap_t"] = t

    machine._on_tick = hook
    stats = machine.run()
    machine._on_tick = None
    if golden_image is not None and machine.mem.data_image() != golden_image:
        raise SnapshotError(
            "fault-free resilient run diverged from the interpreter "
            "reference image; refusing to build an acceleration record"
        )
    # Every loop iteration either commits a tick (including the final
    # RET), executes a boundary, or takes a recovery — and a fault-free
    # run never recovers — so the exact step total is:
    total_steps = stats.committed + stats.regions
    return GoldenRecord(
        interval=interval,
        max_steps=max_steps,
        total_ticks=cursor["ticks"],
        total_steps=total_steps,
        fp_index=fp_index,
        snap_times=snap_times,
        snapshots=snapshots,
    )


def prepare_accelerated_run(
    machine: ResilientMachine,
    record: GoldenRecord,
    injection_time: int,
    base_memory: Memory,
) -> None:
    """Fast-forward ``machine`` to just before ``injection_time`` and arm
    the convergence checker.

    Must be called *before* ``arm_injection`` (restore overwrites the
    machine's injection field) and before ``run``.
    """
    index = record.snapshot_index_before(injection_time)
    if index is not None:
        snap = record.snapshots[index]
        machine.restore(snap, cells=record.cells_at(index, base_memory.cells))
    if machine._mem_fp is None:
        machine._mem_fp = memory_fingerprint(machine.mem.cells)
    engine = _FingerprintEngine(machine)
    machine._on_tick = _ConvergenceChecker(machine, record.fp_index, engine)
