"""Fault-injection campaigns: protocol-variant sweeps and the parallel,
resumable :class:`CampaignRunner`.

Two layers live here:

* the light-weight :func:`run_protocol_campaigns` sweep (same register
  faults under turnstile / warfree / turnpike / unsafe), kept for tests
  and the example script;
* the :class:`CampaignRunner` verification engine — mixed-target
  campaigns sharded across ``multiprocessing`` workers with
  deterministic per-injection seeds, JSON manifest checkpointing after
  every shard, resume-from-manifest, and differential cross-variant
  reporting (the same physical fault diffed per protocol outcome).

Determinism contract: every injection is derived from ``(seed, index)``
alone (see :func:`repro.faults.injector.injection_for_index`), shards
partition the index space statically, and aggregates are built from
records sorted by index — so a campaign killed after any number of
shards and resumed later produces **byte-identical** aggregate JSON to
an uninterrupted run.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.compiler.pipeline import CompiledProgram
from repro.faults.injector import (
    LEGACY_KINDS,
    CampaignResult,
    FaultOutcomeKind,
    injection_for_index,
    injection_to_dict,
    outcome_from_dict,
    outcome_to_dict,
    random_register_injections,
    run_campaign,
    run_with_injection,
)
from repro.faults.sampling import SamplingOptions, estimate_avf
from repro.faults.snapshot import (
    DEFAULT_SNAPSHOT_INTERVAL,
    GoldenRecord,
    record_golden_run,
)
from repro.isa.registers import Reg
from repro.runtime.interpreter import execute
from repro.runtime.machine import Injection, InjectionTarget, ResilienceConfig
from repro.runtime.memory import Memory


def _horizon(compiled: CompiledProgram, memory: Memory) -> int:
    """Commit-tick span of a fault-free run (injection times sample this)."""
    result = execute(compiled.program, memory.copy(), collect_trace=True)
    assert result.trace is not None
    boundaries = sum(1 for e in result.trace if e[0] == 7)
    return max(2, len(result.trace) - boundaries - 1)


@dataclass
class ProtocolCampaigns:
    """Campaign results across the protocol variants for one program."""

    turnstile: CampaignResult
    warfree: CampaignResult
    turnpike: CampaignResult
    unsafe: CampaignResult


def turnstile_machine_config(wcdl: int = 10) -> ResilienceConfig:
    return ResilienceConfig(
        wcdl=wcdl, clq_enabled=False, coloring_enabled=False
    )


def warfree_machine_config(wcdl: int = 10, clq_kind: str = "compact") -> ResilienceConfig:
    return ResilienceConfig(
        wcdl=wcdl, clq_enabled=True, clq_kind=clq_kind, coloring_enabled=False
    )


def turnpike_machine_config(wcdl: int = 10, clq_kind: str = "compact") -> ResilienceConfig:
    return ResilienceConfig(
        wcdl=wcdl, clq_enabled=True, clq_kind=clq_kind, coloring_enabled=True
    )


def unsafe_machine_config(wcdl: int = 10) -> ResilienceConfig:
    """Figure 16: fast-release checkpoints with NO coloring. Must fail."""
    return ResilienceConfig(
        wcdl=wcdl,
        clq_enabled=True,
        coloring_enabled=False,
        unsafe_checkpoint_release=True,
    )


#: The four protocol variants a differential campaign compares.
VARIANT_CONFIGS: dict[str, Callable[[int], ResilienceConfig]] = {
    "turnstile": turnstile_machine_config,
    "warfree": warfree_machine_config,
    "turnpike": turnpike_machine_config,
    "unsafe": unsafe_machine_config,
}

DEFAULT_VARIANTS = tuple(VARIANT_CONFIGS)


def _variant_config(spec: "CampaignSpec", variant: str) -> ResilienceConfig:
    """Variant hardware config with the spec's ECC mode applied."""
    config = VARIANT_CONFIGS[variant](spec.wcdl)
    if spec.ecc is not None:
        config.ecc_code = spec.ecc
    return config


def run_protocol_campaigns(
    compiled: CompiledProgram,
    memory: Memory,
    wcdl: int = 10,
    count: int = 40,
    seed: int = 1234,
) -> ProtocolCampaigns:
    """Inject the same faults under every protocol variant."""
    horizon = _horizon(compiled, memory)
    injections = random_register_injections(
        compiled, wcdl=wcdl, count=count, seed=seed, horizon=horizon
    )
    return ProtocolCampaigns(
        turnstile=run_campaign(
            compiled, turnstile_machine_config(wcdl), memory, injections
        ),
        warfree=run_campaign(
            compiled, warfree_machine_config(wcdl), memory, injections
        ),
        turnpike=run_campaign(
            compiled, turnpike_machine_config(wcdl), memory, injections
        ),
        unsafe=run_campaign(
            compiled, unsafe_machine_config(wcdl), memory, injections
        ),
    )


# -- differential campaign engine ------------------------------------------


DEFAULT_TARGET_NAMES = ("register", "store_buffer", "clq", "coloring")


@dataclass(frozen=True)
class CampaignSpec:
    """Everything a worker needs to reproduce its share of a campaign."""

    uid: str
    wcdl: int = 10
    count: int = 40
    seed: int = 1234
    targets: tuple[str, ...] = DEFAULT_TARGET_NAMES
    variants: tuple[str, ...] = DEFAULT_VARIANTS
    shard_size: int = 8
    max_steps: int = 4_000_000
    # Real-code ECC decode (repro.ecc code name) and upset-pattern
    # shape for the injections. Both default to None — the abstract
    # fail-safe and the classic single/double generator — and are
    # omitted from to_dict() so pre-ECC campaign aggregates and
    # manifests stay byte-identical.
    ecc: str | None = None
    upset: str | None = None

    def __post_init__(self) -> None:
        if not self.targets:
            raise ValueError("campaign needs at least one target structure")
        if not self.variants:
            raise ValueError("campaign needs at least one protocol variant")
        for name in self.targets:
            InjectionTarget(name)  # raises ValueError on unknown targets
        for name in self.variants:
            if name not in VARIANT_CONFIGS:
                raise ValueError(f"unknown protocol variant {name!r}")
        if self.count < 1:
            raise ValueError("campaign needs at least one injection")
        if self.shard_size < 1:
            raise ValueError("shard size must be >= 1")
        if self.ecc is not None:
            from repro.ecc.codes import make_code

            make_code(self.ecc, 32)  # raises ValueError on unknown codes
        if self.upset is not None:
            from repro.ecc.faultmodel import pattern

            pattern(self.upset)  # raises ValueError on unknown patterns

    @property
    def target_kinds(self) -> tuple[InjectionTarget, ...]:
        return tuple(InjectionTarget(name) for name in self.targets)

    def shards(self) -> list[list[int]]:
        """Static partition of the injection index space."""
        indices = list(range(self.count))
        return [
            indices[i : i + self.shard_size]
            for i in range(0, self.count, self.shard_size)
        ]

    def to_dict(self) -> dict:
        data = {
            "uid": self.uid,
            "wcdl": self.wcdl,
            "count": self.count,
            "seed": self.seed,
            "targets": list(self.targets),
            "variants": list(self.variants),
            "shard_size": self.shard_size,
            "max_steps": self.max_steps,
        }
        # Only ECC-mode campaigns carry the extra keys: the spec dict is
        # embedded in aggregates and manifests, whose byte-identity for
        # ECC-off campaigns is a compatibility guarantee.
        if self.ecc is not None:
            data["ecc"] = self.ecc
        if self.upset is not None:
            data["upset"] = self.upset
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        return cls(
            uid=data["uid"],
            wcdl=data["wcdl"],
            count=data["count"],
            seed=data["seed"],
            targets=tuple(data["targets"]),
            variants=tuple(data["variants"]),
            shard_size=data["shard_size"],
            max_steps=data["max_steps"],
            ecc=data.get("ecc"),
            upset=data.get("upset"),
        )


@dataclass(frozen=True)
class AccelOptions:
    """Snapshot-acceleration settings for a campaign.

    Deliberately **not** part of :class:`CampaignSpec`: acceleration is
    observationally invisible (the aggregate JSON — which embeds the
    spec — is byte-identical either way), so a campaign may be resumed
    with different acceleration settings than it was started with.

    ``snapshot_interval <= 0`` records fingerprints only (convergence
    early-exit without fast-forward), the degenerate configuration that
    exercises the legacy from-scratch execution path.
    """

    enabled: bool = True
    snapshot_interval: int = DEFAULT_SNAPSHOT_INTERVAL

    def to_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "snapshot_interval": self.snapshot_interval,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AccelOptions":
        return cls(
            enabled=data["enabled"],
            snapshot_interval=data["snapshot_interval"],
        )


# Per-worker-process cache: compiling the workload once per process
# instead of once per shard. Keyed by uid; safe because workers are
# single-threaded and every entry is deterministic.
_WORKER_CACHE: dict[str, tuple] = {}

# Per-worker-process golden-record cache, keyed by
# (uid, variant, wcdl, snapshot_interval, max_steps).
_GOLDEN_CACHE: dict[tuple, GoldenRecord] = {}


def _campaign_context(uid: str):
    cached = _WORKER_CACHE.get(uid)
    if cached is None:
        from repro.compiler.config import turnpike_config
        from repro.compiler.pipeline import compile_program
        from repro.faults.injector import golden_memory
        from repro.workloads.suites import load_workload

        workload = load_workload(uid)
        compiled = compile_program(workload.program, turnpike_config())
        memory = workload.fresh_memory()
        golden = golden_memory(compiled, memory)
        horizon = _horizon(compiled, memory)
        cached = (compiled, memory, golden, horizon)
        _WORKER_CACHE[uid] = cached
    return cached


def _golden_record(
    spec: CampaignSpec, variant: str, interval: int
) -> GoldenRecord | None:
    """The (memoized) fault-free acceleration record for one variant.

    Resolution order: per-process memo, then the persistent artifact
    cache (keyed by source digest + resilience config + interval + step
    budget, see :meth:`ArtifactCache.golden_key`), then a fresh
    fault-free run — stored back to disk so every later worker, resume,
    or re-invocation starts warm.

    Returns None when the campaign's step budget is too small for even
    the fault-free run to finish: acceleration silently degrades to the
    from-scratch path (whose injected runs will time out identically).
    """
    memo_key = (
        spec.uid, variant, spec.wcdl, interval, spec.max_steps, spec.ecc
    )
    if memo_key in _GOLDEN_CACHE:
        return _GOLDEN_CACHE[memo_key]

    from repro.harness.artifacts import ArtifactCache
    from repro.runtime.machine import WatchdogTimeout

    compiled, memory, golden, _horizon_ = _campaign_context(spec.uid)
    config = _variant_config(spec, variant)
    cache = ArtifactCache.default()
    disk_key = (
        ArtifactCache.golden_key(spec.uid, config, interval, spec.max_steps)
        if cache is not None
        else None
    )
    record = cache.load_golden(disk_key) if cache is not None else None
    if record is not None and (
        record.interval != (interval if interval > 0 else None)
        or record.max_steps != spec.max_steps
    ):
        record = None  # stale/foreign artifact: rebuild
    if record is None:
        try:
            record = record_golden_run(
                compiled,
                config,
                memory,
                interval=interval,
                max_steps=spec.max_steps,
                golden_image=golden,
            )
        except WatchdogTimeout:
            record = None
        else:
            if cache is not None:
                cache.store_golden(disk_key, record)
    _GOLDEN_CACHE[memo_key] = record
    return record


def _run_shard(payload: dict) -> tuple[int, list[dict]]:
    """Worker entry point: run one shard of injections, all variants."""
    spec = CampaignSpec.from_dict(payload["spec"])
    shard_id = payload["shard_id"]
    accel = AccelOptions.from_dict(payload["accel"])
    compiled, memory, golden, horizon = _campaign_context(spec.uid)
    targets = spec.target_kinds
    records = []
    for index in payload["indices"]:
        injection = injection_for_index(
            compiled, spec.wcdl, spec.seed, index, horizon, targets,
            upset=spec.upset,
        )
        outcomes = {}
        for variant in spec.variants:
            config = _variant_config(spec, variant)
            outcome = run_with_injection(
                compiled,
                config,
                memory,
                injection,
                golden,
                max_steps=spec.max_steps,
                accel=(
                    _golden_record(spec, variant, accel.snapshot_interval)
                    if accel.enabled
                    else None
                ),
            )
            outcomes[variant] = outcome_to_dict(outcome)
        records.append(
            {
                "index": index,
                "injection": injection_to_dict(injection),
                "outcomes": outcomes,
            }
        )
    return shard_id, records


@dataclass
class CampaignReport:
    """Differential cross-variant view over a finished campaign.

    ``avf`` is populated only by importance-sampled runs (see
    :mod:`repro.faults.sampling`); enumerated campaigns leave it None so
    their aggregate JSON stays byte-identical to earlier releases.
    """

    spec: CampaignSpec
    records: list[dict] = field(default_factory=list)
    avf: dict | None = None

    def variant_result(self, variant: str) -> CampaignResult:
        """Reconstruct one variant's outcomes as a :class:`CampaignResult`."""
        result = CampaignResult()
        for record in self.records:
            result.outcomes.append(outcome_from_dict(record["outcomes"][variant]))
        return result

    def _kinds(self) -> tuple[FaultOutcomeKind, ...]:
        """Zero-filled taxonomy keys: legacy only unless ECC mode ran.

        Pre-ECC aggregates must stay byte-identical, so the
        ``miscorrected`` key appears only when the spec could have
        produced it.
        """
        return tuple(FaultOutcomeKind) if self.spec.ecc else LEGACY_KINDS

    def per_variant(self) -> dict[str, dict[str, int]]:
        """variant -> outcome-kind histogram."""
        return {
            variant: self.variant_result(variant).by_kind(self._kinds())
            for variant in self.spec.variants
        }

    def per_target(self) -> dict[str, dict[str, dict[str, int]]]:
        """Per-structure vulnerability: target -> variant -> kind counts."""
        table: dict[str, dict[str, dict[str, int]]] = {}
        for record in self.records:
            target = record["injection"]["target"]
            per_variant = table.setdefault(
                target,
                {
                    variant: {kind.value: 0 for kind in self._kinds()}
                    for variant in self.spec.variants
                },
            )
            for variant in self.spec.variants:
                kind = record["outcomes"][variant]["kind"]
                per_variant[variant][kind] += 1
        return table

    def divergences(self) -> list[dict]:
        """Injections whose outcome kind differs across variants — the
        differential signal: what one protocol contains and another
        does not."""
        out = []
        for record in self.records:
            kinds = {
                variant: record["outcomes"][variant]["kind"]
                for variant in self.spec.variants
            }
            if len(set(kinds.values())) > 1:
                out.append(
                    {
                        "index": record["index"],
                        "injection": record["injection"],
                        "kinds": kinds,
                    }
                )
        return out

    def aggregate(self) -> dict:
        """Deterministic summary (sorted, no timestamps): the object the
        resume guarantee is stated over. The ``avf`` key appears only
        for sampled campaigns, keeping enumerated aggregates
        byte-identical."""
        agg = {
            "spec": self.spec.to_dict(),
            "per_variant": self.per_variant(),
            "per_target": self.per_target(),
            "divergent_indices": [d["index"] for d in self.divergences()],
        }
        if self.avf is not None:
            agg["avf"] = self.avf
        return agg

    def to_json(self) -> str:
        return json.dumps(self.aggregate(), indent=2, sort_keys=True)


class CampaignInterrupted(RuntimeError):
    """Raised by progress callbacks to abort a campaign mid-flight
    (primarily for tests exercising the resume path)."""


class CampaignRunner:
    """Shard a differential campaign over worker processes, checkpointing
    partial results to a JSON manifest after every shard."""

    def __init__(
        self,
        spec: CampaignSpec,
        manifest_path: str | Path | None = None,
        accel: AccelOptions | None = None,
        sampling: SamplingOptions | None = None,
    ) -> None:
        self.spec = spec
        self.manifest_path = Path(manifest_path) if manifest_path else None
        self.accel = accel if accel is not None else AccelOptions()
        self.sampling = sampling if sampling is not None else SamplingOptions()

    # -- manifest ----------------------------------------------------------

    def _load_manifest(self, resume: bool) -> dict:
        if self.manifest_path is None or not self.manifest_path.exists():
            return {"spec": self.spec.to_dict(), "shards": {}}
        if not resume:
            return {"spec": self.spec.to_dict(), "shards": {}}
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except ValueError:
            # A torn manifest (crash mid-write) is a fresh start, not an
            # error: every shard recomputes deterministically.
            return {"spec": self.spec.to_dict(), "shards": {}}
        if manifest.get("spec") != self.spec.to_dict():
            raise ValueError(
                f"manifest {self.manifest_path} was written by a different "
                "campaign spec; refusing to resume"
            )
        return manifest

    def _write_manifest(self, manifest: dict) -> None:
        if self.manifest_path is None:
            return
        # Unique temp name: two processes checkpointing the same
        # manifest (e.g. an orphaned worker racing a restarted service
        # that re-adopted the campaign) must never interleave writes
        # inside one temp file; with distinct temps the atomic replace
        # makes the last full checkpoint win.
        import tempfile

        fd, tmp = tempfile.mkstemp(
            dir=self.manifest_path.parent, prefix=".manifest-"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(json.dumps(manifest, indent=2, sort_keys=True))
            os.replace(tmp, self.manifest_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- execution ---------------------------------------------------------

    def run(
        self,
        workers: int = 1,
        resume: bool = False,
        progress: Callable[[int, int], None] | None = None,
        only_shards: "set[int] | None" = None,
    ) -> CampaignReport:
        """Run (or finish) the campaign and return its report.

        ``workers > 1`` fans shards out over ``multiprocessing`` workers;
        results are identical to a serial run because every injection is
        derived from ``(seed, index)`` and aggregation sorts by index.
        ``progress(done, total)`` is invoked after every shard.

        ``only_shards`` restricts execution to a subset of shard ids —
        the *lease* primitive of the distributed fabric: a worker node
        computes its leased shards into a manifest, and whoever merges
        the manifests (or resumes them) gets byte-identical aggregates
        because shard contents depend only on ``(seed, index)``. The
        returned report covers whatever the manifest then holds, which
        for a lease run is deliberately partial.

        With sampling enabled the runner REPLACES index enumeration with
        the stratified adaptive estimator: no per-index records, no
        manifest, no resume — the report carries the AVF block instead.
        """
        if self.sampling.enabled:
            if resume or only_shards is not None:
                raise ValueError(
                    "sampled campaigns are adaptive: resume and shard "
                    "leases only apply to enumerated index campaigns"
                )
            return self._run_sampled(progress)
        manifest = self._load_manifest(resume)
        shards = self.spec.shards()
        selected = (
            set(range(len(shards)))
            if only_shards is None
            else {sid for sid in only_shards if 0 <= sid < len(shards)}
        )
        pending = [
            {
                "spec": self.spec.to_dict(),
                "shard_id": sid,
                "indices": indices,
                "accel": self.accel.to_dict(),
            }
            for sid, indices in enumerate(shards)
            if sid in selected and str(sid) not in manifest["shards"]
        ]
        done = len(selected) - len(pending)

        if pending and self.accel.enabled:
            # Pre-warm the compiled context and every variant's golden
            # record in the parent before forking: workers then share
            # them copy-on-write instead of racing to rebuild (the
            # artifact cache would still dedupe the disk work, but the
            # in-memory build is the expensive part).
            for variant in self.spec.variants:
                _golden_record(
                    self.spec, variant, self.accel.snapshot_interval
                )

        def record(shard_id: int, records: list[dict]) -> None:
            nonlocal done
            manifest["shards"][str(shard_id)] = records
            self._write_manifest(manifest)
            done += 1
            if progress is not None:
                progress(done, len(selected))

        if pending:
            if workers > 1:
                import multiprocessing as mp

                ctx = mp.get_context("fork")
                with ctx.Pool(processes=min(workers, len(pending))) as pool:
                    for shard_id, records in pool.imap_unordered(
                        _run_shard, pending
                    ):
                        record(shard_id, records)
            else:
                for payload in pending:
                    shard_id, records = _run_shard(payload)
                    record(shard_id, records)

        all_records = [
            rec
            for sid in sorted(manifest["shards"], key=int)
            for rec in manifest["shards"][sid]
        ]
        all_records.sort(key=lambda rec: rec["index"])
        return CampaignReport(spec=self.spec, records=all_records)

    # -- importance-sampled execution --------------------------------------

    def _run_sampled(
        self, progress: Callable[[int, int], None] | None = None
    ) -> CampaignReport:
        """Stratified adaptive AVF estimation over the vulnerability map.

        Strata come from the static classification in
        :mod:`repro.verify.vuln`; masked strata get token cross-check
        injections (a corrupting hit raises
        :class:`~repro.faults.sampling.MaskedMisclassification`), the
        rest are sampled until their weighted Wilson interval meets the
        configured width. Deterministic: every draw derives from
        ``(seed, variant, target, stratum, index)``.
        """
        from repro.verify.vuln import vulnerability_map

        spec = self.spec
        vmap = vulnerability_map(
            spec.uid,
            wcdl=spec.wcdl,
            variants=spec.variants,
            max_steps=spec.max_steps,
        )
        compiled, memory, golden, _horizon_ = _campaign_context(spec.uid)
        per_variant: dict[str, dict] = {}
        total_injections = 0
        for done, variant in enumerate(spec.variants):
            config = _variant_config(spec, variant)
            accel_record = (
                _golden_record(spec, variant, self.accel.snapshot_interval)
                if self.accel.enabled
                else None
            )

            def run_cell(
                target: str,
                reg: int | None,
                bit: int,
                time: int,
                delay: int,
                _config: ResilienceConfig = config,
                _accel: GoldenRecord | None = accel_record,
            ) -> bool:
                injection = Injection(
                    time=time,
                    target=InjectionTarget(target),
                    reg=Reg.phys(reg) if reg is not None else None,
                    bit=bit,
                    detection_delay=delay,
                )
                outcome = run_with_injection(
                    compiled,
                    _config,
                    memory,
                    injection,
                    golden,
                    max_steps=spec.max_steps,
                    accel=_accel,
                )
                return outcome.correct

            estimates = estimate_avf(
                vmap,
                variant,
                spec.targets,
                options=self.sampling,
                seed=spec.seed,
                wcdl=spec.wcdl,
                run_cell=run_cell,
            )
            per_variant[variant] = estimates
            total_injections += sum(
                int(entry["injections"])  # type: ignore[call-overload]
                for entry in estimates.values()
            )
            if progress is not None:
                progress(done + 1, len(spec.variants))
        avf = {
            "options": self.sampling.to_dict(),
            "per_variant": per_variant,
            "total_injections": total_injections,
        }
        return CampaignReport(spec=spec, records=[], avf=avf)


def execute_campaign(
    spec: CampaignSpec,
    manifest_path: str | Path | None = None,
    accel: AccelOptions | None = None,
    workers: int = 1,
    resume: bool = False,
    export_path: str | Path | None = None,
    progress: Callable[[int, int], None] | None = None,
    only_shards: "set[int] | None" = None,
    sampling: SamplingOptions | None = None,
) -> tuple[CampaignReport, str]:
    """Run one differential campaign end-to-end; the single entry point
    shared by the ``repro inject`` CLI and the batch service.

    Returns ``(report, formatted_text)``. When ``export_path`` is set
    the deterministic aggregate JSON is written there (atomically, so a
    crash mid-write can never leave a half aggregate for a parity
    check to trip over).
    """
    runner = CampaignRunner(
        spec, manifest_path=manifest_path, accel=accel, sampling=sampling
    )
    report = runner.run(
        workers=workers, resume=resume, progress=progress,
        only_shards=only_shards,
    )
    if export_path is not None:
        from repro.harness.export import campaign_to_json

        export_path = Path(export_path)
        tmp = export_path.with_suffix(export_path.suffix + ".tmp")
        tmp.write_text(campaign_to_json(report))
        os.replace(tmp, export_path)
    return report, format_differential_report(report)


def _format_avf_section(report: CampaignReport) -> list[str]:
    """Render the sampled-AVF block of a report (empty when absent)."""
    if report.avf is None:
        return []
    options = report.avf.get("options", {})
    lines = [
        "  stratified AVF estimates "
        f"(ci_width={options.get('ci_width')}, "
        f"confidence={options.get('confidence')}):"
    ]
    per_variant = report.avf.get("per_variant", {})
    for variant in report.spec.variants:
        targets = per_variant.get(variant, {})
        lines.append(f"  {variant}:")
        for target in report.spec.targets:
            entry = targets.get(target)
            if entry is None:
                continue
            lines.append(
                f"    {target:<13} AVF {entry['avf']:.4f} "
                f"[{entry['ci_low']:.4f}, {entry['ci_high']:.4f}]  "
                f"{entry['injections']} injection(s) over "
                f"{entry['population']} cells"
            )
    lines.append(
        f"  {report.avf.get('total_injections', 0)} sampled injection(s) "
        "total"
    )
    return lines


def format_differential_report(report: CampaignReport) -> str:
    """Human-readable cross-variant table of a campaign report."""
    spec = report.spec
    if report.avf is not None:
        lines = [
            f"sampled campaign on {spec.uid} "
            f"(WCDL={spec.wcdl}, seed={spec.seed}, "
            f"targets={','.join(spec.targets)}):"
        ]
        lines.extend(_format_avf_section(report))
        return "\n".join(lines)
    kinds = [
        kind.value
        for kind in (tuple(FaultOutcomeKind) if spec.ecc else LEGACY_KINDS)
    ]
    lines = []
    lines.append(
        f"{spec.count} injections on {spec.uid} "
        f"(WCDL={spec.wcdl}, seed={spec.seed}, "
        f"targets={','.join(spec.targets)}):"
    )
    header = f"  {'variant':<10}" + "".join(f"{k:>14}" for k in kinds)
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for variant, hist in report.per_variant().items():
        lines.append(
            f"  {variant:<10}"
            + "".join(f"{hist[k]:>14}" for k in kinds)
        )
    per_target = report.per_target()
    if len(per_target) > 1:
        lines.append("")
        lines.append("  per-structure SDC / contained (by variant):")
        for target in sorted(per_target):
            cells = []
            for variant in spec.variants:
                hist = per_target[target][variant]
                contained = (
                    hist["masked"] + hist["recovered"] + hist["detected_halt"]
                )
                cells.append(f"{variant}={hist['sdc']}/{contained}")
            lines.append(f"    {target:<13} " + "  ".join(cells))
    divergent = report.divergences()
    lines.append("")
    lines.append(
        f"  {len(divergent)} injection(s) with divergent outcomes "
        "across variants"
    )
    return "\n".join(lines)
