"""Pre-packaged fault-injection campaigns over the protocol variants.

These drive :mod:`repro.faults.injector` across the three configurations
whose safety the paper argues for, plus the Figure 16 negative control.
Tests and the fault-injection example both consume this module.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.pipeline import CompiledProgram
from repro.faults.injector import (
    CampaignResult,
    random_register_injections,
    run_campaign,
)
from repro.runtime.interpreter import execute
from repro.runtime.machine import ResilienceConfig
from repro.runtime.memory import Memory


def _horizon(compiled: CompiledProgram, memory: Memory) -> int:
    """Commit-tick span of a fault-free run (injection times sample this)."""
    result = execute(compiled.program, memory.copy(), collect_trace=True)
    assert result.trace is not None
    boundaries = sum(1 for e in result.trace if e[0] == 7)
    return max(2, len(result.trace) - boundaries - 1)


@dataclass
class ProtocolCampaigns:
    """Campaign results across the protocol variants for one program."""

    turnstile: CampaignResult
    warfree: CampaignResult
    turnpike: CampaignResult
    unsafe: CampaignResult


def turnstile_machine_config(wcdl: int = 10) -> ResilienceConfig:
    return ResilienceConfig(
        wcdl=wcdl, clq_enabled=False, coloring_enabled=False
    )


def warfree_machine_config(wcdl: int = 10, clq_kind: str = "compact") -> ResilienceConfig:
    return ResilienceConfig(
        wcdl=wcdl, clq_enabled=True, clq_kind=clq_kind, coloring_enabled=False
    )


def turnpike_machine_config(wcdl: int = 10, clq_kind: str = "compact") -> ResilienceConfig:
    return ResilienceConfig(
        wcdl=wcdl, clq_enabled=True, clq_kind=clq_kind, coloring_enabled=True
    )


def unsafe_machine_config(wcdl: int = 10) -> ResilienceConfig:
    """Figure 16: fast-release checkpoints with NO coloring. Must fail."""
    return ResilienceConfig(
        wcdl=wcdl,
        clq_enabled=True,
        coloring_enabled=False,
        unsafe_checkpoint_release=True,
    )


def run_protocol_campaigns(
    compiled: CompiledProgram,
    memory: Memory,
    wcdl: int = 10,
    count: int = 40,
    seed: int = 1234,
) -> ProtocolCampaigns:
    """Inject the same faults under every protocol variant."""
    horizon = _horizon(compiled, memory)
    injections = random_register_injections(
        compiled, wcdl=wcdl, count=count, seed=seed, horizon=horizon
    )
    return ProtocolCampaigns(
        turnstile=run_campaign(
            compiled, turnstile_machine_config(wcdl), memory, injections
        ),
        warfree=run_campaign(
            compiled, warfree_machine_config(wcdl), memory, injections
        ),
        turnpike=run_campaign(
            compiled, turnpike_machine_config(wcdl), memory, injections
        ),
        unsafe=run_campaign(
            compiled, unsafe_machine_config(wcdl), memory, injections
        ),
    )
