"""Fault injection: single-event upsets, detection, recovery validation."""

from repro.faults.injector import (
    CampaignResult,
    InjectionOutcome,
    golden_memory,
    random_register_injections,
    run_campaign,
    run_with_injection,
)
from repro.faults.analysis import (
    RecoveryCost,
    RecoveryCostReport,
    measure_recovery_cost,
    recovery_cost_vs_wcdl,
)
from repro.faults.campaign import (
    ProtocolCampaigns,
    run_protocol_campaigns,
    turnpike_machine_config,
    turnstile_machine_config,
    unsafe_machine_config,
    warfree_machine_config,
)

__all__ = [
    "RecoveryCost",
    "RecoveryCostReport",
    "measure_recovery_cost",
    "recovery_cost_vs_wcdl",
    "CampaignResult",
    "InjectionOutcome",
    "golden_memory",
    "random_register_injections",
    "run_campaign",
    "run_with_injection",
    "ProtocolCampaigns",
    "run_protocol_campaigns",
    "turnpike_machine_config",
    "turnstile_machine_config",
    "unsafe_machine_config",
    "warfree_machine_config",
]
