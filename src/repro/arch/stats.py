"""Simulation statistics produced by the timing core."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimStats:
    """Cycle-level outcome of one timing run."""

    cycles: float = 0.0
    instructions: int = 0
    # Stall attribution (cycles lost, approximate but internally consistent).
    sb_stall_cycles: float = 0.0
    data_stall_cycles: float = 0.0
    branch_stall_cycles: float = 0.0
    # Store disposition counts (dynamic).
    stores_total: int = 0
    checkpoints_total: int = 0
    warfree_released: int = 0
    colored_released: int = 0
    quarantined: int = 0
    spill_stores: int = 0
    app_stores: int = 0
    # Region accounting.
    regions: int = 0
    forced_region_closures: int = 0
    # CLQ.
    clq_occupancy_avg: float = 0.0
    clq_occupancy_max: int = 0
    # Memory system.
    cache: dict[str, int] = field(default_factory=dict)
    branch_mispredictions: int = 0

    @property
    def ipc(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def dynamic_region_size(self) -> float:
        if not self.regions:
            return 0.0
        return self.instructions / self.regions

    @property
    def all_stores(self) -> int:
        return self.stores_total + self.checkpoints_total

    def merge(self, other: "SimStats") -> "SimStats":
        """Fold another shard's stats into this one, in place.

        Multiprocess campaigns time disjoint slices of work in separate
        processes; merging treats the shards as executing back-to-back:
        counters and cycle totals add, occupancy maxima take the max, and
        the CLQ occupancy average is weighted by each shard's region
        count (the boundary commits at which occupancy is sampled).
        Returns ``self`` for chaining.
        """
        my_regions, other_regions = self.regions, other.regions
        self.cycles += other.cycles
        self.instructions += other.instructions
        self.sb_stall_cycles += other.sb_stall_cycles
        self.data_stall_cycles += other.data_stall_cycles
        self.branch_stall_cycles += other.branch_stall_cycles
        self.stores_total += other.stores_total
        self.checkpoints_total += other.checkpoints_total
        self.warfree_released += other.warfree_released
        self.colored_released += other.colored_released
        self.quarantined += other.quarantined
        self.spill_stores += other.spill_stores
        self.app_stores += other.app_stores
        self.regions += other.regions
        self.forced_region_closures += other.forced_region_closures
        self.branch_mispredictions += other.branch_mispredictions
        weight = my_regions + other_regions
        if weight:
            self.clq_occupancy_avg = (
                self.clq_occupancy_avg * my_regions
                + other.clq_occupancy_avg * other_regions
            ) / weight
        self.clq_occupancy_max = max(
            self.clq_occupancy_max, other.clq_occupancy_max
        )
        for key, value in other.cache.items():
            self.cache[key] = self.cache.get(key, 0) + value
        return self

    def as_dict(self) -> dict[str, float]:
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": self.ipc,
            "sb_stall_cycles": self.sb_stall_cycles,
            "data_stall_cycles": self.data_stall_cycles,
            "branch_stall_cycles": self.branch_stall_cycles,
            "stores_total": self.stores_total,
            "checkpoints_total": self.checkpoints_total,
            "warfree_released": self.warfree_released,
            "colored_released": self.colored_released,
            "quarantined": self.quarantined,
            "regions": self.regions,
            "dynamic_region_size": self.dynamic_region_size,
            "clq_occupancy_avg": self.clq_occupancy_avg,
            "clq_occupancy_max": self.clq_occupancy_max,
        }


def merge_stats(shards: list[SimStats]) -> SimStats:
    """Combine per-shard stats into one aggregate (fresh object)."""
    if not shards:
        raise ValueError("merge_stats of empty list")
    total = SimStats()
    for shard in shards:
        total.merge(shard)
    return total


def slowdown(resilient: SimStats, baseline: SimStats) -> float:
    """Normalized execution time (the paper's y-axis): resilient/baseline."""
    if baseline.cycles <= 0:
        raise ValueError("baseline has no cycles")
    return resilient.cycles / baseline.cycles
