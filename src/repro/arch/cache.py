"""Set-associative cache hierarchy (data side) with LRU replacement.

The timing core asks one question per memory access: how many cycles does
this address cost? The hierarchy simulates L1D -> L2 -> memory with true
LRU inside each set, which is what differentiates streaming workloads
(lbm, bwaves) from pointer chasers (mcf) in the figures.
"""

from __future__ import annotations

from repro.arch.config import CacheConfig


class Cache:
    """One level of set-associative cache with LRU replacement."""

    def __init__(self, config: CacheConfig):
        self.config = config
        if config.size_bytes % (config.ways * config.line_bytes) != 0:
            raise ValueError("cache size must divide into ways x line size")
        self.num_sets = config.size_bytes // (config.ways * config.line_bytes)
        self._line_shift = config.line_bytes.bit_length() - 1
        if (1 << self._line_shift) != config.line_bytes:
            raise ValueError("line size must be a power of two")
        # Per-set list of tags in LRU order (front = most recent).
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Access a line; returns True on hit. Misses allocate (fetch)."""
        line = addr >> self._line_shift
        index = line % self.num_sets
        tag = line // self.num_sets
        tags = self._sets[index]
        if tag in tags:
            if tags[0] != tag:
                tags.remove(tag)
                tags.insert(0, tag)
            self.hits += 1
            return True
        self.misses += 1
        tags.insert(0, tag)
        if len(tags) > self.config.ways:
            tags.pop()
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


class MemoryHierarchy:
    """L1D + unified L2 + main memory, returning access latencies."""

    def __init__(self, l1: CacheConfig, l2: CacheConfig, memory_latency: int):
        self.l1 = Cache(l1)
        self.l2 = Cache(l2)
        self.memory_latency = memory_latency

    def load_latency(self, addr: int) -> int:
        if self.l1.access(addr):
            return self.l1.config.hit_latency
        if self.l2.access(addr):
            return self.l1.config.hit_latency + self.l2.config.hit_latency
        return (
            self.l1.config.hit_latency
            + self.l2.config.hit_latency
            + self.memory_latency
        )

    def store_touch(self, addr: int) -> None:
        """Stores allocate on their way out; latency is absorbed by the SB."""
        if not self.l1.access(addr):
            self.l2.access(addr)

    def stats(self) -> dict[str, int]:
        return {
            "l1_hits": self.l1.hits,
            "l1_misses": self.l1.misses,
            "l2_hits": self.l2.hits,
            "l2_misses": self.l2.misses,
        }
