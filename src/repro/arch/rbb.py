"""Region boundary buffer (RBB): region-instance lifecycle tracking.

Every boundary commit closes the current *region instance* and opens the
next one. An instance is "unverified" from its end until WCDL has elapsed
with no sensor detection; the RBB tracks the queue of unverified
instances, their verification deadlines, and the recovery PC (the
boundary that opened the earliest unverified instance — where execution
restarts on an error).

Both the functional resilient machine (time = committed instructions) and
the timing core (time = cycles) drive this structure with their own
clocks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass(slots=True)
class RegionInstance:
    """One dynamic execution of a static region."""

    instance: int  # globally unique, monotonically increasing
    region_id: int  # static region (indexes the recovery map)
    start_time: float
    end_time: float | None = None

    def verify_time(self, wcdl: float) -> float:
        if self.end_time is None:
            return float("inf")
        return self.end_time + wcdl


@dataclass(slots=True)
class RBBStats:
    instances_opened: int = 0
    instances_verified: int = 0
    max_unverified: int = 0


class RegionBoundaryBuffer:
    """Tracks the open region instance plus the unverified queue."""

    def __init__(self, wcdl: float) -> None:
        self.wcdl = wcdl
        self.current: RegionInstance | None = None
        self.unverified: deque[RegionInstance] = deque()
        self.stats = RBBStats()
        self._next_instance = 0

    def open_region(self, region_id: int, now: float) -> RegionInstance:
        """Boundary commit: close the current instance, open the next."""
        if self.current is not None:
            self.current.end_time = now
            self.unverified.append(self.current)
            if len(self.unverified) > self.stats.max_unverified:
                self.stats.max_unverified = len(self.unverified)
        inst = RegionInstance(
            instance=self._next_instance, region_id=region_id, start_time=now
        )
        self._next_instance += 1
        self.current = inst
        self.stats.instances_opened += 1
        return inst

    def close_final(self, now: float) -> None:
        """Program end: close the open instance so it can verify."""
        if self.current is not None:
            self.current.end_time = now
            self.unverified.append(self.current)
            self.current = None

    def due_verifications(self, now: float, before: float = float("inf")):
        """Pop instances whose verification deadline has passed.

        Only instances with ``verify_time <= now`` *and* strictly earlier
        than ``before`` (a pending detection timestamp) are verified — a
        detection at or before the deadline vetoes verification.
        """
        out: list[RegionInstance] = []
        while self.unverified:
            head = self.unverified[0]
            deadline = head.verify_time(self.wcdl)
            if deadline <= now and deadline < before:
                out.append(self.unverified.popleft())
                self.stats.instances_verified += 1
            else:
                break
        return out

    def all_prior_verified(self) -> bool:
        """True when only the open instance is in flight (fast-release gate)."""
        return not self.unverified

    def earliest_unverified(self) -> RegionInstance | None:
        """The restart target on error: earliest unverified, else current."""
        if self.unverified:
            return self.unverified[0]
        return self.current

    def discard_unverified(self) -> list[RegionInstance]:
        """Recovery: drop every unverified instance (incl. the open one)."""
        dropped = list(self.unverified)
        if self.current is not None:
            dropped.append(self.current)
        self.unverified.clear()
        self.current = None
        return dropped

    # -- snapshot / restore (machine checkpointing) -------------------------

    def active_instances(self) -> list[RegionInstance]:
        """In-flight instances oldest-first: unverified queue, then open."""
        active = list(self.unverified)
        if self.current is not None:
            active.append(self.current)
        return active

    def snapshot_state(self) -> dict:
        def enc(inst: RegionInstance) -> tuple:
            return (inst.instance, inst.region_id, inst.start_time,
                    inst.end_time)

        return {
            "current": enc(self.current) if self.current is not None else None,
            "unverified": [enc(inst) for inst in self.unverified],
            "next_instance": self._next_instance,
            "stats": (self.stats.instances_opened,
                      self.stats.instances_verified,
                      self.stats.max_unverified),
        }

    def restore_state(self, state: dict) -> None:
        def dec(fields: tuple) -> RegionInstance:
            return RegionInstance(instance=fields[0], region_id=fields[1],
                                  start_time=fields[2], end_time=fields[3])

        cur = state["current"]
        self.current = dec(cur) if cur is not None else None
        self.unverified = deque(dec(f) for f in state["unverified"])
        self._next_instance = state["next_instance"]
        opened, verified, max_unv = state["stats"]
        self.stats = RBBStats(instances_opened=opened,
                              instances_verified=verified,
                              max_unverified=max_unv)
