"""Trace-driven timing model of the 2-issue in-order core.

Instead of ticking cycle by cycle, the model computes each committed
instruction's issue cycle analytically from (a) program order and issue
width, (b) operand readiness (in-order cores stall in decode until
sources are ready), (c) the single data-cache port, and (d) store-buffer
structural hazards — the effect at the heart of the paper. This keeps
full-suite sweeps tractable in pure Python while preserving every hazard
the figures depend on.

Resilience timing: region instances open at BOUNDARY commits; a closed
instance's quarantined stores receive release times ``end + WCDL`` (then
drain one per cycle through the L1 write port); the CLQ, coloring maps
and the prior-region-verified gate decide which stores bypass the buffer
entirely.
"""

from __future__ import annotations

from repro.arch.branch import BimodalPredictor
from repro.arch.cache import MemoryHierarchy
from repro.arch.clq import BaseCLQ, make_clq
from repro.arch.coloring import QUARANTINE, ColorMaps
from repro.arch.config import CoreConfig, ResilienceHardwareConfig
from repro.arch.rbb import RegionBoundaryBuffer
from repro.arch.stats import SimStats
from repro.arch.store_buffer import TimingStoreBuffer
from repro.runtime import trace as tr


class InOrderCore:
    """One simulated core; call :meth:`run` once per trace."""

    def __init__(
        self,
        core: CoreConfig,
        resilience: ResilienceHardwareConfig,
    ):
        self.core = core
        self.res = resilience
        self.hierarchy = MemoryHierarchy(core.l1d, core.l2, core.memory_latency)
        self.predictor = BimodalPredictor()
        sb_capacity = resilience.sb_size if resilience.enabled else 8
        self.sb = TimingStoreBuffer(sb_capacity)
        self.rbb = RegionBoundaryBuffer(wcdl=float(resilience.wcdl))
        self.clq: BaseCLQ | None = None
        if resilience.enabled and resilience.clq_enabled:
            self.clq = make_clq(
                resilience.clq_kind,
                resilience.clq_size,
                recycle=resilience.clq_recycling,
            )
        self.coloring = ColorMaps(num_colors=resilience.num_colors)

    def run(self, trace: list[tuple]) -> SimStats:
        stats = SimStats()
        core = self.core
        res = self.res
        resilient = res.enabled
        clq = self.clq
        coloring = self.coloring if (resilient and res.coloring_enabled) else None
        rbb = self.rbb
        sb = self.sb
        hierarchy = self.hierarchy
        predictor = self.predictor
        wcdl = float(res.wcdl)

        width = core.issue_width
        alu_lat = core.alu_latency
        mul_lat = core.mul_latency
        div_lat = core.div_latency
        mispredict = core.mispredict_penalty
        commit_lat = core.store_commit_latency
        baseline_drain = core.baseline_drain_latency

        reg_ready = [0.0] * 2048
        cycle = 0.0  # issue cycle of the previous instruction
        issued_here = 0  # instructions issued at `cycle`
        last_mem_cycle = -1.0
        seq_floor = 0.0  # earliest fetch after a mispredicted branch
        final = 0.0

        K_LD, K_ST, K_CKPT, K_BR, K_BOUNDARY, K_RET = (
            tr.K_LD,
            tr.K_ST,
            tr.K_CKPT,
            tr.K_BR,
            tr.K_BOUNDARY,
            tr.K_RET,
        )
        K_ALU, K_MUL, K_DIV = tr.K_ALU, tr.K_MUL, tr.K_DIV

        def issue_slot(candidate: float) -> float:
            """Account for 2-wide in-order issue; returns the issue cycle."""
            nonlocal cycle, issued_here
            t = candidate if candidate > cycle else cycle
            if t == cycle:
                if issued_here >= width:
                    t += 1.0
                    issued_here = 1
                else:
                    issued_here += 1
            else:
                issued_here = 1
            cycle = t
            return t

        def sync_regions(now: float) -> None:
            for inst in rbb.due_verifications(now):
                if coloring is not None:
                    coloring.verify(inst.instance)
                if clq is not None:
                    clq.retire_region(inst.instance)

        for entry in trace:
            kind = entry[0]

            if kind == K_BOUNDARY:
                if resilient:
                    closing = rbb.current
                    now = cycle
                    if closing is not None:
                        sb.set_instance_release(closing.instance, now + wcdl)
                    new_inst = rbb.open_region(entry[5], now)
                    stats.regions += 1
                    if clq is not None:
                        sync_regions(now)
                        clq.begin_region(
                            new_inst.instance,
                            prior_verified=rbb.all_prior_verified(),
                        )
                continue

            stats.instructions += 1
            seq = seq_floor
            src1 = entry[2]
            src2 = entry[3]
            ready = 0.0
            if src1 >= 0:
                ready = reg_ready[src1]
            if src2 >= 0 and reg_ready[src2] > ready:
                ready = reg_ready[src2]

            base_candidate = seq if seq > cycle else cycle
            if ready > base_candidate:
                stats.data_stall_cycles += ready - base_candidate

            candidate = ready if ready > seq else seq

            if kind == K_ALU:
                t = issue_slot(candidate)
                dest = entry[1]
                if dest >= 0:
                    reg_ready[dest] = t + alu_lat
                if t + alu_lat > final:
                    final = t + alu_lat
                continue

            if kind == K_LD:
                if candidate <= last_mem_cycle:
                    candidate = last_mem_cycle + 1
                t = issue_slot(candidate)
                last_mem_cycle = t
                latency = hierarchy.load_latency(entry[4])
                dest = entry[1]
                if dest >= 0:
                    reg_ready[dest] = t + latency
                if t + latency > final:
                    final = t + latency
                if resilient and clq is not None and rbb.current is not None:
                    clq.record_load(rbb.current.instance, entry[4])
                continue

            if kind == K_ST or kind == K_CKPT:
                if candidate <= last_mem_cycle:
                    candidate = last_mem_cycle + 1
                t = issue_slot(candidate)
                last_mem_cycle = t
                commit = t + commit_lat
                if kind == K_ST:
                    stats.stores_total += 1
                    if entry[6] == 1:
                        stats.spill_stores += 1
                    else:
                        stats.app_stores += 1
                else:
                    stats.checkpoints_total += 1

                if not resilient:
                    alloc, _ = sb.allocation_time(commit)
                    if alloc > commit:
                        stats.sb_stall_cycles += alloc - commit
                        cycle = alloc
                        issued_here = 1
                    sb.push(alloc + baseline_drain, 0)
                    hierarchy.store_touch(entry[4])
                    if alloc + baseline_drain > final:
                        final = alloc + baseline_drain
                    continue

                sync_regions(commit)
                inst = rbb.current
                instance = inst.instance if inst is not None else 0

                released_fast = False
                if kind == K_ST:
                    if (
                        clq is not None
                        and not clq.store_has_war(instance, entry[4])
                        and not sb.has_pending_address(entry[4], commit)
                    ):
                        released_fast = True
                        stats.warfree_released += 1
                        hierarchy.store_touch(entry[4])
                else:
                    if coloring is not None:
                        color = coloring.assign(instance, entry[2])
                        if color != QUARANTINE:
                            released_fast = True
                            stats.colored_released += 1

                if not released_fast:
                    stats.quarantined += 1
                    alloc, stalled_open = sb.allocation_time(commit)
                    if stalled_open:
                        # Safety valve: hardware force-closes the region so
                        # the oldest entries obtain release times (the
                        # compiler's store cap makes this path cold).
                        stats.forced_region_closures += 1
                        sb.set_instance_release(instance, commit + wcdl)
                        alloc, _ = sb.allocation_time(commit)
                    if alloc > commit:
                        stats.sb_stall_cycles += alloc - commit
                        cycle = alloc
                        issued_here = 1
                    sb.push(float("inf"), instance, entry[4] if kind == K_ST else -1)
                    if kind == K_ST:
                        hierarchy.store_touch(entry[4])
                if commit > final:
                    final = commit
                continue

            if kind == K_BR:
                t = issue_slot(candidate)
                resolve = t + 1
                aux = entry[6]
                if aux & 4:
                    # Unconditional jump: the front end follows it directly.
                    seq_floor = 0.0
                else:
                    taken = bool(aux & 1)
                    correct = predictor.predict_and_update(entry[4], taken)
                    if not correct:
                        seq_floor = resolve + mispredict
                        stats.branch_stall_cycles += mispredict
                        stats.branch_mispredictions += 1
                    else:
                        seq_floor = 0.0
                if resolve > final:
                    final = resolve
                continue

            if kind == K_RET:
                t = issue_slot(candidate)
                if t + 1 > final:
                    final = t + 1
                continue

            if kind == K_MUL:
                lat = mul_lat
            elif kind == K_DIV:
                lat = div_lat
            else:
                lat = alu_lat
            t = issue_slot(candidate)
            dest = entry[1]
            if dest >= 0:
                reg_ready[dest] = t + lat
            if t + lat > final:
                final = t + lat

        stats.cycles = final if final > cycle else cycle
        stats.cache = hierarchy.stats()
        if self.clq is not None:
            stats.clq_occupancy_avg = self.clq.stats.occupancy_avg
            stats.clq_occupancy_max = self.clq.stats.occupancy_max
        return stats


def simulate_trace(
    trace: list[tuple],
    core: CoreConfig | None = None,
    resilience: ResilienceHardwareConfig | None = None,
) -> SimStats:
    """Convenience wrapper: fresh core, one run."""
    core = core or CoreConfig()
    resilience = resilience or ResilienceHardwareConfig.baseline()
    return InOrderCore(core, resilience).run(trace)
