"""Committed load queue (CLQ) designs for WAR-free store detection.

Section 4.3.1: a regular store may bypass verification (fast release to
cache) when no earlier load of the *same region* read the store's address
— re-executing the region after an error then never observes the
possibly-corrupt stored value.

Two designs from the paper:

* :class:`IdealCLQ` — address matching with unbounded entries per region;
  100%-accurate WAR detection, used as the upper bound in Figures 14/15.
* :class:`CompactCLQ` — one ``[min, max]`` address-range entry per
  in-flight region, with a small fixed number of entries (default 2).
  Overflow disables fast release for the overflowing region (Figure 13's
  selective control) rather than stalling the pipeline.

Both track dynamic *region instances* (an instance id increments at every
boundary commit), because a static region re-executes each loop
iteration.
"""

from __future__ import annotations

from dataclasses import astuple, dataclass, field


@dataclass
class CLQStats:
    loads_inserted: int = 0
    war_checks: int = 0
    war_conflicts: int = 0
    overflows: int = 0
    parity_conservative: int = 0
    occupancy_samples: int = 0
    occupancy_sum: int = 0
    occupancy_max: int = 0

    def sample_occupancy(self, occupancy: int) -> None:
        self.occupancy_samples += 1
        self.occupancy_sum += occupancy
        if occupancy > self.occupancy_max:
            self.occupancy_max = occupancy

    @property
    def occupancy_avg(self) -> float:
        if not self.occupancy_samples:
            return 0.0
        return self.occupancy_sum / self.occupancy_samples

    def merge(self, other: "CLQStats") -> "CLQStats":
        """Fold another shard's CLQ counters into this one, in place.

        All fields are either sums or maxima, so merging shards is exact
        (``occupancy_avg`` is derived from the merged sum/samples).
        """
        self.loads_inserted += other.loads_inserted
        self.war_checks += other.war_checks
        self.war_conflicts += other.war_conflicts
        self.overflows += other.overflows
        self.parity_conservative += other.parity_conservative
        self.occupancy_samples += other.occupancy_samples
        self.occupancy_sum += other.occupancy_sum
        if other.occupancy_max > self.occupancy_max:
            self.occupancy_max = other.occupancy_max
        return self


class BaseCLQ:
    """Common interface: per-region-instance load tracking + WAR queries."""

    def __init__(self) -> None:
        self.stats = CLQStats()

    def begin_region(self, instance: int, prior_verified: bool = True) -> None:
        """Start tracking a region instance.

        ``prior_verified`` tells the CLQ whether every earlier region has
        already verified (its stores drained): after an overflow wiped the
        queue, insertions only resume at a region start that satisfies
        this, preserving in-order release to L1 (Figure 13).
        """
        raise NotImplementedError

    def record_load(self, instance: int, addr: int) -> None:
        raise NotImplementedError

    def store_has_war(self, instance: int, addr: int) -> bool:
        """True if the store conflicts (or the region's tracking is invalid)."""
        raise NotImplementedError

    def retire_region(self, instance: int) -> None:
        """Region instance verified: drop its entry."""
        raise NotImplementedError

    def discard(self, instances: list[int]) -> None:
        """Recovery: drop entries of the given (unverified) instances."""
        for instance in instances:
            self.retire_region(instance)

    def corrupt(self, bit: int) -> bool:
        """Fault injection: flip a bit in a resident entry.

        CLQ storage is parity-protected (the SRAM-hardening assumption of
        Section 5): a struck entry fails its parity check on the next WAR
        query and answers *conservatively* (conflict → quarantine), so a
        narrowed range can never green-light an unsafe fast release.
        Returns True when a live entry was actually hit.
        """
        raise NotImplementedError

    def strike_targets(self) -> int:
        """How many resident entries :meth:`corrupt` could hit right now.

        Zero means a strike at this instant provably lands on empty
        storage and cannot alter behaviour — the static vulnerability
        analysis (``repro.verify.vuln``) classifies such cycles masked.
        """
        raise NotImplementedError

    def snapshot_state(self) -> dict:
        """Plain-data image for machine checkpointing (picklable)."""
        raise NotImplementedError

    def restore_state(self, state: dict) -> None:
        raise NotImplementedError

    def canonical(self, imap: dict[int, int]) -> tuple:
        """Translation-invariant fingerprint component (stats excluded).

        ``imap`` maps live region-instance ids to their age rank.
        """
        raise NotImplementedError


class IdealCLQ(BaseCLQ):
    """Unbounded, address-matching CLQ (the paper's ideal design)."""

    def __init__(self) -> None:
        super().__init__()
        self._loads: dict[int, set[int]] = {}
        self._parity_bad: set[int] = set()

    def begin_region(self, instance: int, prior_verified: bool = True) -> None:
        self._loads[instance] = set()

    def record_load(self, instance: int, addr: int) -> None:
        if instance in self._parity_bad:
            return  # untrusted entry: hardware stops inserting
        entry = self._loads.get(instance)
        if entry is None:
            entry = self._loads[instance] = set()
        entry.add(addr)
        self.stats.loads_inserted += 1
        self.stats.sample_occupancy(len(self._loads))

    def store_has_war(self, instance: int, addr: int) -> bool:
        self.stats.war_checks += 1
        if instance in self._parity_bad:
            self.stats.parity_conservative += 1
            self.stats.war_conflicts += 1
            return True
        loads = self._loads.get(instance)
        # An untracked instance has no WAR information: be conservative.
        conflict = True if loads is None else addr in loads
        if conflict:
            self.stats.war_conflicts += 1
        return conflict

    def retire_region(self, instance: int) -> None:
        self._loads.pop(instance, None)
        self._parity_bad.discard(instance)

    def strike_targets(self) -> int:
        return sum(1 for v in self._loads.values() if v)

    def corrupt(self, bit: int) -> bool:
        populated = sorted(k for k, v in self._loads.items() if v)
        if not populated:
            return False
        instance = populated[bit % len(populated)]
        loads = self._loads[instance]
        victim = sorted(loads)[bit % len(loads)]
        loads.discard(victim)
        loads.add(victim ^ (1 << (bit % 32)))
        self._parity_bad.add(instance)
        return True

    def snapshot_state(self) -> dict:
        return {
            "kind": "ideal",
            "loads": [(k, sorted(v)) for k, v in self._loads.items()],
            "parity_bad": sorted(self._parity_bad),
            "stats": astuple(self.stats),
        }

    def restore_state(self, state: dict) -> None:
        if state.get("kind") != "ideal":
            raise ValueError(f"not an IdealCLQ snapshot: {state.get('kind')!r}")
        self._loads = {k: set(v) for k, v in state["loads"]}
        self._parity_bad = set(state["parity_bad"])
        self.stats = CLQStats(*state["stats"])

    def canonical(self, imap: dict[int, int]) -> tuple:
        return (
            "ideal",
            tuple(
                (imap[k], tuple(sorted(v)), k in self._parity_bad)
                for k, v in self._loads.items()
            ),
        )


@dataclass
class _RangeEntry:
    instance: int
    lo: int = -1
    hi: int = -1
    populated: bool = False
    parity_ok: bool = True

    def insert(self, addr: int) -> None:
        if not self.populated:
            self.lo = self.hi = addr
            self.populated = True
        else:
            if addr < self.lo:
                self.lo = addr
            if addr > self.hi:
                self.hi = addr

    def contains(self, addr: int) -> bool:
        return self.populated and self.lo <= addr <= self.hi


class CompactCLQ(BaseCLQ):
    """Range-checking CLQ with a fixed number of per-region entries.

    When a new region instance starts and no entry is free, the instance
    is marked *invalid*: its loads are not tracked and every one of its
    stores reports a WAR conflict (conservative quarantine), matching the
    paper's overflow behaviour of disabling fast release rather than
    stalling.
    """

    def __init__(self, size: int = 2, recycle: bool = True) -> None:
        super().__init__()
        if size < 1:
            raise ValueError("CLQ size must be >= 1")
        self.size = size
        self.recycle = recycle
        self._entries: dict[int, _RangeEntry] = {}
        self._disabled = False

    def begin_region(self, instance: int, prior_verified: bool = True) -> None:
        if self._disabled:
            if not prior_verified:
                return  # stay disabled: no tracking for this instance
            self._disabled = False
            self._entries.clear()
        if len(self._entries) >= self.size:
            self.stats.overflows += 1
            if self.recycle:
                # Only the *open* region's stores ever query its entry —
                # entries of already-closed regions have no correctness
                # role left, so the oldest one is recycled for the new
                # region. (Every resident entry belongs to a closed region
                # here: exactly one region is open at a time, and it is
                # the one being created.)
                oldest = min(self._entries)
                del self._entries[oldest]
            else:
                # Paper-literal Figure 13 policy: wipe the queue, block
                # insertions, and only resume at a region start once the
                # prior region has verified (in-order release restored).
                self._entries.clear()
                self._disabled = True
                return
        self._entries[instance] = _RangeEntry(instance=instance)

    def record_load(self, instance: int, addr: int) -> None:
        entry = self._entries.get(instance)
        if entry is None or not entry.parity_ok:
            return  # untracked (overflow) or untrusted (parity) — blocked
        entry.insert(addr)
        self.stats.loads_inserted += 1
        self.stats.sample_occupancy(
            sum(1 for e in self._entries.values() if e.populated)
        )

    def store_has_war(self, instance: int, addr: int) -> bool:
        self.stats.war_checks += 1
        entry = self._entries.get(instance)
        if entry is None:
            # Untracked region: no WAR information, quarantine everything.
            self.stats.war_conflicts += 1
            return True
        if not entry.parity_ok:
            # Parity failure: the range can no longer be trusted (a
            # narrowed range would unsafely enable fast release), so the
            # store is quarantined unconditionally.
            self.stats.parity_conservative += 1
            self.stats.war_conflicts += 1
            return True
        conflict = entry.contains(addr)
        if conflict:
            self.stats.war_conflicts += 1
        return conflict

    def retire_region(self, instance: int) -> None:
        self._entries.pop(instance, None)

    def strike_targets(self) -> int:
        return sum(1 for e in self._entries.values() if e.populated)

    def corrupt(self, bit: int) -> bool:
        populated = sorted(
            k for k, e in self._entries.items() if e.populated
        )
        if not populated:
            return False
        entry = self._entries[populated[bit % len(populated)]]
        if bit % 2:
            entry.hi ^= 1 << (bit % 32)
        else:
            entry.lo ^= 1 << (bit % 32)
        entry.parity_ok = False
        return True

    def snapshot_state(self) -> dict:
        return {
            "kind": "compact",
            "entries": [
                (k, e.lo, e.hi, e.populated, e.parity_ok)
                for k, e in self._entries.items()
            ],
            "disabled": self._disabled,
            "stats": astuple(self.stats),
        }

    def restore_state(self, state: dict) -> None:
        if state.get("kind") != "compact":
            raise ValueError(
                f"not a CompactCLQ snapshot: {state.get('kind')!r}"
            )
        self._entries = {
            k: _RangeEntry(instance=k, lo=lo, hi=hi, populated=pop,
                           parity_ok=par)
            for k, lo, hi, pop, par in state["entries"]
        }
        self._disabled = state["disabled"]
        self.stats = CLQStats(*state["stats"])

    def canonical(self, imap: dict[int, int]) -> tuple:
        return (
            "compact",
            tuple(
                (imap[k], e.lo, e.hi, e.populated, e.parity_ok)
                for k, e in self._entries.items()
            ),
            self._disabled,
        )


def make_clq(kind: str, size: int = 2, recycle: bool = True) -> BaseCLQ:
    """Factory: ``kind`` is ``"ideal"`` or ``"compact"``."""
    if kind == "ideal":
        return IdealCLQ()
    if kind == "compact":
        return CompactCLQ(size=size, recycle=recycle)
    raise ValueError(f"unknown CLQ kind {kind!r}")
