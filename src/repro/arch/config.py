"""Microarchitecture configuration, modelled on the paper's gem5 setup.

The paper simulates a 2-issue in-order dual-core at 2.5 GHz resembling an
ARM Cortex-A53: 32 KB / 64 KB 2-way L1 I/D caches (2-cycle hit), a
unified 128 KB 16-way L2 (20-cycle hit), a 4-entry store buffer, 2-entry
CLQ and 10-cycle default WCDL. We model one core (the mechanism is
per-core) and the data side of the hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CacheConfig:
    """One cache level."""

    size_bytes: int
    ways: int
    line_bytes: int
    hit_latency: int


@dataclass(frozen=True)
class CoreConfig:
    """The in-order core and memory hierarchy."""

    issue_width: int = 2
    mispredict_penalty: int = 3
    alu_latency: int = 1
    mul_latency: int = 3
    div_latency: int = 12
    store_commit_latency: int = 1
    # L1 hit latency models the load-to-use delay (3 cycles on Cortex-A53;
    # the paper quotes 2 cycles cache access + 1 cycle alignment/forward).
    l1d: CacheConfig = CacheConfig(
        size_bytes=64 * 1024, ways=2, line_bytes=64, hit_latency=3
    )
    l2: CacheConfig = CacheConfig(
        size_bytes=128 * 1024, ways=16, line_bytes=64, hit_latency=20
    )
    memory_latency: int = 80
    # Baseline (non-gated) store buffer drain: cycles from commit until an
    # entry is written to L1 and its slot frees.
    baseline_drain_latency: int = 2

    def with_(self, **kwargs) -> "CoreConfig":
        return replace(self, **kwargs)


@dataclass(frozen=True)
class ResilienceHardwareConfig:
    """Turnstile/Turnpike hardware parameters for the timing core."""

    enabled: bool = True
    wcdl: int = 10
    sb_size: int = 4
    clq_enabled: bool = True
    clq_kind: str = "compact"  # "compact" | "ideal"
    clq_size: int = 2
    # Overflow policy for the compact CLQ: recycle the oldest closed
    # region's entry (default) or the paper-literal wipe-and-disable
    # (Figure 13). The ablation bench compares the two.
    clq_recycling: bool = True
    coloring_enabled: bool = True
    num_colors: int = 4

    @staticmethod
    def baseline() -> "ResilienceHardwareConfig":
        return ResilienceHardwareConfig(enabled=False)

    @staticmethod
    def turnstile(wcdl: int = 10, sb_size: int = 4) -> "ResilienceHardwareConfig":
        return ResilienceHardwareConfig(
            enabled=True,
            wcdl=wcdl,
            sb_size=sb_size,
            clq_enabled=False,
            coloring_enabled=False,
        )

    @staticmethod
    def turnpike(
        wcdl: int = 10,
        sb_size: int = 4,
        clq_kind: str = "compact",
        clq_size: int = 2,
    ) -> "ResilienceHardwareConfig":
        return ResilienceHardwareConfig(
            enabled=True,
            wcdl=wcdl,
            sb_size=sb_size,
            clq_enabled=True,
            clq_kind=clq_kind,
            clq_size=clq_size,
            coloring_enabled=True,
        )


DEFAULT_CORE = CoreConfig()
