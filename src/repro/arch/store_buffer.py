"""Gated store buffer (GSB) model.

Turnstile repurposes the store buffer as an error-containment gate:
committed stores stay quarantined until their region is verified
(WCDL cycles after the region ends), then drain to the L1 cache.

This module provides two views used across the repository:

* :class:`FunctionalStoreBuffer` — value-accurate queue with
  store-to-load forwarding, used by the resilient machine for fault
  injection (capacity is *not* enforced here; the functional protocol is
  time-abstract and the timing core owns stall modelling).
* :class:`TimingStoreBuffer` — occupancy/release-time model used by the
  timing core to compute structural-hazard stalls.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SBEntry:
    """A quarantined store: regular (addr) or checkpoint (reg, color)."""

    instance: int
    is_checkpoint: bool
    addr: int  # regular stores: memory address; checkpoints: -1
    reg: int  # checkpoints: register index; regular stores: -1
    color: int  # checkpoints: target color slot (QUARANTINE pseudo-color ok)
    value: int
    parity_ok: bool = True  # GSB storage parity, checked at drain


class FunctionalStoreBuffer:
    """Value-accurate gated store buffer with forwarding."""

    def __init__(self) -> None:
        self.entries: list[SBEntry] = []

    def push(self, entry: SBEntry) -> None:
        self.entries.append(entry)

    def forward(self, addr: int) -> int | None:
        """Youngest buffered value for ``addr`` (store-to-load forwarding)."""
        for entry in reversed(self.entries):
            if not entry.is_checkpoint and entry.addr == addr:
                return entry.value
        return None

    def release_instance(self, instance: int) -> list[SBEntry]:
        """Drain (and return) all entries of a verified region instance."""
        released = [e for e in self.entries if e.instance == instance]
        if released:
            self.entries = [e for e in self.entries if e.instance != instance]
        return released

    def discard_all(self) -> int:
        """Recovery: drop every quarantined entry (they may be corrupt)."""
        count = len(self.entries)
        self.entries = []
        return count

    def occupancy(self) -> int:
        return len(self.entries)

    def corrupt_entry(self, index: int, bit: int, *extra_bits: int) -> None:
        """Fault injection into SB storage. Flips the value bits and marks
        the entry's parity bad: GSB SRAM is parity-protected, and the
        drain path checks parity before merging — a strike that lands
        after the owning region's sensors were read (i.e. after its
        verification window opened) is still caught at the merge.
        Accepts extra bit positions for multi-bit upsets."""
        entry = self.entries[index]
        for b in (bit, *extra_bits):
            entry.value ^= 1 << b
        entry.parity_ok = False

    # -- snapshot / restore (machine checkpointing) -------------------------

    def snapshot_state(self) -> list[tuple]:
        """Plain-data image of the queue (picklable, order-preserving)."""
        return [
            (e.instance, e.is_checkpoint, e.addr, e.reg, e.color, e.value,
             e.parity_ok)
            for e in self.entries
        ]

    def restore_state(self, state: list[tuple]) -> None:
        self.entries = [SBEntry(*fields) for fields in state]

    def canonical(self, imap: dict[int, int]) -> tuple:
        """Translation-invariant fingerprint component.

        ``imap`` renumbers live region-instance ids by age so two runs
        whose absolute instance counters differ (one recovered, one did
        not) still compare equal when their queues are equivalent.
        """
        return tuple(
            (imap[e.instance], e.is_checkpoint, e.addr, e.reg, e.color,
             e.value, e.parity_ok)
            for e in self.entries
        )


class TimingStoreBuffer:
    """Occupancy model: entries carry release times, capacity is enforced.

    ``allocate`` answers *when* a store can obtain a slot given the
    release times of resident entries; the caller supplies the commit
    time and receives the (possibly later) allocation time.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("store buffer needs at least one entry")
        self.capacity = capacity
        # (release_time, instance, addr); release_time may be provisional
        # +inf for the open region until its end is known.
        self.entries: list[tuple[float, int, int]] = []

    def drain_until(self, now: float) -> None:
        if self.entries:
            self.entries = [e for e in self.entries if e[0] > now]

    def has_pending_address(self, addr: int, now: float) -> bool:
        """Is an older store to ``addr`` still quarantined at ``now``?

        Fast release must preserve per-address store order to L1; the
        SB's forwarding CAM provides this lookup for free in hardware.
        """
        self.drain_until(now)
        return any(e[2] == addr for e in self.entries)

    def earliest_release(self) -> float:
        return min(e[0] for e in self.entries)

    def allocation_time(self, commit_time: float) -> tuple[float, bool]:
        """Earliest time >= commit_time at which a slot is free.

        Returns ``(time, stalled_on_open_region)``; the second flag is
        True when every resident entry belongs to a region whose end is
        unknown (release +inf) — the deadlock case the compiler's store
        cap exists to prevent (callers apply a safety valve and count it).
        """
        self.drain_until(commit_time)
        if len(self.entries) < self.capacity:
            return commit_time, False
        earliest = self.earliest_release()
        if earliest == float("inf"):
            return commit_time, True
        # Wait for the earliest release, then drain and retry.
        return self.allocation_time(max(commit_time, earliest))

    def push(self, release_time: float, instance: int, addr: int = -1) -> None:
        self.entries.append((release_time, instance, addr))

    def set_instance_release(self, instance: int, release_base: float, drain_interval: float = 1.0) -> None:
        """Fix provisional releases once the region's verify time is known.

        Entries drain one per ``drain_interval`` cycles starting at the
        verification point (single L1 write port).
        """
        updated: list[tuple[float, int, int]] = []
        offset = 0
        for release, inst, addr in self.entries:
            if inst == instance and release == float("inf"):
                updated.append((release_base + offset * drain_interval, inst, addr))
                offset += 1
            else:
                updated.append((release, inst, addr))
        self.entries = updated

    def occupancy(self) -> int:
        return len(self.entries)
