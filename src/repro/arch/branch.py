"""Bimodal branch predictor.

The Cortex-A53 has a modest dynamic predictor; a classic 2-bit bimodal
table captures the behaviour that matters for the figures (branchy
integer codes pay more front-end penalty than regular loop nests).
Jumps and function returns predict perfectly.
"""

from __future__ import annotations


class BimodalPredictor:
    """2-bit saturating-counter table indexed by a branch id."""

    def __init__(self, entries: int = 512):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.mask = entries - 1
        # Counters initialised weakly-taken: loops predict well quickly.
        self.table = [2] * entries
        self.predictions = 0
        self.mispredictions = 0

    def predict_and_update(self, branch_id: int, taken: bool) -> bool:
        """Returns True when the prediction was correct."""
        index = branch_id & self.mask
        counter = self.table[index]
        predicted_taken = counter >= 2
        correct = predicted_taken == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        if taken:
            if counter < 3:
                self.table[index] = counter + 1
        else:
            if counter > 0:
                self.table[index] = counter - 1
        return correct

    @property
    def misprediction_rate(self) -> float:
        if not self.predictions:
            return 0.0
        return self.mispredictions / self.predictions
