"""Microarchitecture: in-order timing core and Turnpike hardware models."""

from repro.arch.config import (
    CacheConfig,
    CoreConfig,
    DEFAULT_CORE,
    ResilienceHardwareConfig,
)
from repro.arch.core import InOrderCore, simulate_trace
from repro.arch.stats import SimStats, slowdown
from repro.arch.clq import BaseCLQ, CLQStats, CompactCLQ, IdealCLQ, make_clq
from repro.arch.coloring import QUARANTINE, ColorMaps, ColoringStats
from repro.arch.rbb import RegionBoundaryBuffer, RegionInstance
from repro.arch.store_buffer import (
    FunctionalStoreBuffer,
    SBEntry,
    TimingStoreBuffer,
)
from repro.arch.cache import Cache, MemoryHierarchy
from repro.arch.branch import BimodalPredictor

__all__ = [
    "CacheConfig",
    "CoreConfig",
    "DEFAULT_CORE",
    "ResilienceHardwareConfig",
    "InOrderCore",
    "simulate_trace",
    "SimStats",
    "slowdown",
    "BaseCLQ",
    "CLQStats",
    "CompactCLQ",
    "IdealCLQ",
    "make_clq",
    "QUARANTINE",
    "ColorMaps",
    "ColoringStats",
    "RegionBoundaryBuffer",
    "RegionInstance",
    "FunctionalStoreBuffer",
    "SBEntry",
    "TimingStoreBuffer",
    "Cache",
    "MemoryHierarchy",
    "BimodalPredictor",
]
