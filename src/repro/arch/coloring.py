"""Hardware coloring for fast release of checkpoint stores (Sec 4.3.2).

Releasing a checkpoint store without verification would overwrite the
only recovery copy of a register (the paper's Figure 16 corner case), so
Turnpike rotates each register's checkpoint through a small pool of
alternative storage locations ("colors"). Three per-register maps manage
the rotation:

* **AC** (available colors) — free locations for the next checkpoint;
* **UC** (used colors) — the location each in-flight region assigned,
  kept per region instance as part of its RBB entry;
* **VC** (verified color) — the location holding the last *verified*
  checkpoint, which recovery reads.

On region verification, each (register, color) pair in the region's UC
replaces the register's VC entry; the displaced VC color returns to AC.
If AC is empty when a checkpoint commits, the hardware falls back to the
ordinary store-buffer quarantine, represented here by the pseudo-color
``QUARANTINE``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

QUARANTINE = -1  # pseudo-color for checkpoints routed through the SB


@dataclass
class ColoringStats:
    fast_released: int = 0
    fallback_quarantined: int = 0
    parity_fallbacks: int = 0


class ColorMaps:
    """AC/UC/VC management for one core."""

    def __init__(self, num_registers: int = 32, num_colors: int = 4) -> None:
        if num_colors < 1:
            raise ValueError("need at least one color")
        self.num_colors = num_colors
        self.num_registers = num_registers
        # AC as per-register free lists; registers indexed by number.
        self._ac: dict[int, list[int]] = {}
        # UC: region instance -> {reg: color} (color may be QUARANTINE).
        self._uc: dict[int, dict[int, int]] = {}
        # VC: reg -> color of the latest verified checkpoint.
        self._vc: dict[int, int] = {}
        self.stats = ColoringStats()
        # Parity over the three maps (Section 5 hardening): a particle
        # strike sets ``parity_bad``; the first access that observes it
        # sets ``poisoned`` and the maps degrade fail-safe — every later
        # assignment falls back to the store-buffer quarantine, so a
        # corrupted free list can never double-allocate a live slot.
        self.parity_bad = False
        self.poisoned = False

    def _free_list(self, reg: int) -> list[int]:
        colors = self._ac.get(reg)
        if colors is None:
            colors = self._ac[reg] = list(range(self.num_colors))
        return colors

    # -- checkpoint commit --------------------------------------------------

    def assign(self, instance: int, reg: int) -> int:
        """Assign a color for a checkpoint of ``reg`` in region ``instance``.

        Returns the color, or ``QUARANTINE`` when the pool is exhausted
        (caller must route the checkpoint through the store buffer).
        A region that checkpoints the same register twice reuses its
        color — only the last value matters and it overwrites in place
        before verification ever exposes it.
        """
        if self.parity_bad:
            self.poisoned = True
            self.stats.parity_fallbacks += 1
            return QUARANTINE
        uc = self._uc.setdefault(instance, {})
        existing = uc.get(reg)
        if existing is not None:
            return existing
        free = self._free_list(reg)
        if free:
            color = free.pop()
            uc[reg] = color
            self.stats.fast_released += 1
            return color
        uc[reg] = QUARANTINE
        self.stats.fallback_quarantined += 1
        return QUARANTINE

    # -- region lifecycle ------------------------------------------------------

    def verify(self, instance: int) -> dict[int, int]:
        """Region verified: promote its UC entries into VC.

        Returns the promoted ``{reg: color}`` map (including quarantined
        entries, whose storage merge is handled by the store buffer).
        """
        if self.parity_bad:
            self.poisoned = True  # promotion reads the maps too
        uc = self._uc.pop(instance, {})
        for reg, color in uc.items():
            old = self._vc.get(reg)
            if old is not None and old != QUARANTINE:
                self._free_list(reg).append(old)
            self._vc[reg] = color
        return uc

    def discard(self, instances: list[int]) -> None:
        """Recovery: reclaim colors held by unverified region instances."""
        for instance in instances:
            uc = self._uc.pop(instance, {})
            for reg, color in uc.items():
                if color != QUARANTINE:
                    self._free_list(reg).append(color)

    # -- fault injection ------------------------------------------------------

    def strike_targets(self) -> int:
        """How many populated UC/VC entries :meth:`corrupt` could hit.

        Zero means a strike right now provably lands on empty storage —
        the static vulnerability analysis classifies such cycles masked.
        """
        return sum(len(uc) for uc in self._uc.values()) + len(self._vc)

    def corrupt(self, bit: int) -> bool:
        """SEU strike into the AC/UC/VC arrays: flip a bit in one entry.

        The flip lands deterministically (``bit`` indexes the populated
        entries); parity goes bad, so the next :meth:`assign` observes
        the failure and degrades to quarantine-only operation. Returns
        True when a populated entry was actually struck.
        """
        targets: list[tuple[str, tuple]] = []
        for inst in sorted(self._uc):
            for reg in sorted(self._uc[inst]):
                targets.append(("uc", (inst, reg)))
        for reg in sorted(self._vc):
            targets.append(("vc", (reg,)))
        if not targets:
            return False
        kind, key = targets[bit % len(targets)]
        flip = 1 << (bit % max(1, self.num_colors.bit_length()))
        if kind == "uc":
            inst, reg = key
            self._uc[inst][reg] ^= flip
        else:
            self._vc[key[0]] ^= flip
        self.parity_bad = True
        return True

    # -- snapshot / restore (machine checkpointing) ---------------------------

    def snapshot_state(self) -> dict:
        """Plain-data image of the three maps (picklable, order-preserving).

        AC free-list *order* is behaviour: colors pop from the end, so the
        exact lists (including which registers have materialised a list at
        all) are preserved verbatim.
        """
        return {
            "ac": [(reg, list(colors)) for reg, colors in self._ac.items()],
            "uc": [(inst, list(uc.items())) for inst, uc in self._uc.items()],
            "vc": list(self._vc.items()),
            "parity_bad": self.parity_bad,
            "poisoned": self.poisoned,
            "stats": (self.stats.fast_released,
                      self.stats.fallback_quarantined,
                      self.stats.parity_fallbacks),
        }

    def restore_state(self, state: dict) -> None:
        self._ac = {reg: list(colors) for reg, colors in state["ac"]}
        self._uc = {inst: dict(uc) for inst, uc in state["uc"]}
        self._vc = dict(state["vc"])
        self.parity_bad = state["parity_bad"]
        self.poisoned = state["poisoned"]
        fast, fallback, parity = state["stats"]
        self.stats = ColoringStats(fast_released=fast,
                                   fallback_quarantined=fallback,
                                   parity_fallbacks=parity)

    def canonical(self, imap: dict[int, int]) -> tuple:
        """Translation-invariant fingerprint component (stats excluded).

        A register with no materialised AC list is equivalent to one
        holding the pristine ``[0..num_colors)`` list, so both normalise
        to the same tuple; UC keys are renumbered through ``imap`` and
        inner dicts keep insertion order (promotion order is behaviour).
        """
        default = tuple(range(self.num_colors))
        ac = tuple(
            tuple(self._ac[reg]) if reg in self._ac else default
            for reg in range(self.num_registers)
        )
        uc = tuple(
            (imap[inst], tuple(entries.items()))
            for inst, entries in self._uc.items()
        )
        vc = tuple(sorted(self._vc.items()))
        return (ac, uc, vc, self.parity_bad, self.poisoned)

    # -- queries --------------------------------------------------------------

    def verified_color(self, reg: int) -> int | None:
        return self._vc.get(reg)

    def available(self, reg: int) -> int:
        return len(self._free_list(reg))

    def in_flight(self) -> int:
        return len(self._uc)

    @property
    def storage_bits(self) -> int:
        """Bits per register across the three maps (paper: 3*log2(colors))."""
        import math

        return 3 * max(1, math.ceil(math.log2(self.num_colors)))
