"""Text rendering of experiment results, row-for-row with the paper."""

from __future__ import annotations

from repro.harness.experiments import Series


def format_series_table(
    series_list: list[Series],
    value_format: str = "{:.2f}",
    aggregate: str = "geomean",
    title: str = "",
) -> str:
    """Render several series over the same benchmark set as a table."""
    if not series_list:
        return "(no data)"
    benchmarks = list(series_list[0].per_benchmark.keys())
    name_width = max(len(b) for b in benchmarks + ["benchmark"]) + 2
    col_width = max(max(len(s.name) for s in series_list) + 2, 10)

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = "benchmark".ljust(name_width) + "".join(
        s.name.rjust(col_width) for s in series_list
    )
    lines.append(header)
    lines.append("-" * len(header))
    for uid in benchmarks:
        row = uid.ljust(name_width)
        for s in series_list:
            row += value_format.format(s.per_benchmark[uid]).rjust(col_width)
        lines.append(row)
    lines.append("-" * len(header))
    agg_row = aggregate.ljust(name_width)
    for s in series_list:
        value = s.geomean if aggregate == "geomean" else s.mean
        agg_row += value_format.format(value).rjust(col_width)
    lines.append(agg_row)
    return "\n".join(lines)


def format_mapping_table(
    data: dict[str, tuple],
    headers: tuple[str, ...],
    value_format: str = "{:.2f}",
    title: str = "",
) -> str:
    """Render ``{benchmark: (v1, v2, ...)}`` tables (Figures 24 / 26)."""
    name_width = max(len(k) for k in list(data) + ["benchmark"]) + 2
    col_width = max(max(len(h) for h in headers) + 2, 10)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = "benchmark".ljust(name_width) + "".join(
        h.rjust(col_width) for h in headers
    )
    lines.append(header)
    lines.append("-" * len(header))
    for uid, values in data.items():
        row = uid.ljust(name_width)
        for value in values:
            row += value_format.format(value).rjust(col_width)
        lines.append(row)
    return "\n".join(lines)


def format_breakdown_table(
    breakdown: dict[str, dict[str, float]], title: str = "Store breakdown"
) -> str:
    """Figure 23's stacked percentages as a table."""
    from repro.harness.experiments import BREAKDOWN_CATEGORIES

    name_width = max(len(k) for k in list(breakdown) + ["benchmark"]) + 2
    lines = [title, "=" * len(title)]
    header = "benchmark".ljust(name_width) + "".join(
        cat[:12].rjust(13) for cat in BREAKDOWN_CATEGORIES
    )
    lines.append(header)
    lines.append("-" * len(header))
    for uid, cats in breakdown.items():
        row = uid.ljust(name_width)
        for cat in BREAKDOWN_CATEGORIES:
            row += f"{100 * cats[cat]:.1f}%".rjust(13)
        lines.append(row)
    return "\n".join(lines)


def format_table1(table1) -> str:
    """The paper's Table 1 as text."""
    lines = [
        "Table 1: cost comparison of Turnpike and a large SB design",
        f"{'structure':<45}{'area (um^2)':>14}{'access (pJ)':>14}",
        "-" * 73,
    ]
    for row in table1.rows():
        lines.append(
            f"{row.name:<45}{row.area_um2:>14.3f}{row.dynamic_energy_pj:>14.5f}"
        )
    area_ratio, energy_ratio = table1.turnpike_vs_sb4
    lines.append(
        f"{'Turnpike in total / 4-entry SB':<45}{100 * area_ratio:>13.1f}%"
        f"{100 * energy_ratio:>13.1f}%"
    )
    area_ratio, energy_ratio = table1.sb40_vs_sb4
    lines.append(
        f"{'40-entry SB / 4-entry SB':<45}{100 * area_ratio:>13.0f}%"
        f"{100 * energy_ratio:>13.0f}%"
    )
    return "\n".join(lines)
