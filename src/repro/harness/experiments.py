"""Per-figure experiment drivers.

One function per table/figure of the paper's evaluation (Section 6).
Every driver takes an optional benchmark list (defaulting to all 36) and
returns plain data structures that the benches print and the tests
assert against; nothing here touches matplotlib — the "figures" are the
numeric series the plots would show.

Every timing figure declares its design-point lattice and evaluates it
through the multi-lane sweep engine (:mod:`repro.harness.sweep`): one
functional execution and one decode pass per compiled program, K timing
lanes per committed stream, each lane byte-identical to a solo
``simulate`` call. ``workers`` fans lane batches out across processes
(default: ``REPRO_WORKERS`` or sequential).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.arch.config import CoreConfig, ResilienceHardwareConfig
from repro.arch.stats import SimStats
from repro.compiler.config import (
    CompilerConfig,
    figure21_configs,
    turnpike_config,
    turnstile_config,
)
from repro.harness.runner import (
    GLOBAL_CACHE,
    RunCache,
    _baseline_config,
    default_benchmarks,
    geomean,
)
from repro.harness.sweep import DesignPoint, SchemePair, lattice, run_sweep
from repro.hwcost.cacti import Table1, build_table1
from repro.sensors.acoustic import figure18_series


@dataclass
class Series:
    """One named series over the benchmark set."""

    name: str
    per_benchmark: dict[str, float] = field(default_factory=dict)

    @property
    def geomean(self) -> float:
        return geomean(list(self.per_benchmark.values()))

    @property
    def mean(self) -> float:
        values = list(self.per_benchmark.values())
        return sum(values) / len(values)


def _resolve_cache(cache: RunCache | None) -> RunCache:
    """The single cache-resolution point for every figure driver."""
    return GLOBAL_CACHE if cache is None else cache


def _sorted_uids(benchmarks: list[str] | None) -> list[str]:
    """Deterministic (sorted) benchmark iteration for emitted series."""
    return sorted(benchmarks) if benchmarks else sorted(default_benchmarks())


def _baseline_pair() -> SchemePair:
    return (_baseline_config(), ResilienceHardwareConfig.baseline())


def _prepared(cache: RunCache, uid: str, config: CompilerConfig):
    """Functional products, shared across digest-equal configs."""
    return cache.prepared_by_digest(
        uid, config, cache.program_digest(uid, config)
    )


def _evaluate(
    uids: list[str],
    pairs: list[SchemePair],
    cache: RunCache,
    workers: int | None,
    normalize: bool = True,
) -> dict[DesignPoint, SimStats]:
    """Evaluate a lattice (plus the shared baseline point) in one sweep."""
    all_pairs = [*pairs, _baseline_pair()] if normalize else pairs
    return run_sweep(lattice(uids, all_pairs), cache=cache, workers=workers)


def _norm(
    result: dict[DesignPoint, SimStats], uid: str, pair: SchemePair
) -> float:
    """The paper's y-axis: resilient cycles / baseline cycles."""
    stats = result[DesignPoint(uid, pair[0], pair[1])]
    base_c, base_h = _baseline_pair()
    return stats.cycles / result[DesignPoint(uid, base_c, base_h)].cycles


def _hw(flags: dict[str, bool], wcdl: int, sb_size: int, clq_kind: str = "compact",
        clq_size: int = 2) -> ResilienceHardwareConfig:
    return ResilienceHardwareConfig(
        enabled=True,
        wcdl=wcdl,
        sb_size=sb_size,
        clq_enabled=flags.get("clq", True),
        clq_kind=clq_kind,
        clq_size=clq_size,
        coloring_enabled=flags.get("coloring", True),
    )


# ---------------------------------------------------------------------------
# Figure 4 — checkpoint ratio vs store buffer size
# ---------------------------------------------------------------------------


def fig04_checkpoint_ratio(
    benchmarks: list[str] | None = None,
    sb_sizes: tuple[int, int] = (40, 4),
    cache: RunCache | None = None,
) -> dict[int, Series]:
    """Dynamic checkpoint instructions as a fraction of committed
    instructions, for a large (OoO-like) and small (in-order) SB."""
    cache = _resolve_cache(cache)
    uids = _sorted_uids(benchmarks)
    out: dict[int, Series] = {}
    for sb in sb_sizes:
        series = Series(name=f"{sb}-entry SB")
        for uid in uids:
            summary = _prepared(cache, uid, turnstile_config(sb_size=sb)).summary
            series.per_benchmark[uid] = summary.checkpoints / summary.committed
        out[sb] = series
    return out


# ---------------------------------------------------------------------------
# Figures 14 / 15 — ideal vs compact CLQ (hardware-only Turnpike)
# ---------------------------------------------------------------------------


def _fig14_15_pairs(wcdl: int = 10) -> dict[str, SchemePair]:
    compiler = turnstile_config().with_name("fastrelease")
    return {
        kind: (compiler, _hw({"clq": True, "coloring": True}, wcdl, 4,
                             clq_kind=kind))
        for kind in ("ideal", "compact")
    }


def fig14_fig15_clq_designs(
    benchmarks: list[str] | None = None,
    wcdl: int = 10,
    cache: RunCache | None = None,
    workers: int | None = None,
) -> dict[str, dict[str, Series]]:
    """Fast release + coloring only (no compiler opts), ideal vs compact.

    Returns ``{"overhead": {...}, "warfree_ratio": {...}}`` keyed by CLQ
    design, matching Figures 14 and 15.
    """
    cache = _resolve_cache(cache)
    uids = _sorted_uids(benchmarks)
    kinds = (("ideal", "Ideal CLQ"), ("compact", "Compact CLQ"))
    pairs = _fig14_15_pairs(wcdl)
    result = _evaluate(uids, list(pairs.values()), cache, workers)
    out: dict[str, dict[str, Series]] = {"overhead": {}, "warfree_ratio": {}}
    for kind, label in kinds:
        overhead = Series(name=label)
        ratio = Series(name=label)
        for uid in uids:
            stats = result[DesignPoint(uid, *pairs[kind])]
            overhead.per_benchmark[uid] = _norm(result, uid, pairs[kind])
            ratio.per_benchmark[uid] = (
                stats.warfree_released / max(1, stats.all_stores)
            )
        out["overhead"][kind] = overhead
        out["warfree_ratio"][kind] = ratio
    return out


# ---------------------------------------------------------------------------
# Figure 18 — sensor count vs detection latency
# ---------------------------------------------------------------------------


def fig18_sensor_latency() -> dict[float, list[tuple[int, float]]]:
    return figure18_series()


# ---------------------------------------------------------------------------
# Figures 19 / 20 — WCDL sweeps
# ---------------------------------------------------------------------------


def _fig19_pairs(
    wcdls: tuple[int, ...] = (10, 20, 30, 40, 50),
) -> dict[int, SchemePair]:
    compiler = turnpike_config()
    return {
        wcdl: (compiler,
               _hw({"clq": True, "coloring": True}, wcdl, compiler.sb_size))
        for wcdl in wcdls
    }


def _fig20_pairs(
    wcdls: tuple[int, ...] = (10, 20, 30, 40, 50),
) -> dict[int, SchemePair]:
    compiler = turnstile_config()
    return {
        wcdl: (compiler,
               _hw({"clq": False, "coloring": False}, wcdl, compiler.sb_size))
        for wcdl in wcdls
    }


def _wcdl_sweep(
    pairs: dict[int, SchemePair],
    benchmarks: list[str],
    cache: RunCache,
    workers: int | None,
) -> dict[int, Series]:
    result = _evaluate(benchmarks, list(pairs.values()), cache, workers)
    out: dict[int, Series] = {}
    for wcdl, pair in pairs.items():
        series = Series(name=f"DL{wcdl}")
        for uid in benchmarks:
            series.per_benchmark[uid] = _norm(result, uid, pair)
        out[wcdl] = series
    return out


def fig19_turnpike_wcdl(
    benchmarks: list[str] | None = None,
    wcdls: tuple[int, ...] = (10, 20, 30, 40, 50),
    cache: RunCache | None = None,
    workers: int | None = None,
) -> dict[int, Series]:
    """Turnpike normalized execution time across WCDLs (paper: 0-14%)."""
    cache = _resolve_cache(cache)
    return _wcdl_sweep(
        _fig19_pairs(wcdls), _sorted_uids(benchmarks), cache, workers
    )


def fig20_turnstile_wcdl(
    benchmarks: list[str] | None = None,
    wcdls: tuple[int, ...] = (10, 20, 30, 40, 50),
    cache: RunCache | None = None,
    workers: int | None = None,
) -> dict[int, Series]:
    """Turnstile normalized execution time across WCDLs (paper: 29-84%)."""
    cache = _resolve_cache(cache)
    return _wcdl_sweep(
        _fig20_pairs(wcdls), _sorted_uids(benchmarks), cache, workers
    )


# ---------------------------------------------------------------------------
# Figure 21 — optimization ablation
# ---------------------------------------------------------------------------


def _fig21_rows(wcdl: int = 10) -> list[tuple[str, SchemePair]]:
    return [
        (label, (compiler, _hw(flags, wcdl, compiler.sb_size)))
        for label, compiler, flags in figure21_configs()
    ]


def fig21_ablation(
    benchmarks: list[str] | None = None,
    wcdl: int = 10,
    cache: RunCache | None = None,
    workers: int | None = None,
) -> list[Series]:
    """The eight configurations of Figure 21, in presentation order."""
    cache = _resolve_cache(cache)
    uids = _sorted_uids(benchmarks)
    rows = _fig21_rows(wcdl)
    result = _evaluate(uids, [pair for _, pair in rows], cache, workers)
    out: list[Series] = []
    for label, pair in rows:
        series = Series(name=label)
        for uid in uids:
            series.per_benchmark[uid] = _norm(result, uid, pair)
        out.append(series)
    return out


# ---------------------------------------------------------------------------
# Figure 22 — store buffer size sensitivity
# ---------------------------------------------------------------------------


def _fig22_schemes(
    turnstile_sizes: tuple[int, ...] = (4, 8, 10, 20, 30, 40),
    turnpike_sizes: tuple[int, ...] = (4, 8, 10),
    wcdl: int = 10,
) -> list[tuple[str, int, SchemePair]]:
    return [
        ("turnstile", sb,
         (turnstile_config(sb_size=sb),
          _hw({"clq": False, "coloring": False}, wcdl, sb)))
        for sb in turnstile_sizes
    ] + [
        ("turnpike", sb,
         (turnpike_config(sb_size=sb),
          _hw({"clq": True, "coloring": True}, wcdl, sb)))
        for sb in turnpike_sizes
    ]


def fig22_sb_sensitivity(
    benchmarks: list[str] | None = None,
    turnstile_sizes: tuple[int, ...] = (4, 8, 10, 20, 30, 40),
    turnpike_sizes: tuple[int, ...] = (4, 8, 10),
    wcdl: int = 10,
    cache: RunCache | None = None,
    workers: int | None = None,
) -> dict[str, dict[int, Series]]:
    cache = _resolve_cache(cache)
    uids = _sorted_uids(benchmarks)
    schemes = _fig22_schemes(turnstile_sizes, turnpike_sizes, wcdl)
    result = _evaluate(uids, [pair for _, _, pair in schemes], cache, workers)
    out: dict[str, dict[int, Series]] = {"turnstile": {}, "turnpike": {}}
    for scheme, sb, pair in schemes:
        series = Series(name=f"{scheme.capitalize()} (SB-{sb})")
        for uid in uids:
            series.per_benchmark[uid] = _norm(result, uid, pair)
        out[scheme][sb] = series
    return out


# ---------------------------------------------------------------------------
# Figure 23 — store breakdown
# ---------------------------------------------------------------------------

BREAKDOWN_CATEGORIES = (
    "pruned",
    "licm_eliminated",
    "colored",
    "warfree",
    "ra_eliminated",
    "indvar_eliminated",
    "others",
)


def _fig23_configs() -> tuple[CompilerConfig, ...]:
    """The differencing stages (base, +pruning, +licm, +ra, full).

    All stages share the overlap partitioning so each delta isolates
    exactly one optimization (the same convention as the Figure 21
    ablation's hardware rows).
    """
    base_cfg = replace(
        turnstile_config(), overlap_partitioning=True, name="bd-base"
    )
    pruning_cfg = CompilerConfig(
        checkpoint_pruning=True,
        licm_sinking=False,
        induction_variable_merging=False,
        instruction_scheduling=False,
        store_aware_regalloc=False,
        name="bd+pruning",
    )
    licm_cfg = replace(pruning_cfg, licm_sinking=True, name="bd+licm")
    ra_cfg = replace(
        licm_cfg,
        instruction_scheduling=True,
        store_aware_regalloc=True,
        name="bd+ra",
    )
    return base_cfg, pruning_cfg, licm_cfg, ra_cfg, turnpike_config()


def _fig23_pair(wcdl: int = 10) -> SchemePair:
    return (turnpike_config(), _hw({"clq": True, "coloring": True}, wcdl, 4))


def fig23_store_breakdown(
    benchmarks: list[str] | None = None,
    wcdl: int = 10,
    cache: RunCache | None = None,
    workers: int | None = None,
) -> dict[str, dict[str, float]]:
    """Fraction of Turnstile's total stores in each disposition category.

    Eliminated categories are measured by differencing dynamic store
    counts between compiler stages (how the paper's compiler statistics
    are defined); released/quarantined categories come from the full
    Turnpike timing run.
    """
    cache = _resolve_cache(cache)
    uids = _sorted_uids(benchmarks)
    base_cfg, pruning_cfg, licm_cfg, ra_cfg, full_cfg = _fig23_configs()
    pair = _fig23_pair(wcdl)
    result = _evaluate(uids, [pair], cache, workers, normalize=False)

    out: dict[str, dict[str, float]] = {}
    for uid in uids:
        s0 = _prepared(cache, uid, base_cfg).summary
        s1 = _prepared(cache, uid, pruning_cfg).summary
        s2 = _prepared(cache, uid, licm_cfg).summary
        s3 = _prepared(cache, uid, ra_cfg).summary
        s4 = _prepared(cache, uid, full_cfg).summary
        total = max(1, s0.all_stores)
        pruned = max(0, s0.checkpoints - s1.checkpoints)
        licm = max(0, s1.checkpoints - s2.checkpoints)
        ra = max(0, s2.spill_stores - s3.spill_stores)
        indvar = max(0, s3.all_stores - s4.all_stores - 0)  # LIVM effect
        stats = result[DesignPoint(uid, *pair)]
        colored = stats.colored_released
        warfree = stats.warfree_released
        others = max(0, total - pruned - licm - ra - indvar - colored - warfree)
        out[uid] = {
            "pruned": pruned / total,
            "licm_eliminated": licm / total,
            "colored": colored / total,
            "warfree": warfree / total,
            "ra_eliminated": ra / total,
            "indvar_eliminated": indvar / total,
            "others": others / total,
        }
    return out


def breakdown_means(breakdown: dict[str, dict[str, float]]) -> dict[str, float]:
    """Arithmetic means across benchmarks (the paper reports means here)."""
    n = len(breakdown)
    means = {cat: 0.0 for cat in BREAKDOWN_CATEGORIES}
    for per_bench in breakdown.values():
        for cat in BREAKDOWN_CATEGORIES:
            means[cat] += per_bench[cat]
    return {cat: value / n for cat, value in means.items()}


# ---------------------------------------------------------------------------
# Figure 24 — dynamic CLQ occupancy
# ---------------------------------------------------------------------------


def _fig24_pair(wcdl: int = 10) -> SchemePair:
    return (
        turnpike_config(),
        ResilienceHardwareConfig.turnpike(wcdl=wcdl, clq_kind="ideal"),
    )


def fig24_clq_occupancy(
    benchmarks: list[str] | None = None,
    wcdl: int = 10,
    cache: RunCache | None = None,
    workers: int | None = None,
) -> dict[str, tuple[float, int]]:
    """(average, maximum) populated CLQ entries per benchmark.

    Measured with an unbounded ideal CLQ so the numbers reflect *demand*
    (how many in-flight regions hold load ranges), as in the paper's
    sizing study.
    """
    cache = _resolve_cache(cache)
    uids = _sorted_uids(benchmarks)
    pair = _fig24_pair(wcdl)
    result = _evaluate(uids, [pair], cache, workers, normalize=False)
    out: dict[str, tuple[float, int]] = {}
    for uid in uids:
        stats = result[DesignPoint(uid, *pair)]
        out[uid] = (stats.clq_occupancy_avg, stats.clq_occupancy_max)
    return out


# ---------------------------------------------------------------------------
# Figure 25 — CLQ size sensitivity
# ---------------------------------------------------------------------------


def _fig25_pairs(
    sizes: tuple[int, ...] = (2, 4), wcdl: int = 10
) -> dict[int, SchemePair]:
    compiler = turnpike_config()
    return {
        size: (compiler,
               ResilienceHardwareConfig.turnpike(wcdl=wcdl, clq_size=size))
        for size in sizes
    }


def fig25_clq_size(
    benchmarks: list[str] | None = None,
    sizes: tuple[int, ...] = (2, 4),
    wcdl: int = 10,
    cache: RunCache | None = None,
    workers: int | None = None,
) -> dict[int, Series]:
    cache = _resolve_cache(cache)
    uids = _sorted_uids(benchmarks)
    pairs = _fig25_pairs(sizes, wcdl)
    result = _evaluate(uids, list(pairs.values()), cache, workers)
    out: dict[int, Series] = {}
    for size, pair in pairs.items():
        series = Series(name=f"CLQ-{size}")
        for uid in uids:
            series.per_benchmark[uid] = _norm(result, uid, pair)
        out[size] = series
    return out


# ---------------------------------------------------------------------------
# Figure 26 — region size and code size
# ---------------------------------------------------------------------------


def _fig26_pair(wcdl: int = 10) -> SchemePair:
    return (turnpike_config(), ResilienceHardwareConfig.turnpike(wcdl=wcdl))


def fig26_region_codesize(
    benchmarks: list[str] | None = None,
    wcdl: int = 10,
    cache: RunCache | None = None,
    workers: int | None = None,
) -> dict[str, tuple[float, float]]:
    """(average dynamic region size, code-size increase fraction)."""
    cache = _resolve_cache(cache)
    uids = _sorted_uids(benchmarks)
    pair = _fig26_pair(wcdl)
    compiler = pair[0]
    result = _evaluate(uids, [pair], cache, workers, normalize=False)
    out: dict[str, tuple[float, float]] = {}
    for uid in uids:
        stats = result[DesignPoint(uid, *pair)]
        run = _prepared(cache, uid, compiler)
        base = cache.baseline(uid)
        growth = (
            run.compiled.code_size_bytes - base.compiled.code_size_bytes
        ) / base.compiled.code_size_bytes
        out[uid] = (stats.dynamic_region_size, growth)
    return out


# ---------------------------------------------------------------------------
# Table 1 — hardware cost
# ---------------------------------------------------------------------------


def table1_hw_cost() -> Table1:
    return build_table1()


# ---------------------------------------------------------------------------
# The whole figure suite (the `repro sweep` CLI entry)
# ---------------------------------------------------------------------------

FIGURE_SUITE = (
    "fig04", "fig14_15", "fig18", "fig19", "fig20", "fig21", "fig22",
    "fig23", "fig24", "fig25", "fig26", "table1",
)


def suite_pairs(
    figures: tuple[str, ...] | None = None,
) -> list[SchemePair]:
    """Union of (compiler, hardware) pairs the requested figures sweep.

    This is the prefetch lattice of :func:`figure_suite`: evaluating it
    in ONE ``run_sweep`` means one functional execution and one decode
    pass per compiled program across the *whole* suite (maximal lane
    grouping), after which every figure driver resolves its points from
    the warm cache. Includes the shared baseline normalization point.
    """
    wanted = set(figures or FIGURE_SUITE)
    pairs: list[SchemePair] = []
    if "fig14_15" in wanted:
        pairs += _fig14_15_pairs().values()
    if "fig19" in wanted:
        pairs += _fig19_pairs().values()
    if "fig20" in wanted:
        pairs += _fig20_pairs().values()
    if "fig21" in wanted:
        pairs += [pair for _, pair in _fig21_rows()]
    if "fig22" in wanted:
        pairs += [pair for _, _, pair in _fig22_schemes()]
    if "fig23" in wanted:
        pairs.append(_fig23_pair())
    if "fig24" in wanted:
        pairs.append(_fig24_pair())
    if "fig25" in wanted:
        pairs += _fig25_pairs().values()
    if "fig26" in wanted:
        pairs.append(_fig26_pair())
    if pairs:
        pairs.append(_baseline_pair())
    uniq: list[SchemePair] = []
    seen: set[SchemePair] = set()
    for pair in pairs:
        if pair not in seen:
            seen.add(pair)
            uniq.append(pair)
    return uniq


def suite_summary_configs(
    sb_sizes: tuple[int, int] = (40, 4),
) -> list[CompilerConfig]:
    """Functional-only configs the suite needs beyond the timing lattice
    (Figure 4 checkpoint ratios, Figure 23 differencing stages)."""
    return [
        *(turnstile_config(sb_size=sb) for sb in sb_sizes),
        *_fig23_configs()[:4],
    ]


def figure_suite(
    benchmarks: list[str] | None = None,
    figures: tuple[str, ...] | None = None,
    cache: RunCache | None = None,
    workers: int | None = None,
) -> dict[str, object]:
    """Run (a subset of) the full figure suite through the sweep engine.

    Returns ``{figure name: result}`` in suite order. Design points
    shared between figures (the baseline normalization point, the
    turnpike scheme, digest-equal configs) are evaluated exactly once.
    """
    cache = _resolve_cache(cache)
    wanted = figures or FIGURE_SUITE
    unknown = sorted(set(wanted) - set(FIGURE_SUITE))
    if unknown:
        raise ValueError(
            f"unknown figure(s) {', '.join(unknown)}; "
            f"choose from {', '.join(FIGURE_SUITE)}"
        )
    # One-big-sweep prefetch: evaluate the union lattice of every
    # requested figure up front, so each driver's own run_sweep below is
    # a pure warm-cache resolution (no per-figure re-decode of shared
    # committed streams, maximal lanes per decode group).
    prefetch = suite_pairs(tuple(wanted))
    if prefetch:
        run_sweep(
            lattice(_sorted_uids(benchmarks), prefetch),
            cache=cache, workers=workers,
        )
    drivers: dict[str, object] = {
        "fig04": lambda: fig04_checkpoint_ratio(benchmarks, cache=cache),
        "fig14_15": lambda: fig14_fig15_clq_designs(
            benchmarks, cache=cache, workers=workers
        ),
        "fig18": fig18_sensor_latency,
        "fig19": lambda: fig19_turnpike_wcdl(
            benchmarks, cache=cache, workers=workers
        ),
        "fig20": lambda: fig20_turnstile_wcdl(
            benchmarks, cache=cache, workers=workers
        ),
        "fig21": lambda: fig21_ablation(
            benchmarks, cache=cache, workers=workers
        ),
        "fig22": lambda: fig22_sb_sensitivity(
            benchmarks, cache=cache, workers=workers
        ),
        "fig23": lambda: fig23_store_breakdown(
            benchmarks, cache=cache, workers=workers
        ),
        "fig24": lambda: fig24_clq_occupancy(
            benchmarks, cache=cache, workers=workers
        ),
        "fig25": lambda: fig25_clq_size(
            benchmarks, cache=cache, workers=workers
        ),
        "fig26": lambda: fig26_region_codesize(
            benchmarks, cache=cache, workers=workers
        ),
        "table1": table1_hw_cost,
    }
    return {name: drivers[name]() for name in FIGURE_SUITE if name in wanted}
