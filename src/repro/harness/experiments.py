"""Per-figure experiment drivers.

One function per table/figure of the paper's evaluation (Section 6).
Every driver takes an optional benchmark list (defaulting to all 36) and
returns plain data structures that the benches print and the tests
assert against; nothing here touches matplotlib — the "figures" are the
numeric series the plots would show.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.config import CoreConfig, ResilienceHardwareConfig
from repro.compiler.config import (
    CompilerConfig,
    figure21_configs,
    turnpike_config,
    turnstile_config,
)
from repro.harness.runner import (
    GLOBAL_CACHE,
    RunCache,
    default_benchmarks,
    geomean,
    normalized_time,
    simulate,
)
from repro.hwcost.cacti import Table1, build_table1
from repro.sensors.acoustic import figure18_series


@dataclass
class Series:
    """One named series over the benchmark set."""

    name: str
    per_benchmark: dict[str, float] = field(default_factory=dict)

    @property
    def geomean(self) -> float:
        return geomean(list(self.per_benchmark.values()))

    @property
    def mean(self) -> float:
        values = list(self.per_benchmark.values())
        return sum(values) / len(values)


def _hw(flags: dict[str, bool], wcdl: int, sb_size: int, clq_kind: str = "compact",
        clq_size: int = 2) -> ResilienceHardwareConfig:
    return ResilienceHardwareConfig(
        enabled=True,
        wcdl=wcdl,
        sb_size=sb_size,
        clq_enabled=flags.get("clq", True),
        clq_kind=clq_kind,
        clq_size=clq_size,
        coloring_enabled=flags.get("coloring", True),
    )


# ---------------------------------------------------------------------------
# Figure 4 — checkpoint ratio vs store buffer size
# ---------------------------------------------------------------------------


def fig04_checkpoint_ratio(
    benchmarks: list[str] | None = None,
    sb_sizes: tuple[int, int] = (40, 4),
    cache: RunCache | None = None,
) -> dict[int, Series]:
    """Dynamic checkpoint instructions as a fraction of committed
    instructions, for a large (OoO-like) and small (in-order) SB."""
    cache = cache or GLOBAL_CACHE
    benchmarks = benchmarks or default_benchmarks()
    out: dict[int, Series] = {}
    for sb in sb_sizes:
        series = Series(name=f"{sb}-entry SB")
        for uid in benchmarks:
            run = cache.prepared(uid, turnstile_config(sb_size=sb))
            summary = run.summary
            series.per_benchmark[uid] = summary.checkpoints / summary.committed
        out[sb] = series
    return out


# ---------------------------------------------------------------------------
# Figures 14 / 15 — ideal vs compact CLQ (hardware-only Turnpike)
# ---------------------------------------------------------------------------


def fig14_fig15_clq_designs(
    benchmarks: list[str] | None = None,
    wcdl: int = 10,
    cache: RunCache | None = None,
) -> dict[str, dict[str, Series]]:
    """Fast release + coloring only (no compiler opts), ideal vs compact.

    Returns ``{"overhead": {...}, "warfree_ratio": {...}}`` keyed by CLQ
    design, matching Figures 14 and 15.
    """
    cache = cache or GLOBAL_CACHE
    benchmarks = benchmarks or default_benchmarks()
    compiler = turnstile_config().with_name("fastrelease")
    out = {"overhead": {}, "warfree_ratio": {}}
    for kind, label in (("ideal", "Ideal CLQ"), ("compact", "Compact CLQ")):
        overhead = Series(name=label)
        ratio = Series(name=label)
        hw = _hw({"clq": True, "coloring": True}, wcdl, 4, clq_kind=kind)
        for uid in benchmarks:
            stats = simulate(uid, compiler, hw, cache=cache)
            overhead.per_benchmark[uid] = (
                stats.cycles / cache.baseline_cycles(uid)
            )
            ratio.per_benchmark[uid] = (
                stats.warfree_released / max(1, stats.all_stores)
            )
        out["overhead"][kind] = overhead
        out["warfree_ratio"][kind] = ratio
    return out


# ---------------------------------------------------------------------------
# Figure 18 — sensor count vs detection latency
# ---------------------------------------------------------------------------


def fig18_sensor_latency() -> dict[float, list[tuple[int, float]]]:
    return figure18_series()


# ---------------------------------------------------------------------------
# Figures 19 / 20 — WCDL sweeps
# ---------------------------------------------------------------------------


def _wcdl_sweep(
    compiler: CompilerConfig,
    flags: dict[str, bool],
    benchmarks: list[str],
    wcdls: tuple[int, ...],
    cache: RunCache,
) -> dict[int, Series]:
    out: dict[int, Series] = {}
    for wcdl in wcdls:
        series = Series(name=f"DL{wcdl}")
        hw = _hw(flags, wcdl, compiler.sb_size)
        for uid in benchmarks:
            series.per_benchmark[uid] = normalized_time(
                uid, compiler, hw, cache=cache
            )
        out[wcdl] = series
    return out


def fig19_turnpike_wcdl(
    benchmarks: list[str] | None = None,
    wcdls: tuple[int, ...] = (10, 20, 30, 40, 50),
    cache: RunCache | None = None,
) -> dict[int, Series]:
    """Turnpike normalized execution time across WCDLs (paper: 0-14%)."""
    cache = cache or GLOBAL_CACHE
    benchmarks = benchmarks or default_benchmarks()
    return _wcdl_sweep(
        turnpike_config(), {"clq": True, "coloring": True}, benchmarks, wcdls, cache
    )


def fig20_turnstile_wcdl(
    benchmarks: list[str] | None = None,
    wcdls: tuple[int, ...] = (10, 20, 30, 40, 50),
    cache: RunCache | None = None,
) -> dict[int, Series]:
    """Turnstile normalized execution time across WCDLs (paper: 29-84%)."""
    cache = cache or GLOBAL_CACHE
    benchmarks = benchmarks or default_benchmarks()
    return _wcdl_sweep(
        turnstile_config(), {"clq": False, "coloring": False}, benchmarks, wcdls, cache
    )


# ---------------------------------------------------------------------------
# Figure 21 — optimization ablation
# ---------------------------------------------------------------------------


def fig21_ablation(
    benchmarks: list[str] | None = None,
    wcdl: int = 10,
    cache: RunCache | None = None,
) -> list[Series]:
    """The eight configurations of Figure 21, in presentation order."""
    cache = cache or GLOBAL_CACHE
    benchmarks = benchmarks or default_benchmarks()
    out: list[Series] = []
    for label, compiler, flags in figure21_configs():
        series = Series(name=label)
        hw = _hw(flags, wcdl, compiler.sb_size)
        for uid in benchmarks:
            series.per_benchmark[uid] = normalized_time(
                uid, compiler, hw, cache=cache
            )
        out.append(series)
    return out


# ---------------------------------------------------------------------------
# Figure 22 — store buffer size sensitivity
# ---------------------------------------------------------------------------


def fig22_sb_sensitivity(
    benchmarks: list[str] | None = None,
    turnstile_sizes: tuple[int, ...] = (4, 8, 10, 20, 30, 40),
    turnpike_sizes: tuple[int, ...] = (4, 8, 10),
    wcdl: int = 10,
    cache: RunCache | None = None,
) -> dict[str, dict[int, Series]]:
    cache = cache or GLOBAL_CACHE
    benchmarks = benchmarks or default_benchmarks()
    out: dict[str, dict[int, Series]] = {"turnstile": {}, "turnpike": {}}
    for sb in turnstile_sizes:
        series = Series(name=f"Turnstile (SB-{sb})")
        compiler = turnstile_config(sb_size=sb)
        hw = _hw({"clq": False, "coloring": False}, wcdl, sb)
        for uid in benchmarks:
            series.per_benchmark[uid] = normalized_time(uid, compiler, hw, cache=cache)
        out["turnstile"][sb] = series
    for sb in turnpike_sizes:
        series = Series(name=f"Turnpike (SB-{sb})")
        compiler = turnpike_config(sb_size=sb)
        hw = _hw({"clq": True, "coloring": True}, wcdl, sb)
        for uid in benchmarks:
            series.per_benchmark[uid] = normalized_time(uid, compiler, hw, cache=cache)
        out["turnpike"][sb] = series
    return out


# ---------------------------------------------------------------------------
# Figure 23 — store breakdown
# ---------------------------------------------------------------------------

BREAKDOWN_CATEGORIES = (
    "pruned",
    "licm_eliminated",
    "colored",
    "warfree",
    "ra_eliminated",
    "indvar_eliminated",
    "others",
)


def fig23_store_breakdown(
    benchmarks: list[str] | None = None,
    wcdl: int = 10,
    cache: RunCache | None = None,
) -> dict[str, dict[str, float]]:
    """Fraction of Turnstile's total stores in each disposition category.

    Eliminated categories are measured by differencing dynamic store
    counts between compiler stages (how the paper's compiler statistics
    are defined); released/quarantined categories come from the full
    Turnpike timing run.
    """
    from dataclasses import replace

    cache = cache or GLOBAL_CACHE
    benchmarks = benchmarks or default_benchmarks()

    # All differencing stages share the overlap partitioning so each
    # delta isolates exactly one optimization (the same convention as the
    # Figure 21 ablation's hardware rows).
    base_cfg = replace(
        turnstile_config(), overlap_partitioning=True, name="bd-base"
    )
    pruning_cfg = CompilerConfig(
        checkpoint_pruning=True,
        licm_sinking=False,
        induction_variable_merging=False,
        instruction_scheduling=False,
        store_aware_regalloc=False,
        name="bd+pruning",
    )
    licm_cfg = replace(pruning_cfg, licm_sinking=True, name="bd+licm")
    ra_cfg = replace(
        licm_cfg,
        instruction_scheduling=True,
        store_aware_regalloc=True,
        name="bd+ra",
    )
    full_cfg = turnpike_config()

    out: dict[str, dict[str, float]] = {}
    hw = _hw({"clq": True, "coloring": True}, wcdl, 4)
    for uid in benchmarks:
        s0 = cache.prepared(uid, base_cfg).summary
        s1 = cache.prepared(uid, pruning_cfg).summary
        s2 = cache.prepared(uid, licm_cfg).summary
        s3 = cache.prepared(uid, ra_cfg).summary
        s4 = cache.prepared(uid, full_cfg).summary
        total = max(1, s0.all_stores)
        pruned = max(0, s0.checkpoints - s1.checkpoints)
        licm = max(0, s1.checkpoints - s2.checkpoints)
        ra = max(0, s2.spill_stores - s3.spill_stores)
        indvar = max(0, s3.all_stores - s4.all_stores - 0)  # LIVM effect
        stats = simulate(uid, full_cfg, hw, cache=cache)
        colored = stats.colored_released
        warfree = stats.warfree_released
        others = max(0, total - pruned - licm - ra - indvar - colored - warfree)
        out[uid] = {
            "pruned": pruned / total,
            "licm_eliminated": licm / total,
            "colored": colored / total,
            "warfree": warfree / total,
            "ra_eliminated": ra / total,
            "indvar_eliminated": indvar / total,
            "others": others / total,
        }
    return out


def breakdown_means(breakdown: dict[str, dict[str, float]]) -> dict[str, float]:
    """Arithmetic means across benchmarks (the paper reports means here)."""
    n = len(breakdown)
    means = {cat: 0.0 for cat in BREAKDOWN_CATEGORIES}
    for per_bench in breakdown.values():
        for cat in BREAKDOWN_CATEGORIES:
            means[cat] += per_bench[cat]
    return {cat: value / n for cat, value in means.items()}


# ---------------------------------------------------------------------------
# Figure 24 — dynamic CLQ occupancy
# ---------------------------------------------------------------------------


def fig24_clq_occupancy(
    benchmarks: list[str] | None = None,
    wcdl: int = 10,
    cache: RunCache | None = None,
) -> dict[str, tuple[float, int]]:
    """(average, maximum) populated CLQ entries per benchmark.

    Measured with an unbounded ideal CLQ so the numbers reflect *demand*
    (how many in-flight regions hold load ranges), as in the paper's
    sizing study.
    """
    cache = cache or GLOBAL_CACHE
    benchmarks = benchmarks or default_benchmarks()
    compiler = turnpike_config()
    hw = ResilienceHardwareConfig.turnpike(wcdl=wcdl, clq_kind="ideal")
    out: dict[str, tuple[float, int]] = {}
    for uid in benchmarks:
        stats = simulate(uid, compiler, hw, cache=cache)
        out[uid] = (stats.clq_occupancy_avg, stats.clq_occupancy_max)
    return out


# ---------------------------------------------------------------------------
# Figure 25 — CLQ size sensitivity
# ---------------------------------------------------------------------------


def fig25_clq_size(
    benchmarks: list[str] | None = None,
    sizes: tuple[int, ...] = (2, 4),
    wcdl: int = 10,
    cache: RunCache | None = None,
) -> dict[int, Series]:
    cache = cache or GLOBAL_CACHE
    benchmarks = benchmarks or default_benchmarks()
    compiler = turnpike_config()
    out: dict[int, Series] = {}
    for size in sizes:
        series = Series(name=f"CLQ-{size}")
        hw = ResilienceHardwareConfig.turnpike(wcdl=wcdl, clq_size=size)
        for uid in benchmarks:
            series.per_benchmark[uid] = normalized_time(uid, compiler, hw, cache=cache)
        out[size] = series
    return out


# ---------------------------------------------------------------------------
# Figure 26 — region size and code size
# ---------------------------------------------------------------------------


def fig26_region_codesize(
    benchmarks: list[str] | None = None,
    wcdl: int = 10,
    cache: RunCache | None = None,
) -> dict[str, tuple[float, float]]:
    """(average dynamic region size, code-size increase fraction)."""
    cache = cache or GLOBAL_CACHE
    benchmarks = benchmarks or default_benchmarks()
    compiler = turnpike_config()
    hw = ResilienceHardwareConfig.turnpike(wcdl=wcdl)
    out: dict[str, tuple[float, float]] = {}
    for uid in benchmarks:
        stats = simulate(uid, compiler, hw, cache=cache)
        run = cache.prepared(uid, compiler)
        base = cache.baseline(uid)
        growth = (
            run.compiled.code_size_bytes - base.compiled.code_size_bytes
        ) / base.compiled.code_size_bytes
        out[uid] = (stats.dynamic_region_size, growth)
    return out


# ---------------------------------------------------------------------------
# Table 1 — hardware cost
# ---------------------------------------------------------------------------


def table1_hw_cost() -> Table1:
    return build_table1()
