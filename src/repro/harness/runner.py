"""Compile / execute / simulate pipeline with memoisation.

Every experiment needs the same expensive artefacts — compiled programs,
dynamic traces, baseline cycle counts — for many (benchmark, compiler
config, hardware config) combinations. This module produces them through
a process-wide cache so a full figure sweep touches each artefact once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import CoreConfig, ResilienceHardwareConfig
from repro.arch.core import InOrderCore
from repro.arch.stats import SimStats
from repro.compiler.config import CompilerConfig, turnpike_config, turnstile_config
from repro.compiler.pipeline import CompiledProgram, compile_baseline, compile_program
from repro.runtime.interpreter import execute
from repro.runtime.trace import TraceSummary
from repro.workloads.generator import Workload, build_workload
from repro.workloads.suites import all_profiles, profile as lookup_profile


@dataclass
class PreparedRun:
    """Everything needed to simulate one (benchmark, compile-config) pair."""

    workload: Workload
    compiled: CompiledProgram
    trace: list[tuple]
    summary: TraceSummary


class RunCache:
    """Process-wide memoisation of workloads, compiles, traces, baselines."""

    def __init__(self) -> None:
        self._workloads: dict[str, Workload] = {}
        # Keyed by the full (frozen) compiler config: two configs that
        # merely share a display name must not collide.
        self._prepared: dict[tuple[str, CompilerConfig], PreparedRun] = {}
        self._baseline_cycles: dict[str, float] = {}

    def workload(self, uid: str) -> Workload:
        wl = self._workloads.get(uid)
        if wl is None:
            wl = build_workload(lookup_profile(uid))
            self._workloads[uid] = wl
        return wl

    def prepared(self, uid: str, config: CompilerConfig) -> PreparedRun:
        key = (uid, config)
        run = self._prepared.get(key)
        if run is None:
            workload = self.workload(uid)
            if config.name == "baseline":
                compiled = compile_baseline(workload.program)
            else:
                compiled = compile_program(workload.program, config)
            result = execute(
                compiled.program, workload.fresh_memory(), collect_trace=True
            )
            assert result.trace is not None
            run = PreparedRun(
                workload=workload,
                compiled=compiled,
                trace=result.trace,
                summary=TraceSummary(result.trace),
            )
            self._prepared[key] = run
        return run

    def baseline(self, uid: str, core: CoreConfig | None = None) -> PreparedRun:
        cfg = CompilerConfig(
            eager_checkpointing=False,
            checkpoint_pruning=False,
            licm_sinking=False,
            induction_variable_merging=False,
            instruction_scheduling=False,
            store_aware_regalloc=False,
            name="baseline",
        )
        return self.prepared(uid, cfg)

    def baseline_cycles(self, uid: str, core: CoreConfig | None = None) -> float:
        cycles = self._baseline_cycles.get(uid)
        if cycles is None:
            run = self.baseline(uid)
            stats = InOrderCore(
                core or CoreConfig(), ResilienceHardwareConfig.baseline()
            ).run(run.trace)
            cycles = stats.cycles
            self._baseline_cycles[uid] = cycles
        return cycles

    def clear(self) -> None:
        self._workloads.clear()
        self._prepared.clear()
        self._baseline_cycles.clear()


GLOBAL_CACHE = RunCache()


def simulate(
    uid: str,
    compiler: CompilerConfig,
    hardware: ResilienceHardwareConfig,
    core: CoreConfig | None = None,
    cache: RunCache | None = None,
) -> SimStats:
    """Timing-simulate one benchmark under a scheme."""
    cache = cache or GLOBAL_CACHE
    run = cache.prepared(uid, compiler)
    return InOrderCore(core or CoreConfig(), hardware).run(run.trace)


def normalized_time(
    uid: str,
    compiler: CompilerConfig,
    hardware: ResilienceHardwareConfig,
    core: CoreConfig | None = None,
    cache: RunCache | None = None,
) -> float:
    """The paper's y-axis: resilient cycles / baseline cycles (>= ~1)."""
    cache = cache or GLOBAL_CACHE
    stats = simulate(uid, compiler, hardware, core, cache)
    return stats.cycles / cache.baseline_cycles(uid, core)


def geomean(values: list[float]) -> float:
    if not values:
        raise ValueError("geomean of empty list")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def turnstile_scheme(wcdl: int = 10, sb_size: int = 4):
    """(compiler, hardware) pair for the Turnstile baseline scheme."""
    return (
        turnstile_config(sb_size),
        ResilienceHardwareConfig.turnstile(wcdl=wcdl, sb_size=sb_size),
    )


def turnpike_scheme(
    wcdl: int = 10, sb_size: int = 4, clq_kind: str = "compact", clq_size: int = 2
):
    """(compiler, hardware) pair for the full Turnpike scheme."""
    return (
        turnpike_config(sb_size),
        ResilienceHardwareConfig.turnpike(
            wcdl=wcdl, sb_size=sb_size, clq_kind=clq_kind, clq_size=clq_size
        ),
    )


def default_benchmarks() -> list[str]:
    return [p.uid for p in all_profiles()]
