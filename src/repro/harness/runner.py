"""Compile / execute / simulate pipeline with memoisation and sharding.

Every experiment needs the same expensive artefacts — compiled programs,
dynamic traces, timing results — for many (benchmark, compiler config,
hardware config) combinations. This module produces them through three
cooperating layers:

1. an in-process :class:`RunCache` (thread-safe; every lookup/insert
   happens under one lock, so concurrent ``prepared()`` calls and
   ``clear()`` are safe);
2. a persistent :class:`~repro.harness.artifacts.ArtifactCache` shared
   across processes and sessions (keyed by a digest of the simulator
   source, so stale artefacts can never survive a code change);
3. multiprocess sharding (:func:`simulate_many`, :func:`warm_suite`)
   that fans benchmark x config jobs out across cores.

Per-process caches are **independent**: each worker process builds its
own ``RunCache`` (a fork inherits a snapshot of the parent's, spawn
starts empty) and they never synchronise in memory. All cross-process
reuse flows through the persistent artifact layer, whose writes are
atomic — two workers may race to produce the same artefact and both
succeed, one file winning harmlessly.

Functional execution uses the fast backend
(:mod:`repro.runtime.fastsim`) by default; set
``REPRO_SIM_BACKEND=reference`` to fall back to the golden interpreter.
The two are bit-identical (enforced by the differential parity suite in
``tests/test_fastsim_parity.py``), so the choice is invisible to every
figure.
"""

from __future__ import annotations

import math
import os
import threading
from dataclasses import replace

from repro.arch.config import CoreConfig, ResilienceHardwareConfig
from repro.arch.core import InOrderCore
from repro.arch.stats import SimStats
from repro.compiler.config import CompilerConfig, turnpike_config, turnstile_config
from repro.compiler.pipeline import CompiledProgram, compile_baseline, compile_program
from repro.harness.artifacts import ArtifactCache
from repro.runtime.fastsim import execute_fast
from repro.runtime.interpreter import execute
from repro.runtime.trace import TraceSummary
from repro.workloads.generator import Workload, build_workload
from repro.workloads.suites import all_profiles, profile as lookup_profile


def functional_backend() -> str:
    """``"fast"`` (default), ``"codegen"`` or ``"reference"``.

    From REPRO_SIM_BACKEND. ``codegen`` runs the gen-2 superblock
    backend (:mod:`repro.runtime.codegen`); all three are bit-identical.
    """
    backend = os.environ.get("REPRO_SIM_BACKEND", "fast").strip().lower()
    if backend not in ("fast", "reference", "codegen"):
        raise ValueError(
            f"REPRO_SIM_BACKEND={backend!r}: "
            "expected 'fast', 'codegen' or 'reference'"
        )
    return backend


def _run_functional(program, memory, uid=None, config=None):
    """Functional execution via the selected backend.

    ``uid``/``config`` (known for harness benchmarks, None for ad-hoc
    programs) let the codegen backend address its generated module in
    the persistent artifact cache.
    """
    backend = functional_backend()
    if backend == "reference":
        return execute(program, memory, collect_trace=True)
    if backend == "codegen":
        from repro.runtime.codegen import execute_codegen

        return execute_codegen(
            program, memory, collect_trace=True, uid=uid, config=config
        )
    return execute_fast(program, memory, collect_trace=True)


def _baseline_config() -> CompilerConfig:
    return CompilerConfig(
        eager_checkpointing=False,
        checkpoint_pruning=False,
        licm_sinking=False,
        induction_variable_merging=False,
        instruction_scheduling=False,
        store_aware_regalloc=False,
        name="baseline",
    )


class PreparedRun:
    """Everything needed to simulate one (benchmark, compile-config) pair.

    The trace is always materialised; the workload and compiled program
    are rebuilt lazily, so a run served from the persistent trace cache
    never pays compiler time unless a caller actually asks for
    ``.compiled`` (e.g. the code-size study).
    """

    __slots__ = ("uid", "config", "trace", "_workload", "_compiled", "_summary")

    def __init__(
        self,
        uid: str,
        config: CompilerConfig,
        trace: list[tuple],
        workload: Workload | None = None,
        compiled: CompiledProgram | None = None,
    ) -> None:
        self.uid = uid
        self.config = config
        self.trace = trace
        self._workload = workload
        self._compiled = compiled
        self._summary: TraceSummary | None = None

    @property
    def workload(self) -> Workload:
        if self._workload is None:
            self._workload = build_workload(lookup_profile(self.uid))
        return self._workload

    @property
    def compiled(self) -> CompiledProgram:
        if self._compiled is None:
            if self.config.name == "baseline":
                self._compiled = compile_baseline(self.workload.program)
            else:
                self._compiled = compile_program(self.workload.program, self.config)
        return self._compiled

    @property
    def summary(self) -> TraceSummary:
        if self._summary is None:
            self._summary = TraceSummary(self.trace)
        return self._summary


class RunCache:
    """Process-wide memoisation of workloads, compiles, traces, stats.

    Thread-safe: all dictionary access is serialised through one
    re-entrant lock, so ``prepared()`` from several threads and a
    concurrent ``clear()`` cannot corrupt state (a cleared cache simply
    recomputes). Instances in different processes are independent by
    design — cross-process reuse goes through ``persistent``.
    """

    def __init__(
        self, persistent: ArtifactCache | None | str = "default"
    ) -> None:
        if persistent == "default":
            persistent = ArtifactCache.default()
        self.persistent: ArtifactCache | None = persistent  # type: ignore[assignment]
        self._lock = threading.RLock()
        self._workloads: dict[str, Workload] = {}
        # Keyed by the full (frozen) compiler config: two configs that
        # merely share a display name must not collide.
        self._prepared: dict[tuple[str, CompilerConfig], PreparedRun] = {}
        self._stats: dict[
            tuple[str, CompilerConfig, ResilienceHardwareConfig, CoreConfig],
            SimStats,
        ] = {}
        # Compile-only products (no functional run): the sweep planner
        # compiles every lattice config to group design points by
        # structural program digest before paying for any trace.
        self._compiled: dict[tuple[str, CompilerConfig], CompiledProgram] = {}
        self._digests: dict[tuple[str, CompilerConfig], str] = {}
        # Trace sharing across digest-equal compiler configs: configs
        # that compile to an identical program produce an identical
        # committed stream, so one functional run serves them all.
        self._digest_runs: dict[tuple[str, str], PreparedRun] = {}

    def workload(self, uid: str) -> Workload:
        with self._lock:
            wl = self._workloads.get(uid)
            if wl is None:
                wl = build_workload(lookup_profile(uid))
                self._workloads[uid] = wl
            return wl

    def prepared(self, uid: str, config: CompilerConfig) -> PreparedRun:
        key = (uid, config)
        with self._lock:
            run = self._prepared.get(key)
            if run is not None:
                return run
            if self.persistent is not None:
                trace = self.persistent.load_trace(
                    self.persistent.trace_key(uid, config)
                )
                if trace is not None:
                    run = PreparedRun(uid, config, trace)
                    self._prepared[key] = run
                    return run
            workload = self.workload(uid)
            compiled = self.compiled_program(uid, config)
            result = _run_functional(
                compiled.program, workload.fresh_memory(), uid=uid, config=config
            )
            assert result.trace is not None
            run = PreparedRun(
                uid, config, result.trace, workload=workload, compiled=compiled
            )
            if self.persistent is not None:
                self.persistent.store_trace(
                    self.persistent.trace_key(uid, config), result.trace
                )
            self._prepared[key] = run
            return run

    def baseline(self, uid: str, core: CoreConfig | None = None) -> PreparedRun:
        return self.prepared(uid, _baseline_config())

    def compiled_program(
        self, uid: str, config: CompilerConfig
    ) -> CompiledProgram:
        """Compile one (benchmark, config) pair — no functional run."""
        key = (uid, config)
        with self._lock:
            compiled = self._compiled.get(key)
            if compiled is None:
                workload = self.workload(uid)
                if config.name == "baseline":
                    compiled = compile_baseline(workload.program)
                else:
                    compiled = compile_program(workload.program, config)
                self._compiled[key] = compiled
            return compiled

    def program_digest(self, uid: str, config: CompilerConfig) -> str:
        """Structural digest of the compiled program (uid-free).

        Two configs with the same digest compile to the same program and
        therefore produce the same committed stream — the sweep planner
        uses this to share one functional execution across them.
        """
        from repro.runtime.codegen import program_digest

        key = (uid, config)
        with self._lock:
            digest = self._digests.get(key)
            if digest is None:
                digest = program_digest(self.compiled_program(uid, config).program)
                self._digests[key] = digest
            return digest

    def prepared_by_digest(
        self, uid: str, config: CompilerConfig, digest: str
    ) -> PreparedRun:
        """Like :meth:`prepared`, memoised by program digest.

        The returned run belongs to the first config seen with this
        digest; its trace (and summary) are valid for every digest-equal
        config.
        """
        key = (uid, digest)
        with self._lock:
            run = self._digest_runs.get(key)
            if run is None:
                run = self.prepared(uid, config)
                self._digest_runs[key] = run
            return run

    def peek_stats(
        self,
        uid: str,
        compiler: CompilerConfig,
        hardware: ResilienceHardwareConfig,
        core: CoreConfig | None = None,
    ) -> SimStats | None:
        """Memoised/persisted stats if present — never computes."""
        core = core or CoreConfig()
        key = (uid, compiler, hardware, core)
        with self._lock:
            stats = self._stats.get(key)
            if stats is None and self.persistent is not None:
                stats = self.persistent.load_stats(
                    self.persistent.stats_key(uid, compiler, hardware, core)
                )
                if stats is not None:
                    self._stats[key] = stats
            if stats is None:
                return None
            return replace(stats, cache=dict(stats.cache))

    def put_stats(
        self,
        uid: str,
        compiler: CompilerConfig,
        hardware: ResilienceHardwareConfig,
        core: CoreConfig | None,
        stats: SimStats,
    ) -> None:
        """Insert externally-computed stats (the sweep engine's lanes)
        into both memoisation layers, so later solo lookups hit."""
        core = core or CoreConfig()
        key = (uid, compiler, hardware, core)
        with self._lock:
            self._stats[key] = stats
            if self.persistent is not None:
                self.persistent.store_stats(
                    self.persistent.stats_key(uid, compiler, hardware, core),
                    stats,
                )

    def stats(
        self,
        uid: str,
        compiler: CompilerConfig,
        hardware: ResilienceHardwareConfig,
        core: CoreConfig | None = None,
    ) -> SimStats:
        """Timing stats for one combination, memoised at every layer."""
        core = core or CoreConfig()
        key = (uid, compiler, hardware, core)
        with self._lock:
            stats = self._stats.get(key)
            if stats is None and self.persistent is not None:
                stats = self.persistent.load_stats(
                    self.persistent.stats_key(uid, compiler, hardware, core)
                )
                if stats is not None:
                    self._stats[key] = stats
            if stats is None:
                run = self.prepared(uid, compiler)
                stats = InOrderCore(core, hardware).run(run.trace)
                self._stats[key] = stats
                if self.persistent is not None:
                    self.persistent.store_stats(
                        self.persistent.stats_key(uid, compiler, hardware, core),
                        stats,
                    )
            # Defensive copy: cached stats must survive caller mutation.
            return replace(stats, cache=dict(stats.cache))

    def baseline_cycles(self, uid: str, core: CoreConfig | None = None) -> float:
        return self.stats(
            uid,
            _baseline_config(),
            ResilienceHardwareConfig.baseline(),
            core,
        ).cycles

    def clear(self) -> None:
        """Drop all in-memory memoisation (atomically).

        The persistent on-disk layer is deliberately untouched — use
        ``cache.persistent.clear()`` (or ``repro cache clear``) for that.
        """
        with self._lock:
            self._workloads.clear()
            self._prepared.clear()
            self._stats.clear()
            self._compiled.clear()
            self._digests.clear()
            self._digest_runs.clear()


GLOBAL_CACHE = RunCache()


def simulate(
    uid: str,
    compiler: CompilerConfig,
    hardware: ResilienceHardwareConfig,
    core: CoreConfig | None = None,
    cache: RunCache | None = None,
) -> SimStats:
    """Timing-simulate one benchmark under a scheme."""
    cache = cache or GLOBAL_CACHE
    return cache.stats(uid, compiler, hardware, core)


def normalized_time(
    uid: str,
    compiler: CompilerConfig,
    hardware: ResilienceHardwareConfig,
    core: CoreConfig | None = None,
    cache: RunCache | None = None,
) -> float:
    """The paper's y-axis: resilient cycles / baseline cycles (>= ~1)."""
    cache = cache or GLOBAL_CACHE
    stats = simulate(uid, compiler, hardware, core, cache)
    return stats.cycles / cache.baseline_cycles(uid, core)


def geomean(values: list[float]) -> float:
    if not values:
        raise ValueError("geomean of empty list")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def turnstile_scheme(wcdl: int = 10, sb_size: int = 4):
    """(compiler, hardware) pair for the Turnstile baseline scheme."""
    return (
        turnstile_config(sb_size),
        ResilienceHardwareConfig.turnstile(wcdl=wcdl, sb_size=sb_size),
    )


def turnpike_scheme(
    wcdl: int = 10, sb_size: int = 4, clq_kind: str = "compact", clq_size: int = 2
):
    """(compiler, hardware) pair for the full Turnpike scheme."""
    return (
        turnpike_config(sb_size),
        ResilienceHardwareConfig.turnpike(
            wcdl=wcdl, sb_size=sb_size, clq_kind=clq_kind, clq_size=clq_size
        ),
    )


def default_benchmarks() -> list[str]:
    return [p.uid for p in all_profiles()]


def run_report_text(
    uid: str,
    scheme: str = "turnpike",
    wcdl: int = 10,
    sb_size: int = 4,
    backend: str = "fast",
) -> str:
    """The ``repro run`` report for one benchmark, as text.

    Shared by the CLI handler and anything that needs its exact output
    (the batch service executes jobs through the CLI entry point, so
    keeping this single-sourced is what makes service results
    byte-identical to direct invocations).
    """
    from repro.compiler.config import turnpike_config, turnstile_config
    from repro.workloads.suites import load_workload

    if backend == "codegen":
        from repro.runtime.codegen import execute_codegen

        def run_functional(program, memory, collect_trace=True, *, _config=None):
            return execute_codegen(
                program, memory, collect_trace=collect_trace,
                uid=uid, config=_config,
            )
    elif backend == "fast":
        run_functional = execute_fast
    else:
        run_functional = execute
    workload = load_workload(uid)
    if scheme == "baseline":
        compiled = compile_baseline(workload.program)
        hw = ResilienceHardwareConfig.baseline()
    elif scheme == "turnstile":
        compiled = compile_program(workload.program, turnstile_config(sb_size=sb_size))
        hw = ResilienceHardwareConfig.turnstile(wcdl=wcdl, sb_size=sb_size)
    else:
        compiled = compile_program(workload.program, turnpike_config(sb_size=sb_size))
        hw = ResilienceHardwareConfig.turnpike(wcdl=wcdl, sb_size=sb_size)

    kwargs = {"_config": compiled.config} if backend == "codegen" else {}
    result = run_functional(
        compiled.program, workload.fresh_memory(), collect_trace=True, **kwargs
    )
    stats = InOrderCore(CoreConfig(), hw).run(result.trace)

    base = compile_baseline(workload.program)
    kwargs = {"_config": base.config} if backend == "codegen" else {}
    base_run = run_functional(
        base.program, workload.fresh_memory(), collect_trace=True, **kwargs
    )
    base_stats = InOrderCore(
        CoreConfig(), ResilienceHardwareConfig.baseline()
    ).run(base_run.trace)

    lines = [
        f"benchmark:        {uid}",
        f"scheme:           {scheme} (WCDL={wcdl}, SB={sb_size})",
        f"instructions:     {stats.instructions}",
        f"cycles:           {stats.cycles:.0f}",
        f"normalized time:  {stats.cycles / base_stats.cycles:.3f}",
        f"IPC:              {stats.ipc:.2f}",
        f"regions:          {stats.regions} "
        f"(avg {stats.dynamic_region_size:.1f} instr)",
        f"stores:           {stats.warfree_released} WAR-free released, "
        f"{stats.colored_released} colored, {stats.quarantined} quarantined",
        f"stalls:           SB {stats.sb_stall_cycles:.0f}, "
        f"data {stats.data_stall_cycles:.0f}, "
        f"branch {stats.branch_stall_cycles:.0f} cycles",
    ]
    return "\n".join(lines)


# -- multiprocess sharding -------------------------------------------------

SimJob = tuple  # (uid, CompilerConfig, ResilienceHardwareConfig[, CoreConfig])


def resolve_workers(workers: int | None = None) -> int:
    """Explicit argument > REPRO_WORKERS env > 1 (sequential)."""
    if workers is None:
        try:
            workers = int(os.environ.get("REPRO_WORKERS", "1"))
        except ValueError:
            workers = 1
    if workers <= 0:
        workers = os.cpu_count() or 1
    return workers


def _mp_simulate(job: SimJob) -> SimStats:
    """Worker entry point: simulate one job via the worker's own caches."""
    uid, compiler, hardware = job[0], job[1], job[2]
    core = job[3] if len(job) > 3 else None
    return simulate(uid, compiler, hardware, core)


def simulate_many(
    jobs: list[SimJob],
    workers: int | None = None,
    cache: RunCache | None = None,
) -> list[SimStats]:
    """Simulate many (uid, compiler, hardware[, core]) jobs, sharded.

    With ``workers > 1`` the jobs fan out across a process pool; each
    worker runs against its own independent in-process cache, and every
    computed artefact lands in the shared persistent cache so the parent
    (and future sessions) reuse it. Results return in job order and are
    also folded into ``cache`` via the persistent layer on next access.
    """
    workers = resolve_workers(workers)
    if workers <= 1 or len(jobs) <= 1:
        cache = cache or GLOBAL_CACHE
        return [
            cache.stats(j[0], j[1], j[2], j[3] if len(j) > 3 else None)
            for j in jobs
        ]
    import multiprocessing as mp

    with mp.get_context().Pool(min(workers, len(jobs))) as pool:
        return pool.map(_mp_simulate, jobs, chunksize=1)


def default_schemes() -> list[tuple[str, CompilerConfig, ResilienceHardwareConfig]]:
    """The scheme triples every figure sweep touches first."""
    base = _baseline_config()
    ts_c, ts_h = turnstile_scheme()
    tp_c, tp_h = turnpike_scheme()
    return [
        ("baseline", base, ResilienceHardwareConfig.baseline()),
        ("turnstile", ts_c, ts_h),
        ("turnpike", tp_c, tp_h),
    ]


def warm_suite(
    uids: list[str] | None = None,
    schemes: list[tuple[str, CompilerConfig, ResilienceHardwareConfig]] | None = None,
    workers: int | None = None,
) -> dict[tuple[str, str], SimStats]:
    """Pre-populate the caches for a benchmark x scheme matrix, sharded.

    Returns ``{(uid, scheme_name): stats}``. After this returns, the
    persistent cache holds a trace and timing stats for every
    combination, so subsequent figure sweeps start warm.
    """
    uids = uids if uids is not None else default_benchmarks()
    schemes = schemes if schemes is not None else default_schemes()
    jobs: list[SimJob] = []
    names: list[tuple[str, str]] = []
    for uid in uids:
        for name, compiler, hardware in schemes:
            jobs.append((uid, compiler, hardware))
            names.append((uid, name))
    results = simulate_many(jobs, workers=workers)
    return dict(zip(names, results))
