"""Declarative design-point lattices and the multi-lane sweep engine.

A *design point* is one (benchmark, compiler config, hardware config,
core config) combination — one bar of one figure. Every figure sweep is
a lattice of such points, and evaluating them independently repeats
enormous amounts of shared work: digest-equal compiler configs produce
the same committed stream, and every hardware point over one stream
shares its cache/branch behaviour.

The engine exploits both:

1. **Content-addressed point keys** (:func:`point_key`): a point is
   identified by the *structural digest* of its compiled program, not
   the config that produced it, so identical points — across figures,
   or from configs that differ only in non-binding options — dedup to
   one evaluation, and per-point stats persist in the artifact cache
   under the same identity.
2. **Lane batching** (:func:`plan_sweep`): points sharing one compiled
   program form a batch; :func:`repro.runtime.multisim.run_lanes`
   executes the batch with one shared decode pass (fetch/decode/
   functional work once) and K independent timing lanes, each
   byte-identical to a solo :func:`~repro.harness.runner.simulate`.
3. **Multiprocess dispatch**: with ``workers > 1`` (or
   ``REPRO_WORKERS``) lane batches fan out across a process pool, the
   same sharding plumbing as ``simulate_many``.

Results are inserted back into the :class:`~repro.harness.runner.
RunCache` stats layers under each point's own config key, so the solo
accessors (``simulate``, ``normalized_time``, ``baseline_cycles``) hit
the engine's results without recomputing.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.faults.campaign import (
        AccelOptions,
        CampaignReport,
        CampaignSpec,
    )

from repro.arch.config import CoreConfig, ResilienceHardwareConfig
from repro.arch.stats import SimStats
from repro.compiler.config import CompilerConfig
from repro.harness.artifacts import ArtifactCache
from repro.harness.runner import (
    GLOBAL_CACHE,
    RunCache,
    resolve_workers,
)
from repro.runtime.multisim import Feed, FeedMeta, run_lanes


@dataclass(frozen=True)
class DesignPoint:
    """One (benchmark, compiler, hardware, core) combination."""

    uid: str
    compiler: CompilerConfig
    hardware: ResilienceHardwareConfig
    core: CoreConfig = CoreConfig()


SchemePair = tuple[CompilerConfig, ResilienceHardwareConfig]


def lattice(
    benchmarks: Iterable[str],
    pairs: Iterable[SchemePair],
    core: CoreConfig | None = None,
) -> list[DesignPoint]:
    """The cross product benchmark x (compiler, hardware) as points."""
    core = core or CoreConfig()
    pair_list = list(pairs)
    return [
        DesignPoint(uid=uid, compiler=c, hardware=h, core=core)
        for uid in benchmarks
        for (c, h) in pair_list
    ]


def point_key(point: DesignPoint, digest: str) -> str:
    """Content-addressed identity of a design point.

    Built from the structural program digest (not the compiler config),
    so digest-equal configs collapse to the same key.
    """
    return ArtifactCache.sweep_key(
        point.uid, digest, point.hardware, point.core
    )


@dataclass
class LaneBatch:
    """Points sharing one compiled program: one decode, K lanes."""

    uid: str
    compiler: CompilerConfig  # representative (first seen) config
    digest: str
    lanes: list[tuple[CoreConfig, ResilienceHardwareConfig]]
    # Per lane, every (point, its content key) mapped onto it.
    members: list[list[tuple[DesignPoint, str]]]


@dataclass
class SweepPlan:
    """Planner output: deduplicated points grouped into lane batches."""

    batches: list[LaneBatch]
    # Points already resolved (peeked from a cache layer) at plan time.
    resolved: dict[str, SimStats]
    # Content key of every input point.
    keys: dict[DesignPoint, str]

    @property
    def planned_lanes(self) -> int:
        return sum(len(b.lanes) for b in self.batches)


def plan_sweep(
    points: Sequence[DesignPoint],
    cache: RunCache,
    reuse_cached: bool = True,
) -> SweepPlan:
    """Group design points into lane batches keyed by program digest.

    Points whose stats are already available in the cache layers (from
    an earlier figure in this process, or the persistent artifact
    cache) are resolved immediately and excluded from the batches.
    """
    persistent = cache.persistent
    batches: dict[tuple[str, str], LaneBatch] = {}
    resolved: dict[str, SimStats] = {}
    keys: dict[DesignPoint, str] = {}
    for point in points:
        if point in keys:
            continue
        # Cheapest first: stats memoised under the point's own config
        # key resolve without compiling anything.
        if reuse_cached:
            stats = cache.peek_stats(
                point.uid, point.compiler, point.hardware, point.core
            )
            if stats is not None:
                key = ArtifactCache.stats_key(
                    point.uid, point.compiler, point.hardware, point.core
                )
                keys[point] = key
                resolved.setdefault(key, stats)
                continue
        digest = cache.program_digest(point.uid, point.compiler)
        key = point_key(point, digest)
        keys[point] = key
        if key in resolved:
            continue
        if reuse_cached and persistent is not None:
            # Digest-level artifact: another config compiling to the
            # same program may have paid for this point already.
            stats = persistent.load_stats(key)
            if stats is not None:
                resolved[key] = stats
                # Warm the config-keyed layers so solo accessors hit.
                cache.put_stats(
                    point.uid, point.compiler, point.hardware, point.core,
                    stats,
                )
                continue
        bkey = (point.uid, digest)
        batch = batches.get(bkey)
        if batch is None:
            batch = batches[bkey] = LaneBatch(
                uid=point.uid,
                compiler=point.compiler,
                digest=digest,
                lanes=[],
                members=[],
            )
        for i, lane in enumerate(batch.lanes):
            if lane == (point.core, point.hardware):
                batch.members[i].append((point, key))
                break
        else:
            batch.lanes.append((point.core, point.hardware))
            batch.members.append([(point, key)])
    return SweepPlan(batches=list(batches.values()), resolved=resolved,
                     keys=keys)


_MpJob = tuple[
    str, CompilerConfig, list[tuple[CoreConfig, ResilienceHardwareConfig]]
]


def _mp_run_batch(job: _MpJob) -> list[SimStats]:
    """Worker entry: evaluate one lane batch via the worker's caches."""
    uid, compiler, lanes = job
    trace = GLOBAL_CACHE.prepared(uid, compiler).trace
    return run_lanes(trace, lanes)


def _commit(
    cache: RunCache,
    batch: LaneBatch,
    lane_stats: Sequence[SimStats],
    out: dict[str, SimStats],
) -> None:
    """Record one evaluated batch in every cache layer."""
    persistent = cache.persistent
    for members, stats in zip(batch.members, lane_stats, strict=True):
        for point, key in members:
            if key not in out:
                out[key] = stats
                if persistent is not None:
                    persistent.store_stats(key, stats)
            # Insert under the point's own config identity too, so the
            # solo accessors (simulate / normalized_time) hit.
            cache.put_stats(
                point.uid, point.compiler, point.hardware, point.core, stats
            )


def run_sweep(
    points: Sequence[DesignPoint],
    cache: RunCache | None = None,
    workers: int | None = None,
    reuse_cached: bool = True,
) -> dict[DesignPoint, SimStats]:
    """Evaluate a design-point lattice through the multi-lane engine.

    Returns stats for every input point (defensive copies). Every lane
    is byte-identical to a solo ``simulate`` of the same point —
    enforced by ``tests/test_multisim_parity.py``.
    """
    cache = cache or GLOBAL_CACHE
    plan = plan_sweep(points, cache, reuse_cached=reuse_cached)
    computed: dict[str, SimStats] = dict(plan.resolved)
    workers = resolve_workers(workers)
    pending = [b for b in plan.batches if b.lanes]
    if workers > 1 and len(pending) > 1:
        import multiprocessing as mp

        jobs: list[_MpJob] = [
            (b.uid, b.compiler, list(b.lanes)) for b in pending
        ]
        with mp.get_context().Pool(min(workers, len(jobs))) as pool:
            results = pool.map(_mp_run_batch, jobs, chunksize=1)
        for batch, lane_stats in zip(pending, results, strict=True):
            _commit(cache, batch, lane_stats, computed)
    else:
        feeds: dict[
            tuple[CoreConfig, bool], tuple[Feed, dict[str, int], FeedMeta]
        ]
        for batch in pending:
            run = cache.prepared_by_digest(
                batch.uid, batch.compiler, batch.digest
            )
            feeds = {}
            lane_stats = run_lanes(run.trace, batch.lanes, feeds)
            _commit(cache, batch, lane_stats, computed)
    return {
        point: replace(computed[key], cache=dict(computed[key].cache))
        for point, key in plan.keys.items()
    }


# ---------------------------------------------------------------------------
# Code-choice axis: fan one fault campaign across ECC codes
# ---------------------------------------------------------------------------

#: Spellings of the control point on the code axis — the abstract
#: parity fail-safe, i.e. ``CampaignSpec.ecc = None``.
ECC_OFF_LABELS = ("off", "none")


def fan_campaign_codes(
    spec: CampaignSpec, codes: Iterable[str]
) -> list[tuple[str, CampaignSpec]]:
    """Grow the sweep lattice's code-choice axis over one campaign.

    Returns ``(label, spec)`` pairs, one per *distinct* code in input
    order — the same dedup discipline as the design-point lattice:
    duplicate axis values collapse and order is preserved. ``"off"`` /
    ``"none"`` denote the unprotected abstract fail-safe (``ecc=None``)
    so a fan always can carry the control point; both spellings dedup
    to one ``"off"`` entry. Unknown code names raise ``ValueError``
    through :class:`~repro.faults.campaign.CampaignSpec` validation.
    """
    fanned: list[tuple[str, CampaignSpec]] = []
    seen: set[str] = set()
    for name in codes:
        label = name.strip().lower()
        if not label:
            continue
        ecc = None if label in ECC_OFF_LABELS else label
        key = ecc if ecc is not None else "off"
        if key in seen:
            continue
        seen.add(key)
        point = spec if ecc == spec.ecc else replace(spec, ecc=ecc)
        fanned.append((key, point))
    if not fanned:
        raise ValueError("code axis is empty")
    return fanned


def run_campaign_fan(
    spec: CampaignSpec,
    codes: Iterable[str],
    accel: AccelOptions | None = None,
    workers: int = 1,
    progress: Callable[[str, int, int], None] | None = None,
) -> dict[str, tuple[CampaignReport, str]]:
    """Execute one campaign per distinct code-axis value.

    Every point is the *same* campaign — uid, seed, strike plan — with
    only the decode semantics swapped, so the per-code reports are
    directly differential. Within each point the usual campaign
    machinery (golden-run memoization, shard accel) applies unchanged.
    Returns ``label -> (report, rendered text)`` in axis order.
    """
    from repro.faults.campaign import execute_campaign

    results: dict[str, tuple[CampaignReport, str]] = {}
    for label, point in fan_campaign_codes(spec, codes):
        wrapped = (
            None
            if progress is None
            else lambda done, total, _label=label: progress(
                _label, done, total
            )
        )
        results[label] = execute_campaign(
            point, accel=accel, workers=workers, progress=wrapped
        )
    return results
