"""Machine-readable export of experiment results (CSV / JSON).

The reporting module renders for humans; this one feeds plotting
scripts and spreadsheets. Both operate on the same ``Series`` /
mapping structures the experiment drivers return.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable

from repro.harness.experiments import Series


def series_to_csv(series_list: list[Series], value_format: str = "{:.6f}") -> str:
    """Columns: benchmark, then one column per series, plus a geomean row."""
    if not series_list:
        return ""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["benchmark"] + [s.name for s in series_list])
    for uid in series_list[0].per_benchmark:
        writer.writerow(
            [uid]
            + [value_format.format(s.per_benchmark[uid]) for s in series_list]
        )
    writer.writerow(
        ["geomean"] + [value_format.format(s.geomean) for s in series_list]
    )
    return buffer.getvalue()


def series_to_json(series_list: list[Series]) -> str:
    """JSON object: series name -> {benchmark: value, "_geomean": value}."""
    payload = {
        s.name: {**s.per_benchmark, "_geomean": s.geomean}
        for s in series_list
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def mapping_to_csv(
    data: dict[str, tuple], headers: Iterable[str], value_format: str = "{:.6f}"
) -> str:
    """CSV for ``{benchmark: (v1, v2, ...)}`` results (Figures 24/26)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["benchmark", *headers])
    for uid, values in data.items():
        writer.writerow([uid] + [value_format.format(v) for v in values])
    return buffer.getvalue()


def breakdown_to_csv(breakdown: dict[str, dict[str, float]]) -> str:
    """CSV for the Figure 23 store breakdown."""
    from repro.harness.experiments import BREAKDOWN_CATEGORIES

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["benchmark", *BREAKDOWN_CATEGORIES])
    for uid, cats in breakdown.items():
        writer.writerow(
            [uid] + [f"{cats[cat]:.6f}" for cat in BREAKDOWN_CATEGORIES]
        )
    return buffer.getvalue()


def campaign_to_json(report) -> str:
    """Deterministic JSON of a :class:`CampaignReport` aggregate — the
    artifact the resume byte-identity guarantee is stated over."""
    return report.to_json()


def campaign_to_csv(report) -> str:
    """Long-form CSV of a fault-injection campaign: one row per
    (target, variant, outcome kind) with its count."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["target", "variant", "kind", "count"])
    per_target = report.per_target()
    for target in sorted(per_target):
        for variant in report.spec.variants:
            hist = per_target[target][variant]
            for kind in sorted(hist):
                writer.writerow([target, variant, kind, hist[kind]])
    return buffer.getvalue()


def table1_to_json(table1) -> str:
    """Table 1 rows plus the two ratio lines, as JSON."""
    area_ratio, energy_ratio = table1.turnpike_vs_sb4
    big_area, big_energy = table1.sb40_vs_sb4
    payload = {
        "rows": [
            {
                "name": row.name,
                "area_um2": row.area_um2,
                "dynamic_energy_pj": row.dynamic_energy_pj,
            }
            for row in table1.rows()
        ],
        "turnpike_vs_sb4": {"area": area_ratio, "energy": energy_ratio},
        "sb40_vs_sb4": {"area": big_area, "energy": big_energy},
    }
    return json.dumps(payload, indent=2)
