"""Persistent on-disk artifact cache for simulation products.

Traces and timing results are pure functions of (benchmark uid, compiler
config, hardware config, core config) *and of the simulator's own source
code*. This module keys every artifact by a digest of the whole
``repro`` package source plus the reprs of the frozen config dataclasses,
so a warm cache can never serve results produced by different simulator
semantics: touching any ``src/repro`` file invalidates everything.

Three artifact kinds are stored:

* ``trace-<key>.pkl`` — the dynamic trace of one (uid, compiler-config)
  pair, as pickled tuples. Branch-id fields inside a trace come from the
  process-global instruction uid counter, so cached bytes can differ from
  a fresh trace by a constant offset — the bimodal predictor indexes its
  table by ``uid & mask``, and aliasing depends only on pairwise uid
  *differences*, which are structural. Timing statistics computed from a
  cached trace are therefore identical to those from a fresh one.
* ``stats-<key>.json`` — a finished :class:`~repro.arch.stats.SimStats`
  for one (uid, compiler, hardware, core) combination.
* ``golden-<key>.pkl`` — a fault-free
  :class:`~repro.faults.snapshot.GoldenRecord` (periodic machine
  snapshots plus the per-tick fingerprint stream) for one (uid,
  resilience-config, snapshot-interval, max-steps) combination, used to
  accelerate fault-injection campaigns.
* ``vuln-<key>.json`` — a serialized
  :class:`~repro.verify.vuln.VulnerabilityMap` (bit-level
  masked/vulnerable classification) for one (uid, scheme, sb-size,
  wcdl, variants, max-steps) combination.
* ``codegen-<key>.py`` — a generated superblock module (see
  :mod:`repro.runtime.codegen`) for one (uid, compiler-config) pair,
  stored as source text with a self-describing header that pins the
  program's structural digest and a canonical source digest
  (``repro cache verify`` recompiles one and compares digests).

Writes are atomic (temp file + ``os.replace``), so any number of
processes — the multiprocess shards of :mod:`repro.harness.runner`
included — may share one cache directory without locking. Every load is
failure-tolerant: a corrupt or truncated artifact is treated as a miss
and rewritten.

The cache root resolves in order:
1. ``REPRO_CACHE_DIR`` environment variable (``0``/``off`` disables);
2. ``~/.cache/repro-turnpike``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path

from repro.arch.config import CoreConfig, ResilienceHardwareConfig
from repro.arch.stats import SimStats
from repro.compiler.config import CompilerConfig

_FORMAT_VERSION = 1
_code_digest: str | None = None


def code_digest() -> str:
    """Digest of every ``repro`` source file (computed once per process)."""
    global _code_digest
    if _code_digest is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        hasher = hashlib.sha256()
        hasher.update(str(_FORMAT_VERSION).encode())
        for path in sorted(root.rglob("*.py")):
            hasher.update(str(path.relative_to(root)).encode())
            hasher.update(path.read_bytes())
        _code_digest = hasher.hexdigest()
    return _code_digest


def sync_generation() -> int:
    """Sync the default cache's generation marker; 0 when disabled.

    Fabric worker nodes call this at startup so a node whose checkout
    moved on prunes dead-generation artifacts before taking leases.
    """
    cache = ArtifactCache.default()
    return cache.sync_generation() if cache is not None else 0


def _key(*parts: object) -> str:
    text = "|".join([code_digest(), *[repr(p) for p in parts]])
    return hashlib.sha256(text.encode()).hexdigest()[:40]


def human_size(n: int) -> str:
    """Human-readable byte count (``1023 B``, ``4.2 KiB``, ``1.3 MiB``)."""
    size = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{int(size)} {unit}" if unit == "B" else f"{size:.1f} {unit}"
        size /= 1024
    raise AssertionError("unreachable")


class ArtifactCache:
    """File-per-artifact cache under one root directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)

    @staticmethod
    def default() -> "ArtifactCache | None":
        """The environment-configured cache, or None when disabled.

        Never raises: an unusable cache directory (read-only home,
        sandboxed filesystem) degrades to no persistence.
        """
        env = os.environ.get("REPRO_CACHE_DIR")
        if env is not None and env.strip().lower() in ("", "0", "off", "none"):
            return None
        root = env or os.path.join("~", ".cache", "repro-turnpike")
        try:
            return ArtifactCache(root)
        except OSError:
            return None

    # -- keys -------------------------------------------------------------

    @staticmethod
    def trace_key(uid: str, compiler: CompilerConfig) -> str:
        return _key("trace", uid, compiler)

    @staticmethod
    def stats_key(
        uid: str,
        compiler: CompilerConfig,
        hardware: ResilienceHardwareConfig,
        core: CoreConfig,
    ) -> str:
        return _key("stats", uid, compiler, hardware, core)

    @staticmethod
    def sweep_key(
        uid: str,
        digest: str,
        hardware: ResilienceHardwareConfig,
        core: CoreConfig,
    ) -> str:
        """Content-addressed key of one sweep design point.

        Identified by the *structural program digest* rather than the
        compiler config, so two configs that compile to the same program
        share one stats artifact across figures (``load_stats`` /
        ``store_stats`` work with this key — a sweep point is stored as
        an ordinary ``stats-<key>.json``).
        """
        return _key("sweep", uid, digest, hardware, core)

    @staticmethod
    def golden_key(
        uid: str,
        config: object,
        interval: int | None,
        max_steps: int,
    ) -> str:
        """Key for a fault-free :class:`GoldenRecord`.

        ``config`` is the machine's frozen ``ResilienceConfig`` (keyed by
        repr, like the compiler configs above); the snapshot interval and
        step budget are part of the identity because they change the
        record's snapshot grid and timeout-splice arithmetic.
        """
        return _key("golden", uid, config, interval, max_steps)

    @staticmethod
    def codegen_key(uid: str, compiler: CompilerConfig) -> str:
        """Key for a generated codegen module.

        Same identity as a trace — (uid, compiler-config) plus the
        source digest baked into :func:`_key` — because the module is a
        pure function of the compiled program and its (deterministic)
        warmup profile.
        """
        return _key("codegen", uid, compiler)

    @staticmethod
    def vuln_key(
        uid: str,
        scheme: str,
        sb_size: int,
        wcdl: int,
        variants: tuple[str, ...],
        max_steps: int,
    ) -> str:
        """Key for a serialized :class:`VulnerabilityMap`.

        The scheme + SB size identify the compiled program; WCDL,
        variant set and step budget identify the analysis run (they
        change structure occupancy and the committed horizon guard).
        """
        return _key("vuln", uid, scheme, sb_size, wcdl, variants, max_steps)

    # -- IO ----------------------------------------------------------------

    def _write_atomic(self, path: Path, data: bytes) -> None:
        try:
            fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp-")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(data)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # persistence is best-effort

    def load_trace(self, key: str) -> list[tuple] | None:
        path = self.root / f"trace-{key}.pkl"
        try:
            with open(path, "rb") as fh:
                trace = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            return None
        if not isinstance(trace, list):
            return None
        return trace

    def store_trace(self, key: str, trace: list[tuple]) -> None:
        data = pickle.dumps(trace, protocol=pickle.HIGHEST_PROTOCOL)
        self._write_atomic(self.root / f"trace-{key}.pkl", data)

    def load_stats(self, key: str) -> SimStats | None:
        path = self.root / f"stats-{key}.json"
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return None
        try:
            return SimStats(**data)
        except TypeError:
            return None

    def store_stats(self, key: str, stats: SimStats) -> None:
        data = json.dumps(dataclasses.asdict(stats), sort_keys=True)
        self._write_atomic(self.root / f"stats-{key}.json", data.encode())

    def load_golden(self, key: str):
        """Load a pickled :class:`GoldenRecord`, or None on any miss.

        The import is deferred: ``repro.faults`` imports this module for
        campaign artifact storage, so a top-level import would cycle.
        """
        from repro.faults.snapshot import GoldenRecord

        path = self.root / f"golden-{key}.pkl"
        try:
            with open(path, "rb") as fh:
                record = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            return None
        if not isinstance(record, GoldenRecord):
            return None
        return record

    def store_golden(self, key: str, record) -> None:
        data = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        self._write_atomic(self.root / f"golden-{key}.pkl", data)

    def load_vuln(self, key: str) -> dict | None:
        """Load a serialized vulnerability map, or None on any miss."""
        path = self.root / f"vuln-{key}.json"
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict):
            return None
        return data

    def store_vuln(self, key: str, data: dict) -> None:
        text = json.dumps(data, sort_keys=True)
        self._write_atomic(self.root / f"vuln-{key}.json", text.encode())

    def load_codegen(self, key: str) -> str | None:
        """Load a generated module's source text, or None on any miss.

        Header/digest validation is the caller's job
        (:func:`repro.runtime.codegen.parse_header`); this layer only
        deals in bytes.
        """
        path = self.root / f"codegen-{key}.py"
        try:
            return path.read_text()
        except (OSError, UnicodeDecodeError):
            return None

    def store_codegen(self, key: str, source: str) -> None:
        self._write_atomic(self.root / f"codegen-{key}.py", source.encode())

    # -- maintenance -------------------------------------------------------

    def artifact_paths(self) -> list[Path]:
        return sorted(
            p
            for p in self.root.iterdir()
            if p.name.startswith(
                ("trace-", "stats-", "golden-", "vuln-", "codegen-")
            )
        )

    def entries(self) -> list[tuple[str, str, int]]:
        """Every artifact as ``(kind, key, bytes)``, sorted by (kind, key).

        The ordering is total and deterministic, so ``repro cache info
        --list`` output is diffable across runs and machines — the
        service integration tests and CI rely on that.
        """
        out = []
        for path in self.artifact_paths():
            kind, _, rest = path.name.partition("-")
            key = rest.rsplit(".", 1)[0]
            try:
                size = path.stat().st_size
            except OSError:
                continue
            out.append((kind, key, size))
        out.sort(key=lambda entry: (entry[0], entry[1]))
        return out

    def clear(self) -> int:
        """Delete every artifact (any generation); returns the count."""
        removed = 0
        for path in self.artifact_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    @property
    def generation_path(self) -> Path:
        return self.root / "GENERATION"

    def sync_generation(self) -> int:
        """Reconcile the cache with the current source generation.

        Artifact keys embed :func:`code_digest`, so stale entries are
        already *unreachable* — this reclaims their disk. A marker file
        records the digest the cache was last used with: on mismatch
        every artifact is pruned (they all belong to dead generations);
        on first adoption the marker is written without pruning, since
        a fabric node joining an existing shared cache must not wipe
        artifacts a same-generation sibling is still using. Returns
        the number of artifacts removed.
        """
        digest = code_digest()[:16]
        try:
            recorded = self.generation_path.read_text().strip()
        except OSError:
            recorded = None
        removed = 0
        if recorded is not None and recorded != digest:
            removed = self.clear()
        if recorded != digest:
            self._write_atomic(self.generation_path, f"{digest}\n".encode())
        return removed

    def info(self) -> dict[str, object]:
        """Summary dict for ``repro cache info``."""
        paths = self.artifact_paths()
        traces = sum(1 for p in paths if p.name.startswith("trace-"))
        goldens = sum(1 for p in paths if p.name.startswith("golden-"))
        vulns = sum(1 for p in paths if p.name.startswith("vuln-"))
        codegens = sum(1 for p in paths if p.name.startswith("codegen-"))
        bytes_by_kind: dict[str, int] = {}
        total = 0
        for path in paths:
            kind = path.name.partition("-")[0]
            try:
                size = path.stat().st_size
            except OSError:
                continue
            bytes_by_kind[kind] = bytes_by_kind.get(kind, 0) + size
            total += size
        return {
            "root": str(self.root),
            "artifacts": len(paths),
            "traces": traces,
            "stats": len(paths) - traces - goldens - vulns - codegens,
            "goldens": goldens,
            "vulns": vulns,
            "codegens": codegens,
            "bytes": total,
            "bytes_by_kind": dict(sorted(bytes_by_kind.items())),
            "code_digest": code_digest()[:16],
        }
