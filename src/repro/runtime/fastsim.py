"""Fast-path functional backend: exit-table basic-block compilation.

The reference interpreter (:mod:`repro.runtime.interpreter`) decodes and
dispatches opcode-by-opcode for every *dynamic* instruction. This module
decodes each basic block exactly once: :func:`compile_fast` lowers every
block into a specialised Python step function in which register slots,
immediates, wrap-to-32-bit arithmetic, trace tuples and branch auxiliary
bits are all folded into the generated source at compile time. Executing
the program then replays those closed-over step functions — one call per
dynamic basic block instead of one dispatch per dynamic instruction.

Generation 2 replaces the "return the next block index" convention with
an **exit table**: every step function returns a program-global *exit
id* ``e`` naming the static CFG edge it left through, and the driver
advances with three flat-table lookups::

    e = funcs[idx](R, M, T)
    steps += ESTEPS[e]        # instructions retired on that path
    counts[e] += 1            # free per-edge execution profile
    idx = ETARGET[e]          # statically known successor (-1 on RET)

Because every exit is one static CFG edge, the per-exit counter the
driver maintains anyway doubles as a complete edge profile at zero
marginal cost — :mod:`repro.runtime.superblock` consumes it directly to
form hot superblock chains, and :mod:`repro.runtime.codegen` uses those
chains to emit fused per-program modules.

The backend is held to a *bit-identical* contract with the reference
interpreter (enforced by ``tests/test_fastsim_parity.py``):

* identical final :class:`~repro.runtime.memory.Memory` image,
* identical final register map and dynamic step count,
* an identical trace, tuple for tuple — so the timing core produces the
  same cycle counts, store-buffer stalls and CLQ/coloring statistics no
  matter which backend generated the trace.

The only tolerated divergence is *where* inside an over-budget run an
:class:`ExecutionLimitExceeded` is raised: the fast backend checks the
dynamic-instruction budget at exit granularity (after the block that
crossed it) rather than per instruction, so the partial memory state at
the point of the raise may differ. Whether a run raises at all — and
the message it raises with — is identical, and successful runs are
unaffected.

Generated code for one block looks like::

    def _b3_t(R, M, T):
        A = T.append
        g5 = R[5]
        g3 = R[3]
        g5 = (((g5 + g3) + 2147483648 & 4294967295) - 2147483648)
        A((0, 5, 5, 3, -1, 2, 0))
        _a = g3 + (8)
        M[_a] = (((g5) + 2147483648 & 4294967295) - 2147483648)
        A((4, -1, 5, 3, _a, 2, 0))
        _tk = g5 < g3
        A((6, -1, 5, 3, 41, 2, 3) if _tk else (6, -1, 5, 3, 41, 2, 2))
        R[5] = g5
        return 7 if _tk else 8

Trace tuples whose fields are all static (every ALU/CKPT/BOUNDARY entry,
and both arms of every branch) become constant tuples, which CPython
folds into code-object constants: appending one is a single
``LOAD_CONST`` + call.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.isa.registers import Reg
from repro.runtime import trace as tr
from repro.runtime.interpreter import (
    ExecutionLimitExceeded,
    ExecutionResult,
    _reg_index,
)
from repro.runtime.memory import Memory, STACK_BASE

__all__ = ["ExitTable", "FastProgram", "compile_fast", "execute_fast"]


# Signed 32-bit wrap as a branch-free expression (identical results to
# memory.wrap32 for every int): ((x + 2^31) & (2^32 - 1)) - 2^31.
def _wrap(expr: str) -> str:
    return f"((({expr}) + 2147483648 & 4294967295) - 2147483648)"


_BRANCH_CMP = {
    Opcode.BEQ: "==",
    Opcode.BNE: "!=",
    Opcode.BLT: "<",
    Opcode.BGE: ">=",
}


def _alu_expr(instr: Instruction, use: Callable[[Reg], str]) -> str:
    """The exact expression :func:`interpreter._eval_alu` computes."""
    op = instr.op
    if op is Opcode.LI:
        from repro.runtime.memory import wrap32

        return repr(wrap32(instr.imm))
    if op is Opcode.MOV:
        return use(instr.srcs[0])
    if op is Opcode.ADDI:
        return _wrap(f"{use(instr.srcs[0])} + ({instr.imm})")
    if op is Opcode.MULI:
        return _wrap(f"{use(instr.srcs[0])} * ({instr.imm})")
    if op is Opcode.ANDI:
        return f"{use(instr.srcs[0])} & ({instr.imm})"
    if op is Opcode.SHLI:
        return _wrap(f"{use(instr.srcs[0])} << {instr.imm & 31}")
    if op is Opcode.SHRI:
        return f"({use(instr.srcs[0])} & 4294967295) >> {instr.imm & 31}"
    if op is Opcode.NOP:
        return "0"
    a = use(instr.srcs[0])
    b = use(instr.srcs[1])
    if op is Opcode.ADD:
        return _wrap(f"{a} + {b}")
    if op is Opcode.SUB:
        return _wrap(f"{a} - {b}")
    if op is Opcode.MUL:
        return _wrap(f"{a} * {b}")
    if op is Opcode.DIV:
        # int(a / b): C-style truncation via float division, exactly as
        # the reference interpreter computes it.
        return f"(0 if {b} == 0 else {_wrap(f'int({a} / {b})')})"
    if op is Opcode.REM:
        return f"(0 if {b} == 0 else {_wrap(f'{a} - int({a} / {b}) * {b}')})"
    if op is Opcode.AND:
        return f"{a} & {b}"
    if op is Opcode.OR:
        return f"{a} | {b}"
    if op is Opcode.XOR:
        return f"{a} ^ {b}"
    if op is Opcode.SHL:
        return _wrap(f"{a} << ({b} & 31)")
    if op is Opcode.SHR:
        return f"({a} & 4294967295) >> ({b} & 31)"
    if op is Opcode.SLT:
        return f"(1 if {a} < {b} else 0)"
    if op is Opcode.SEQ:
        return f"(1 if {a} == {b} else 0)"
    raise ValueError(f"unhandled opcode {op}")


def _region_of(instr: Instruction) -> int:
    return -1 if instr.region_id is None else instr.region_id


class ExitTable:
    """Static metadata for every exit of a compiled program.

    One row per exit, all columns parallel flat lists:

    * ``steps[e]`` — dynamic instructions retired when leaving via ``e``
      (for a superblock bail, only the executed prefix);
    * ``target[e]`` — static successor block index, -1 for RET;
    * ``bail[e]`` — 1 if the exit is a superblock mispredict bail;
    * ``writes[e]`` — sorted tuple of register slots written on that
      path (drives final-register reconstruction);
    * ``block[e]`` — index of the block whose terminator (or guard)
      owns the exit; superblock formation groups edges by this.
    """

    __slots__ = ("steps", "target", "bail", "writes", "block")

    def __init__(self) -> None:
        self.steps: list[int] = []
        self.target: list[int] = []
        self.bail: list[int] = []
        self.writes: list[tuple[int, ...]] = []
        self.block: list[int] = []

    def add(
        self,
        steps: int,
        target: int,
        bail: int,
        writes: tuple[int, ...],
        block: int,
    ) -> int:
        """Register one exit; returns its id."""
        eid = len(self.steps)
        self.steps.append(steps)
        self.target.append(target)
        self.bail.append(bail)
        self.writes.append(writes)
        self.block.append(block)
        return eid

    def __len__(self) -> int:
        return len(self.steps)


class _FnState:
    """Mutable emission state for one generated step function.

    Shared across a whole fused superblock chain, so that a register
    defined by an earlier block in the chain is read from its local
    (``g<slot>``) rather than re-loaded from ``R`` — the writeback the
    block-level path would have done is elided until an exit.
    """

    __slots__ = ("body", "defined", "loaded", "load_order", "writes", "length")

    def __init__(self) -> None:
        self.body: list[tuple[str, bool]] = []  # (line, trace_only)
        self.defined: set[str] = set()
        self.loaded: set[str] = set()
        self.load_order: list[tuple[str, int]] = []
        self.writes: set[int] = set()
        self.length = 0

    def use(self, reg: Reg) -> str:
        slot = _reg_index(reg)
        name = f"g{slot}"
        if name not in self.defined and name not in self.loaded:
            self.loaded.add(name)
            self.load_order.append((name, slot))
        return name

    def define(self, reg: Reg) -> str:
        slot = _reg_index(reg)
        name = f"g{slot}"
        self.defined.add(name)
        self.writes.add(slot)
        return name

    def emit(self, line: str, trace_only: bool = False) -> None:
        self.body.append((line, trace_only))

    def writes_tuple(self) -> tuple[int, ...]:
        return tuple(sorted(self.writes))

    def writeback_lines(self) -> list[str]:
        return sorted(f"R[{slot}] = g{slot}" for slot in self.writes)

    def prologue_lines(self) -> list[str]:
        return [f"{name} = R[{slot}]" for name, slot in self.load_order]

    def assemble(self, tail: list[str]) -> tuple[list[str], list[str]]:
        """(trace_lines, plain_lines) for the function body + ``tail``.

        The traced variant batches runs of *constant* trace appends
        (every ALU/CKPT/BOUNDARY tuple — no ``_a``, no branch
        conditional) into a single ``T.extend`` of a constant tuple of
        tuples, which CPython folds into one code-object constant: a
        run of N appends costs one ``LOAD_CONST`` + one call instead of
        N. Order, and therefore the trace, is unchanged.
        """
        traced_body = self.prologue_lines() + [
            line for line, _ in self.body
        ]
        traced_body = _batch_const_appends(traced_body)
        plain_body = self.prologue_lines() + [
            line for line, trace_only in self.body if not trace_only
        ]
        prologue = ["A = T.append"]
        if any(line.startswith("E((") for line in traced_body):
            prologue.append("E = T.extend")
        return prologue + traced_body + tail, plain_body + tail


def _is_const_append(line: str) -> bool:
    """True for ``A((<literals>))`` — a constant trace-tuple append."""
    return (
        line.startswith("A((")
        and line.endswith("))")
        and "_a" not in line
        and " if " not in line
    )


def _batch_const_appends(lines: list[str]) -> list[str]:
    """Merge consecutive constant appends into one ``E((t1, t2, ...))``."""
    out: list[str] = []
    run: list[str] = []

    def flush() -> None:
        if len(run) == 1:
            out.append(run[0])
        elif run:
            tuples = ", ".join(line[2:-1] for line in run)
            out.append(f"E(({tuples}))")
        run.clear()

    for line in lines:
        if _is_const_append(line):
            run.append(line)
        else:
            flush()
            out.append(line)
    flush()
    return out


def _lower_block_body(
    block_instrs: list[Instruction],
    st: _FnState,
    here_order: int,
    block_order: dict[str, int],
    indent: str = "",
    uid_base: int = 0,
) -> Instruction | None:
    """Lower one block's instructions into ``st``; return the terminator.

    Straight-line instructions (including a branch's comparison and every
    trace append) are emitted in place; the caller decides what control
    transfer to generate for the returned terminator — a ``return`` for
    the block-level path, a guard-and-bail for a superblock interior.
    Returns None when the block falls off its end without a terminator.

    ``uid_base`` is subtracted from every branch id folded into a trace
    tuple. Execution always uses 0 (raw, process-global ids, so traces
    are bit-identical across backends within one process); the codegen
    cache hashes a second render rebased to the program's minimum uid,
    which makes the content digest process-invariant.
    """

    def emit(line: str, trace_only: bool = False) -> None:
        st.emit(indent + line, trace_only)

    for instr in block_instrs:
        st.length += 1
        op = instr.op
        srcs = instr.srcs

        if op is Opcode.BOUNDARY:
            emit(
                f"A((7, -1, -1, -1, -1, {instr.region_id or 0}, 0))",
                trace_only=True,
            )
            continue

        if op is Opcode.LD:
            base = st.use(srcs[0])
            emit(f"_a = {base} + ({instr.imm})" if instr.imm else f"_a = {base}")
            s1 = _reg_index(srcs[0])
            assert instr.dest is not None
            dest = st.define(instr.dest)
            emit(f"{dest} = M.get(_a, 0)")
            emit(
                f"A((3, {_reg_index(instr.dest)}, {s1}, -1, _a,"
                f" {_region_of(instr)}, 0))",
                trace_only=True,
            )
            continue

        if op is Opcode.ST:
            value = st.use(srcs[0])
            base = st.use(srcs[1])
            emit(f"_a = {base} + ({instr.imm})" if instr.imm else f"_a = {base}")
            emit(f"M[_a] = {_wrap(value)}")
            kind_ord = tr.STORE_KIND_ORDINAL.get(instr.store_kind, 0)
            emit(
                f"A((4, -1, {_reg_index(srcs[0])}, {_reg_index(srcs[1])},"
                f" _a, {_region_of(instr)}, {kind_ord}))",
                trace_only=True,
            )
            continue

        if op is Opcode.CKPT:
            emit(
                f"A((5, -1, {_reg_index(srcs[0])}, -1, -1,"
                f" {_region_of(instr)}, 0))",
                trace_only=True,
            )
            continue

        if op in _BRANCH_CMP:
            lhs = st.use(srcs[0])
            rhs = st.use(srcs[1])
            backward = 2 if block_order[instr.targets[0]] <= here_order else 0
            s1, s2 = _reg_index(srcs[0]), _reg_index(srcs[1])
            taken_tup = (
                f"(6, -1, {s1}, {s2}, {instr.uid - uid_base}, {_region_of(instr)},"
                f" {1 | backward})"
            )
            fall_tup = (
                f"(6, -1, {s1}, {s2}, {instr.uid - uid_base}, {_region_of(instr)},"
                f" {backward})"
            )
            emit(f"_tk = {lhs} {_BRANCH_CMP[op]} {rhs}")
            emit(f"A({taken_tup} if _tk else {fall_tup})", trace_only=True)
            return instr

        if op is Opcode.JMP:
            backward = 2 if block_order[instr.targets[0]] <= here_order else 0
            emit(
                f"A((6, -1, -1, -1, {instr.uid - uid_base}, {_region_of(instr)},"
                f" {1 | backward | 4}))",
                trace_only=True,
            )
            return instr

        if op is Opcode.RET:
            emit("A((8, -1, -1, -1, -1, -1, 0))", trace_only=True)
            return instr

        # ALU family.
        expr = _alu_expr(instr, st.use)
        dest_slot = -1
        if instr.dest is not None:
            dest_slot = _reg_index(instr.dest)
            emit(f"{st.define(instr.dest)} = {expr}")
        src1 = _reg_index(srcs[0]) if len(srcs) > 0 else -1
        src2 = _reg_index(srcs[1]) if len(srcs) > 1 else -1
        emit(
            f"A(({tr.kind_of_opcode(op)}, {dest_slot}, {src1}, {src2}, -1,"
            f" {_region_of(instr)}, 0))",
            trace_only=True,
        )
    return None


class _BlockCode:
    """Codegen result for one step function (block or superblock)."""

    __slots__ = ("length", "trace_lines", "plain_lines")

    def __init__(self, length: int, trace_lines: list[str], plain_lines: list[str]):
        self.length = length
        self.trace_lines = trace_lines
        self.plain_lines = plain_lines


def _gen_block(
    block_instrs: list[Instruction],
    label: str,
    block_idx: int,
    label_index: dict[str, int],
    block_order: dict[str, int],
    exits: ExitTable,
    uid_base: int = 0,
) -> _BlockCode:
    """Lower one basic block to a step function, registering its exits."""
    st = _FnState()
    term = _lower_block_body(
        block_instrs, st, block_order[label], block_order, uid_base=uid_base
    )
    writes = st.writes_tuple()
    if term is None:
        # Mirror the interpreter's error for non-terminated blocks.
        ret = f"raise RuntimeError({f'fell off the end of block {label!r}'!r})"
    elif term.op is Opcode.RET:
        ret = f"return {exits.add(st.length, -1, 0, writes, block_idx)}"
    elif term.op is Opcode.JMP:
        target = label_index[term.targets[0]]
        ret = f"return {exits.add(st.length, target, 0, writes, block_idx)}"
    else:
        e_taken = exits.add(
            st.length, label_index[term.targets[0]], 0, writes, block_idx
        )
        e_fall = exits.add(
            st.length, label_index[term.targets[1]], 0, writes, block_idx
        )
        ret = f"return {e_taken} if _tk else {e_fall}"
    tail = st.writeback_lines() + [ret]
    trace_lines, plain_lines = st.assemble(tail)
    return _BlockCode(st.length, trace_lines, plain_lines)


StepFn = Callable[..., int]


class FastProgram:
    """A program lowered to per-block step functions.

    The lowering snapshots the program at compile time: mutating the
    source :class:`Program` afterwards is NOT reflected (unlike the
    reference interpreter, which re-reads instructions every step).
    """

    def __init__(self, program: Program) -> None:
        self.name = program.name
        self._sp = program.register_file.stack_pointer
        self._sp_slot = _reg_index(self._sp)
        self.exits = ExitTable()

        label_index = {b.label: i for i, b in enumerate(program.blocks)}
        block_order = {b.label: i for i, b in enumerate(program.blocks)}
        if not program.blocks:
            # Match Program.entry's complaint lazily at execute time.
            self._lens: list[int] = []
            self._tfuncs: list[StepFn] = []
            self._pfuncs: list[StepFn] = []
            self.slot_registers: dict[int, Reg] = {}
            self.num_slots = 32
            return

        codes = [
            _gen_block(
                b.instructions, b.label, i, label_index, block_order, self.exits
            )
            for i, b in enumerate(program.blocks)
        ]
        self._lens = [c.length for c in codes]

        src_lines: list[str] = []
        for i, code in enumerate(codes):
            src_lines.append(f"def _b{i}_t(R, M, T):")
            src_lines.extend(f"    {line}" for line in code.trace_lines)
            src_lines.append(f"def _b{i}_p(R, M):")
            src_lines.extend(f"    {line}" for line in code.plain_lines)
        namespace: dict[str, StepFn] = {}
        exec(  # noqa: S102 - the source is generated above, not user input
            compile("\n".join(src_lines), f"<fastsim:{self.name}>", "exec"),
            namespace,
        )
        self._tfuncs = [namespace[f"_b{i}_t"] for i in range(len(codes))]
        self._pfuncs = [namespace[f"_b{i}_p"] for i in range(len(codes))]

        self.slot_registers = {self._sp_slot: self._sp}
        for reg in program.all_registers():
            self.slot_registers[_reg_index(reg)] = reg
        slots = [self._sp_slot, *self.slot_registers]
        self.num_slots = max(32, max(slots) + 1)

    def execute(
        self,
        memory: Memory | None = None,
        initial_registers: dict[Reg, int] | None = None,
        max_steps: int = 2_000_000,
        collect_trace: bool = False,
        exit_counts: list[int] | None = None,
    ) -> ExecutionResult:
        """Run to RET; same contract as :func:`interpreter.execute`.

        When ``exit_counts`` is given, the per-exit execution counts of
        this run are accumulated into it (extending it to the number of
        exits if needed) — a complete static-edge profile for
        :func:`repro.runtime.superblock.form_chains`.
        """
        if not self._lens:
            from repro.isa.program import ProgramError

            raise ProgramError("program has no blocks")
        mem = memory if memory is not None else Memory()
        num_slots = self.num_slots
        init_items = list(initial_registers.items()) if initial_registers else []
        for reg, _ in init_items:
            if _reg_index(reg) >= num_slots:
                num_slots = _reg_index(reg) + 1
        R = [0] * num_slots
        R[self._sp_slot] = STACK_BASE
        for reg, value in init_items:
            R[_reg_index(reg)] = value

        M = mem.cells
        esteps = self.exits.steps
        etarget = self.exits.target
        counts = [0] * len(esteps)
        trace: list[tuple] | None = None
        steps = 0
        idx = 0
        limit_msg = f"{self.name}: exceeded {max_steps} dynamic instructions"
        if collect_trace:
            trace = []
            tfuncs = self._tfuncs
            while idx >= 0:
                e = tfuncs[idx](R, M, trace)
                steps += esteps[e]
                if steps > max_steps:
                    raise ExecutionLimitExceeded(limit_msg)
                counts[e] += 1
                idx = etarget[e]
        else:
            pfuncs = self._pfuncs
            while idx >= 0:
                e = pfuncs[idx](R, M)
                steps += esteps[e]
                if steps > max_steps:
                    raise ExecutionLimitExceeded(limit_msg)
                counts[e] += 1
                idx = etarget[e]

        if exit_counts is not None:
            if len(exit_counts) < len(counts):
                exit_counts.extend([0] * (len(counts) - len(exit_counts)))
            for e, c in enumerate(counts):
                if c:
                    exit_counts[e] += c

        regs: dict[Reg, int] = {self._sp: R[self._sp_slot]}
        for reg, _ in init_items:
            regs[reg] = R[_reg_index(reg)]
        written: set[int] = set()
        ewrites = self.exits.writes
        for e, c in enumerate(counts):
            if c:
                written.update(ewrites[e])
        slot_registers = self.slot_registers
        for slot in written:
            regs[slot_registers[slot]] = R[slot]
        return ExecutionResult(mem, regs, steps, trace)


def compile_fast(program: Program) -> FastProgram:
    """Lower ``program`` to per-block step functions (decode once)."""
    return FastProgram(program)


def execute_fast(
    program: Program,
    memory: Memory | None = None,
    initial_registers: dict[Reg, int] | None = None,
    max_steps: int = 2_000_000,
    collect_trace: bool = False,
) -> ExecutionResult:
    """Drop-in replacement for :func:`interpreter.execute`.

    Compiles then runs; callers replaying the same program many times
    should hold a :class:`FastProgram` (via :func:`compile_fast`) to pay
    the block-lowering cost once.
    """
    return FastProgram(program).execute(
        memory,
        initial_registers=initial_registers,
        max_steps=max_steps,
        collect_trace=collect_trace,
    )
