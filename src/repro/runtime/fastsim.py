"""Fast-path functional backend: basic-block micro-trace compilation.

The reference interpreter (:mod:`repro.runtime.interpreter`) decodes and
dispatches opcode-by-opcode for every *dynamic* instruction. This module
decodes each basic block exactly once: :func:`compile_fast` lowers every
block into a specialised Python step function in which register slots,
immediates, wrap-to-32-bit arithmetic, trace tuples and branch auxiliary
bits are all folded into the generated source at compile time. Executing
the program then replays those closed-over step functions — one call per
dynamic basic block instead of one dispatch per dynamic instruction.

The backend is held to a *bit-identical* contract with the reference
interpreter (enforced by ``tests/test_fastsim_parity.py``):

* identical final :class:`~repro.runtime.memory.Memory` image,
* identical final register map and dynamic step count,
* an identical trace, tuple for tuple — so the timing core produces the
  same cycle counts, store-buffer stalls and CLQ/coloring statistics no
  matter which backend generated the trace.

The only tolerated divergence is *where* inside an over-budget block an
:class:`ExecutionLimitExceeded` is raised: the fast backend checks the
dynamic-instruction budget at block granularity (before running a block
that would cross it) rather than per instruction, so the partial memory
state at the point of the raise may differ. Successful runs are
unaffected.

Generated code for one block looks like::

    def _b3(R, M, T):
        A = T.append
        g5 = R[5]
        g3 = R[3]
        g5 = (((g5 + g3) + 2147483648 & 4294967295) - 2147483648)
        A((0, 5, 5, 3, -1, 2, 0))
        _a = g3 + (8)
        M[_a] = (((g5) + 2147483648 & 4294967295) - 2147483648)
        A((4, -1, 5, 3, _a, 2, 0))
        _tk = g5 < g3
        A((6, -1, 5, 3, 41, 2, 3) if _tk else (6, -1, 5, 3, 41, 2, 2))
        R[5] = g5
        return 3 if _tk else 4

Trace tuples whose fields are all static (every ALU/CKPT/BOUNDARY entry,
and both arms of every branch) become constant tuples, which CPython
folds into code-object constants: appending one is a single
``LOAD_CONST`` + call.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.isa.registers import Reg
from repro.runtime import trace as tr
from repro.runtime.interpreter import (
    ExecutionLimitExceeded,
    ExecutionResult,
    _reg_index,
)
from repro.runtime.memory import Memory, STACK_BASE

__all__ = ["FastProgram", "compile_fast", "execute_fast"]


# Signed 32-bit wrap as a branch-free expression (identical results to
# memory.wrap32 for every int): ((x + 2^31) & (2^32 - 1)) - 2^31.
def _wrap(expr: str) -> str:
    return f"((({expr}) + 2147483648 & 4294967295) - 2147483648)"


_BRANCH_CMP = {
    Opcode.BEQ: "==",
    Opcode.BNE: "!=",
    Opcode.BLT: "<",
    Opcode.BGE: ">=",
}


def _alu_expr(instr: Instruction, use) -> str:
    """The exact expression :func:`interpreter._eval_alu` computes."""
    op = instr.op
    if op is Opcode.LI:
        from repro.runtime.memory import wrap32

        return repr(wrap32(instr.imm))
    if op is Opcode.MOV:
        return use(instr.srcs[0])
    if op is Opcode.ADDI:
        return _wrap(f"{use(instr.srcs[0])} + ({instr.imm})")
    if op is Opcode.MULI:
        return _wrap(f"{use(instr.srcs[0])} * ({instr.imm})")
    if op is Opcode.ANDI:
        return f"{use(instr.srcs[0])} & ({instr.imm})"
    if op is Opcode.SHLI:
        return _wrap(f"{use(instr.srcs[0])} << {instr.imm & 31}")
    if op is Opcode.SHRI:
        return f"({use(instr.srcs[0])} & 4294967295) >> {instr.imm & 31}"
    if op is Opcode.NOP:
        return "0"
    a = use(instr.srcs[0])
    b = use(instr.srcs[1])
    if op is Opcode.ADD:
        return _wrap(f"{a} + {b}")
    if op is Opcode.SUB:
        return _wrap(f"{a} - {b}")
    if op is Opcode.MUL:
        return _wrap(f"{a} * {b}")
    if op is Opcode.DIV:
        # int(a / b): C-style truncation via float division, exactly as
        # the reference interpreter computes it.
        return f"(0 if {b} == 0 else {_wrap(f'int({a} / {b})')})"
    if op is Opcode.REM:
        return f"(0 if {b} == 0 else {_wrap(f'{a} - int({a} / {b}) * {b}')})"
    if op is Opcode.AND:
        return f"{a} & {b}"
    if op is Opcode.OR:
        return f"{a} | {b}"
    if op is Opcode.XOR:
        return f"{a} ^ {b}"
    if op is Opcode.SHL:
        return _wrap(f"{a} << ({b} & 31)")
    if op is Opcode.SHR:
        return f"({a} & 4294967295) >> ({b} & 31)"
    if op is Opcode.SLT:
        return f"(1 if {a} < {b} else 0)"
    if op is Opcode.SEQ:
        return f"(1 if {a} == {b} else 0)"
    raise ValueError(f"unhandled opcode {op}")


class _BlockCode:
    """Codegen result for one basic block."""

    __slots__ = ("length", "writes", "trace_lines", "plain_lines")

    def __init__(self) -> None:
        self.length = 0
        self.writes: set[Reg] = set()
        self.trace_lines: list[str] = []
        self.plain_lines: list[str] = []


def _gen_block(
    block_instrs: list[Instruction],
    label: str,
    here_order: int,
    label_index: dict[str, int],
    block_order: dict[str, int],
) -> _BlockCode:
    out = _BlockCode()
    body: list[tuple[str, bool]] = []  # (line, trace_only)
    defined: set[str] = set()
    load_order: list[tuple[str, int]] = []
    loaded: set[str] = set()

    def use(reg: Reg) -> str:
        slot = _reg_index(reg)
        name = f"g{slot}"
        if name not in defined and name not in loaded:
            loaded.add(name)
            load_order.append((name, slot))
        return name

    def define(reg: Reg) -> str:
        name = f"g{_reg_index(reg)}"
        defined.add(name)
        out.writes.add(reg)
        return name

    def emit(line: str, trace_only: bool = False) -> None:
        body.append((line, trace_only))

    def region_of(instr: Instruction) -> int:
        return -1 if instr.region_id is None else instr.region_id

    terminated = False
    for instr in block_instrs:
        out.length += 1
        op = instr.op
        srcs = instr.srcs

        if op is Opcode.BOUNDARY:
            emit(
                f"A((7, -1, -1, -1, -1, {instr.region_id or 0}, 0))",
                trace_only=True,
            )
            continue

        if op is Opcode.LD:
            base = use(srcs[0])
            emit(f"_a = {base} + ({instr.imm})" if instr.imm else f"_a = {base}")
            s1 = _reg_index(srcs[0])
            dest = define(instr.dest)
            emit(f"{dest} = M.get(_a, 0)")
            emit(
                f"A((3, {_reg_index(instr.dest)}, {s1}, -1, _a,"
                f" {region_of(instr)}, 0))",
                trace_only=True,
            )
            continue

        if op is Opcode.ST:
            value = use(srcs[0])
            base = use(srcs[1])
            emit(f"_a = {base} + ({instr.imm})" if instr.imm else f"_a = {base}")
            emit(f"M[_a] = {_wrap(value)}")
            kind_ord = tr.STORE_KIND_ORDINAL.get(instr.store_kind, 0)
            emit(
                f"A((4, -1, {_reg_index(srcs[0])}, {_reg_index(srcs[1])},"
                f" _a, {region_of(instr)}, {kind_ord}))",
                trace_only=True,
            )
            continue

        if op is Opcode.CKPT:
            emit(
                f"A((5, -1, {_reg_index(srcs[0])}, -1, -1,"
                f" {region_of(instr)}, 0))",
                trace_only=True,
            )
            continue

        if op in _BRANCH_CMP:
            lhs = use(srcs[0])
            rhs = use(srcs[1])
            backward = 2 if block_order[instr.targets[0]] <= here_order else 0
            s1, s2 = _reg_index(srcs[0]), _reg_index(srcs[1])
            taken_tup = f"(6, -1, {s1}, {s2}, {instr.uid}, {region_of(instr)}, {1 | backward})"
            fall_tup = f"(6, -1, {s1}, {s2}, {instr.uid}, {region_of(instr)}, {backward})"
            emit(f"_tk = {lhs} {_BRANCH_CMP[op]} {rhs}")
            emit(f"A({taken_tup} if _tk else {fall_tup})", trace_only=True)
            ret = (
                f"return {label_index[instr.targets[0]]} if _tk"
                f" else {label_index[instr.targets[1]]}"
            )
            terminated = True
            break

        if op is Opcode.JMP:
            backward = 2 if block_order[instr.targets[0]] <= here_order else 0
            emit(
                f"A((6, -1, -1, -1, {instr.uid}, {region_of(instr)},"
                f" {1 | backward | 4}))",
                trace_only=True,
            )
            ret = f"return {label_index[instr.targets[0]]}"
            terminated = True
            break

        if op is Opcode.RET:
            emit("A((8, -1, -1, -1, -1, -1, 0))", trace_only=True)
            ret = "return -1"
            terminated = True
            break

        # ALU family.
        expr = _alu_expr(instr, use)
        dest_slot = -1
        if instr.dest is not None:
            dest_slot = _reg_index(instr.dest)
            emit(f"{define(instr.dest)} = {expr}")
        src1 = _reg_index(srcs[0]) if len(srcs) > 0 else -1
        src2 = _reg_index(srcs[1]) if len(srcs) > 1 else -1
        emit(
            f"A(({tr.kind_of_opcode(op)}, {dest_slot}, {src1}, {src2}, -1,"
            f" {region_of(instr)}, 0))",
            trace_only=True,
        )

    if not terminated:
        # Mirror the interpreter's error for non-terminated blocks.
        ret = f"raise RuntimeError({f'fell off the end of block {label!r}'!r})"

    prologue = [f"{name} = R[{slot}]" for name, slot in load_order]
    writeback = sorted(f"R[{_reg_index(r)}] = g{_reg_index(r)}" for r in out.writes)
    for traced in (True, False):
        lines = prologue + [
            line for line, trace_only in body if traced or not trace_only
        ]
        lines = (["A = T.append"] if traced else []) + lines
        lines += writeback
        lines.append(ret)
        target = out.trace_lines if traced else out.plain_lines
        target.extend(lines)
    return out


class FastProgram:
    """A program lowered to per-block step functions.

    The lowering snapshots the program at compile time: mutating the
    source :class:`Program` afterwards is NOT reflected (unlike the
    reference interpreter, which re-reads instructions every step).
    """

    def __init__(self, program: Program) -> None:
        self.name = program.name
        self._sp = program.register_file.stack_pointer
        self._sp_slot = _reg_index(self._sp)

        label_index = {b.label: i for i, b in enumerate(program.blocks)}
        block_order = {b.label: i for i, b in enumerate(program.blocks)}
        if not program.blocks:
            # Match Program.entry's complaint lazily at execute time.
            self._lens: list[int] = []
            self._writes: list[set[Reg]] = []
            self._tfuncs: list = []
            self._pfuncs: list = []
            self.num_slots = 32
            return

        codes = [
            _gen_block(
                b.instructions, b.label, block_order[b.label], label_index,
                block_order,
            )
            for b in program.blocks
        ]
        self._lens = [c.length for c in codes]
        self._writes = [c.writes for c in codes]

        src_lines: list[str] = []
        for i, code in enumerate(codes):
            src_lines.append(f"def _b{i}_t(R, M, T):")
            src_lines.extend(f"    {line}" for line in code.trace_lines)
            src_lines.append(f"def _b{i}_p(R, M):")
            src_lines.extend(f"    {line}" for line in code.plain_lines)
        namespace: dict[str, object] = {}
        exec(compile("\n".join(src_lines), f"<fastsim:{self.name}>", "exec"), namespace)
        self._tfuncs = [namespace[f"_b{i}_t"] for i in range(len(codes))]
        self._pfuncs = [namespace[f"_b{i}_p"] for i in range(len(codes))]

        slots = [self._sp_slot] + [_reg_index(r) for r in program.all_registers()]
        self.num_slots = max(32, max(slots) + 1)

    def execute(
        self,
        memory: Memory | None = None,
        initial_registers: dict[Reg, int] | None = None,
        max_steps: int = 2_000_000,
        collect_trace: bool = False,
    ) -> ExecutionResult:
        """Run to RET; same contract as :func:`interpreter.execute`."""
        if not self._lens:
            from repro.isa.program import ProgramError

            raise ProgramError("program has no blocks")
        mem = memory if memory is not None else Memory()
        num_slots = self.num_slots
        init_items = list(initial_registers.items()) if initial_registers else []
        for reg, _ in init_items:
            if _reg_index(reg) >= num_slots:
                num_slots = _reg_index(reg) + 1
        R = [0] * num_slots
        R[self._sp_slot] = STACK_BASE
        for reg, value in init_items:
            R[_reg_index(reg)] = value

        M = mem.cells
        lens = self._lens
        executed = [False] * len(lens)
        trace: list[tuple] | None = None
        steps = 0
        idx = 0
        if collect_trace:
            trace = []
            funcs = self._tfuncs
            while idx >= 0:
                steps += lens[idx]
                if steps > max_steps:
                    raise ExecutionLimitExceeded(
                        f"{self.name}: exceeded {max_steps} dynamic instructions"
                    )
                executed[idx] = True
                idx = funcs[idx](R, M, trace)
        else:
            funcs = self._pfuncs
            while idx >= 0:
                steps += lens[idx]
                if steps > max_steps:
                    raise ExecutionLimitExceeded(
                        f"{self.name}: exceeded {max_steps} dynamic instructions"
                    )
                executed[idx] = True
                idx = funcs[idx](R, M)

        regs: dict[Reg, int] = {self._sp: R[self._sp_slot]}
        for reg, _ in init_items:
            regs[reg] = R[_reg_index(reg)]
        written: set[Reg] = set()
        for i, flag in enumerate(executed):
            if flag:
                written.update(self._writes[i])
        for reg in written:
            regs[reg] = R[_reg_index(reg)]
        return ExecutionResult(mem, regs, steps, trace)


def compile_fast(program: Program) -> FastProgram:
    """Lower ``program`` to per-block step functions (decode once)."""
    return FastProgram(program)


def execute_fast(
    program: Program,
    memory: Memory | None = None,
    initial_registers: dict[Reg, int] | None = None,
    max_steps: int = 2_000_000,
    collect_trace: bool = False,
) -> ExecutionResult:
    """Drop-in replacement for :func:`interpreter.execute`.

    Compiles then runs; callers replaying the same program many times
    should hold a :class:`FastProgram` (via :func:`compile_fast`) to pay
    the block-lowering cost once.
    """
    return FastProgram(program).execute(
        memory,
        initial_registers=initial_registers,
        max_steps=max_steps,
        collect_trace=collect_trace,
    )
