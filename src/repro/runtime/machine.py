"""The resilient machine: a value-accurate model of the Turnpike protocol.

This is the normative implementation of the paper's error-containment and
recovery semantics, used for fault-injection campaigns. Time is measured
in committed instructions (WCDL in those ticks approximates cycles at
IPC~1, which is all the *semantics* need — the timing core owns cycles).

It models, end to end:

* the gated store buffer with store-to-load forwarding and quarantine;
* region instances and WCDL-delayed verification (RBB);
* checkpoint bindings — verified-checkpoint state per register, updated
  in region order, including pruned-checkpoint recovery expressions;
* the CLQ fast release of WAR-free regular stores (with the in-order
  release gate: prior regions must be verified);
* hardware coloring fast release of checkpoint stores — plus a
  deliberately *unsafe* mode that releases checkpoints without coloring,
  reproducing the paper's Figure 16 failure;
* single-event-upset injection into registers, SB entries, CLQ entries,
  the color maps, checkpoint storage slots, the PC, and raw data-memory
  words — including multi-bit events; acoustic detection within WCDL,
  per-register parity on fast-released store addresses, parity over the
  CLQ/color-map SRAM (conservative fallback on a failed check), ECC over
  checkpoint storage and the memory hierarchy (single-bit correct,
  multi-bit detect-and-halt), and region-level recovery (restore
  live-ins, restart at the recovery PC).

A fault-free resilient run must produce memory identical to the plain
interpreter; an injected run must too, unless the unsafe mode is enabled.
"""

from __future__ import annotations

import enum
import time
import weakref
from collections.abc import Callable
from dataclasses import dataclass, field, replace

from repro.arch.clq import BaseCLQ, make_clq
from repro.arch.coloring import QUARANTINE, ColorMaps
from repro.arch.rbb import RegionBoundaryBuffer, RegionInstance
from repro.arch.store_buffer import FunctionalStoreBuffer, SBEntry
from repro.compiler.pipeline import CompiledProgram
from repro.compiler.pruning import PRUNED_ANNOTATION, RecoveryExpr
from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.isa.registers import Reg
from repro.runtime.interpreter import _BRANCH_EVAL
from repro.runtime.memory import DATA_BASE, DATA_LIMIT, Memory, STACK_BASE, wrap32


class ProtocolError(Exception):
    """The resilience protocol reached an impossible/uncovered state."""


class WatchdogTimeout(ProtocolError):
    """A run exceeded its step or wall-clock budget (possible livelock)."""


class RecoveryFailure(Exception):
    """Recovery could not restore a required register binding."""


class DetectedHalt(Exception):
    """Hardware detected an uncorrectable error and failed-stop.

    Raised when ECC over checkpoint storage or the memory hierarchy sees
    a multi-bit error it can detect but not correct: the machine halts
    instead of silently consuming the corrupt word.
    """


class SnapshotError(ProtocolError):
    """snapshot()/restore() found machine state it has no rule for.

    Raised loudly instead of silently dropping state: a restored machine
    missing any field would diverge from a from-scratch run and corrupt
    the byte-identical parity guarantee of accelerated campaigns.
    """


_MASK64 = (1 << 64) - 1


def _cell_hash(addr: int, value: int) -> int:
    """64-bit mix of one memory cell for the incremental XOR fingerprint.

    Zero cells hash to 0 so a written-then-zeroed cell fingerprints the
    same as an absent one (``Memory.load`` treats both as 0).
    """
    if value == 0:
        return 0
    x = ((addr << 32) ^ value) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def memory_fingerprint(cells: dict[int, int]) -> int:
    """XOR-fold of every cell; maintained incrementally by the machine."""
    fp = 0
    for addr, value in cells.items():
        fp ^= _cell_hash(addr, value)
    return fp


@dataclass
class MachineSnapshot:
    """Picklable, plain-data image of a :class:`ResilientMachine` mid-run.

    Captured at the bottom of the run loop (after the commit at tick
    ``t``); restoring and calling :meth:`ResilientMachine.run` continues
    with state bit-identical to a from-scratch run at the same point.
    ``mem_delta`` holds either the full cell dict (``mem_full``) or only
    the cells changed since the previous snapshot of a golden recording.
    """

    label: str
    pc: int
    t: int
    steps: int
    now: int
    mem_delta: dict[int, int]
    mem_full: bool
    mem_fp: int | None
    regs: dict[int, int]
    sb: list[tuple]
    rbb: dict
    clq: dict | None
    coloring: dict
    ckpt_storage: dict[tuple[int, int], int]
    vc_bindings: dict[int, "Binding"]
    pending_bindings: dict[int, dict[int, "Binding"]]
    stats: "MachineStats"
    injection: "Injection | None"
    detection_due: int | None
    tainted_regs: tuple[int, ...]
    tainted_cells: tuple[int, ...]
    slot_flips: dict[tuple[int, int], frozenset[int]]
    mem_flips: dict[int, frozenset[int]]


class InjectionTarget(enum.Enum):
    REGISTER = "register"
    STORE_BUFFER = "store_buffer"
    CLQ = "clq"
    COLORING = "coloring"
    CHECKPOINT = "checkpoint"
    PC = "pc"
    MEMORY = "memory"


@dataclass(frozen=True)
class Injection:
    """A single-event upset to apply during a run.

    ``bits`` generalises ``bit`` to multi-bit events (double flips from a
    single energetic particle); when empty, the single ``bit`` applies.
    ``addr`` optionally pins a MEMORY injection to a specific word.
    """

    time: int  # commit tick after which the flip happens
    target: InjectionTarget
    reg: Reg | None = None  # for REGISTER flips
    bit: int = 0
    detection_delay: int = 0  # sensor latency, must be <= WCDL
    bits: tuple[int, ...] = ()  # multi-bit events; empty -> (bit,)
    addr: int | None = None  # MEMORY flips: explicit word address

    @property
    def bit_positions(self) -> tuple[int, ...]:
        return self.bits if self.bits else (self.bit,)

    def validate(self, wcdl: int) -> None:
        """Check the documented invariants; raise ``ValueError`` if broken."""
        if self.time < 1:
            raise ValueError("injection time must be >= 1")
        if self.detection_delay < 0:
            raise ValueError("sensor detection delay must be non-negative")
        if self.detection_delay > wcdl:
            raise ValueError("sensor detection delay cannot exceed WCDL")
        positions = self.bit_positions
        if len(set(positions)) != len(positions):
            raise ValueError("duplicate bit positions in multi-bit injection")
        for b in positions:
            if not 0 <= b < 32:
                raise ValueError(f"bit position {b} outside [0, 32)")
        if self.target is InjectionTarget.REGISTER and self.reg is None:
            raise ValueError("register injection needs a target register")
        if self.addr is not None:
            if self.target is not InjectionTarget.MEMORY:
                raise ValueError("addr is only meaningful for MEMORY injections")
            if self.addr < 0:
                raise ValueError("memory injection address must be non-negative")


@dataclass
class ResilienceConfig:
    """Hardware-side knobs of the protocol."""

    wcdl: int = 10
    clq_enabled: bool = True
    clq_kind: str = "compact"
    clq_size: int = 2
    coloring_enabled: bool = True
    num_colors: int = 4
    # Figure 16 negative-control: release checkpoints to their single
    # storage slot without verification or coloring. UNSAFE by design.
    unsafe_checkpoint_release: bool = False
    # Real ECC decode (repro.ecc code name) for checkpoint storage and
    # memory words instead of the abstract single-correct/double-halt
    # model. None keeps the abstract fail-safe byte-identical.
    ecc_code: str | None = None


@dataclass(slots=True)
class MachineStats:
    committed: int = 0
    regions: int = 0
    recoveries: int = 0
    parity_detections: int = 0
    warfree_released: int = 0
    quarantined_stores: int = 0
    colored_checkpoints: int = 0
    quarantined_checkpoints: int = 0
    pruned_bindings: int = 0
    sb_discards: int = 0
    ecc_corrections: int = 0
    structure_parity_trips: int = 0
    pc_parity_detections: int = 0
    # Real-code decode outcomes (--ecc mode only): the decoder applied
    # a wrong correction, or an error aliased to a valid codeword.
    ecc_miscorrections: int = 0
    ecc_silent: int = 0


# A checkpoint binding: how to obtain a register's recovery value.
#   ("value", v)           — direct value (hardened pre-entry state and
#                            the unsafe Figure 16 release path)
#   ("slot", (reg, color)) — read the ECC-protected checkpoint storage
#                            slot at recovery time
#   ("expr", expr)         — pruned checkpoint, recompute at recovery
Binding = tuple


class RegFile:
    """Flat machine register state: a dense list indexed by register number.

    Replaces the ``dict[Reg, int]`` register map on the hot path — the run
    loop reads ``vals[i]`` with precomputed operand indices instead of
    hashing :class:`Reg` objects. Absent-means-zero semantics are preserved
    by keeping every slot materialised (initialised to 0), which is
    observationally identical to ``regs.get(reg, 0)`` on a sparse dict.

    The ``vals`` list's identity is stable for the machine's lifetime:
    the run loop binds it locally, so every mutation here is in place.
    """

    __slots__ = ("vals",)

    def __init__(self, num_registers: int):
        self.vals: list[int] = [0] * num_registers

    def get(self, reg: Reg, default: int = 0) -> int:
        del default  # slots are dense; absent == 0 by construction
        return self.vals[reg.index]

    def __getitem__(self, reg: Reg) -> int:
        return self.vals[reg.index]

    def __setitem__(self, reg: Reg, value: int) -> None:
        self.vals[reg.index] = value

    def __len__(self) -> int:
        return len(self.vals)

    def clear(self) -> None:
        vals = self.vals
        for i in range(len(vals)):
            vals[i] = 0

    def items(self) -> list[tuple[Reg, int]]:
        phys = Reg.phys
        return [(phys(i), v) for i, v in enumerate(self.vals)]

    def as_index_dict(self) -> dict[int, int]:
        return dict(enumerate(self.vals))

    def load_index_dict(self, data: dict[int, int]) -> None:
        """Replace the contents in place (accepts sparse index dicts)."""
        self.clear()
        vals = self.vals
        for idx, value in data.items():
            vals[idx] = value


# -- pre-decoded dispatch ----------------------------------------------------
#
# run() executes pre-decoded instruction tuples instead of re-inspecting
# Instruction objects every iteration. Each tuple starts with a small int
# kind tag; ALU and branch instructions carry a closure specialised over
# the flat register list with operand indices and immediates bound at
# decode time. Decoding is memoised per Program (weakly, so programs are
# collectable) — a fault campaign re-running one program thousands of
# times decodes it once.

_K_BOUNDARY = 0
_K_LD = 1
_K_ST = 2
_K_CKPT = 3
_K_BR = 4
_K_JMP = 5
_K_RET = 6
_K_ALU = 7
_K_NOP = 8
_K_FELL = 9

_INF = float("inf")

# Inline wrap-to-signed-32: ((x + 2**31) & 0xFFFFFFFF) - 2**31 is
# algebraically identical to memory.wrap32 for every int x.


def _compile_alu(instr) -> Callable[[list[int]], int]:
    """One closure per ALU instruction, semantics of interpreter._eval_alu."""
    op = instr.op
    imm = instr.imm
    srcs = instr.srcs
    if op is Opcode.LI:
        v = wrap32(imm)
        return lambda R, v=v: v
    if op is Opcode.NOP:
        return lambda R: 0
    a = srcs[0].index
    if op is Opcode.MOV:
        return lambda R, a=a: R[a]
    if op is Opcode.ADDI:
        return (
            lambda R, a=a, i=imm: ((R[a] + i + 0x8000_0000) & 0xFFFF_FFFF)
            - 0x8000_0000
        )
    if op is Opcode.MULI:
        return (
            lambda R, a=a, i=imm: ((R[a] * i + 0x8000_0000) & 0xFFFF_FFFF)
            - 0x8000_0000
        )
    if op is Opcode.ANDI:
        return lambda R, a=a, i=imm: R[a] & i
    if op is Opcode.SHLI:
        s = imm & 31
        return (
            lambda R, a=a, s=s: (((R[a] << s) + 0x8000_0000) & 0xFFFF_FFFF)
            - 0x8000_0000
        )
    if op is Opcode.SHRI:
        s = imm & 31
        return lambda R, a=a, s=s: (R[a] & 0xFFFF_FFFF) >> s
    b = srcs[1].index
    if op is Opcode.ADD:
        return (
            lambda R, a=a, b=b: ((R[a] + R[b] + 0x8000_0000) & 0xFFFF_FFFF)
            - 0x8000_0000
        )
    if op is Opcode.SUB:
        return (
            lambda R, a=a, b=b: ((R[a] - R[b] + 0x8000_0000) & 0xFFFF_FFFF)
            - 0x8000_0000
        )
    if op is Opcode.MUL:
        return (
            lambda R, a=a, b=b: ((R[a] * R[b] + 0x8000_0000) & 0xFFFF_FFFF)
            - 0x8000_0000
        )
    if op is Opcode.DIV:
        return lambda R, a=a, b=b: 0 if R[b] == 0 else wrap32(int(R[a] / R[b]))
    if op is Opcode.REM:
        return (
            lambda R, a=a, b=b: 0
            if R[b] == 0
            else wrap32(R[a] - int(R[a] / R[b]) * R[b])
        )
    if op is Opcode.AND:
        return lambda R, a=a, b=b: R[a] & R[b]
    if op is Opcode.OR:
        return lambda R, a=a, b=b: R[a] | R[b]
    if op is Opcode.XOR:
        return lambda R, a=a, b=b: R[a] ^ R[b]
    if op is Opcode.SHL:
        return (
            lambda R, a=a, b=b: (
                ((R[a] << (R[b] & 31)) + 0x8000_0000) & 0xFFFF_FFFF
            )
            - 0x8000_0000
        )
    if op is Opcode.SHR:
        return lambda R, a=a, b=b: (R[a] & 0xFFFF_FFFF) >> (R[b] & 31)
    if op is Opcode.SLT:
        return lambda R, a=a, b=b: 1 if R[a] < R[b] else 0
    if op is Opcode.SEQ:
        return lambda R, a=a, b=b: 1 if R[a] == R[b] else 0
    raise ProtocolError(f"unhandled ALU opcode {op}")


def _compile_branch(op: Opcode, a: int, b: int) -> Callable[[list[int]], bool]:
    if op is Opcode.BEQ:
        return lambda R, a=a, b=b: R[a] == R[b]
    if op is Opcode.BNE:
        return lambda R, a=a, b=b: R[a] != R[b]
    if op is Opcode.BLT:
        return lambda R, a=a, b=b: R[a] < R[b]
    if op is Opcode.BGE:
        return lambda R, a=a, b=b: R[a] >= R[b]
    raise ProtocolError(f"unhandled branch opcode {op}")


def _decode_block(label: str, instructions, num_registers: int) -> list[tuple]:
    out: list[tuple] = []
    for instr in instructions:
        for reg in (instr.dest, *instr.srcs):
            if reg is None:
                continue
            if reg.is_virtual or not 0 <= reg.index < num_registers:
                raise ProtocolError(
                    f"register {reg} outside the physical register file "
                    f"in block {label!r}"
                )
        op = instr.op
        if op is Opcode.BOUNDARY:
            out.append((_K_BOUNDARY, instr.region_id))
        elif op is Opcode.LD:
            base = instr.srcs[0]
            dest = instr.dest
            out.append((_K_LD, dest.index, base.index, instr.imm, dest, base))
        elif op is Opcode.ST:
            value_reg, base = instr.srcs
            out.append(
                (_K_ST, value_reg.index, base.index, instr.imm, value_reg, base)
            )
        elif op is Opcode.CKPT:
            reg = instr.srcs[0]
            out.append((_K_CKPT, reg.index, reg))
        elif op in _BRANCH_EVAL:
            fn = _compile_branch(op, instr.srcs[0].index, instr.srcs[1].index)
            out.append((_K_BR, fn, instr.targets[0], instr.targets[1]))
        elif op is Opcode.JMP:
            out.append((_K_JMP, instr.targets[0]))
        elif op is Opcode.RET:
            out.append((_K_RET,))
        elif instr.dest is None:
            out.append((_K_NOP,))
        else:
            pruned = instr.annotations.get(PRUNED_ANNOTATION)
            out.append(
                (_K_ALU, instr.dest.index, _compile_alu(instr), instr, pruned)
            )
    # Sentinel so pc == len dispatches to the fell-off error without a
    # bounds check every iteration.
    out.append((_K_FELL, label))
    return out


_DECODE_CACHE: "weakref.WeakKeyDictionary[Program, dict[str, list[tuple]]]" = (
    weakref.WeakKeyDictionary()
)


def _decode_program(program: Program) -> dict[str, list[tuple]]:
    decoded = _DECODE_CACHE.get(program)
    if decoded is None:
        num = program.register_file.num_registers
        decoded = {
            b.label: _decode_block(b.label, b.instructions, num)
            for b in program.blocks
        }
        _DECODE_CACHE[program] = decoded
    return decoded


class ResilientMachine:
    """Executes a compiled resilient program under the Turnpike protocol."""

    def __init__(
        self,
        compiled: CompiledProgram,
        config: ResilienceConfig,
        memory: Memory | None = None,
        max_steps: int = 4_000_000,
        wall_clock_budget: float | None = None,
    ):
        if compiled.recovery is None:
            raise ValueError("program was compiled without resilience support")
        self.compiled = compiled
        self.program = compiled.program
        self.recovery_map = compiled.recovery
        self.config = config
        self.max_steps = max_steps
        self.wall_clock_budget = wall_clock_budget

        self.mem = memory if memory is not None else Memory()
        self.regs = RegFile(self.program.register_file.num_registers)
        self.sb = FunctionalStoreBuffer()
        self.rbb = RegionBoundaryBuffer(wcdl=float(config.wcdl))
        self.clq: BaseCLQ | None = (
            make_clq(config.clq_kind, config.clq_size)
            if config.clq_enabled
            else None
        )
        self.coloring = ColorMaps(
            num_registers=self.program.register_file.num_registers,
            num_colors=config.num_colors,
        )
        # Checkpoint storage: (reg index, color) -> value. The quarantine
        # pseudo-slot uses color == QUARANTINE.
        self.ckpt_storage: dict[tuple[int, int], int] = {}
        # Verified bindings per register index.
        self.vc_bindings: dict[int, Binding] = {}
        # Pending (unverified) bindings per region instance.
        self.pending_bindings: dict[int, dict[int, Binding]] = {}

        self.stats = MachineStats()

        # Fault state.
        self.injection: Injection | None = None
        self._detection_due: int | None = None
        # Earliest tick at which _process_events can have any effect: the
        # head RBB verification deadline or a pending detection. Derived
        # state (recomputed by _update_next_due at every mutation point)
        # so the run loop can skip the per-tick event scan entirely.
        self._next_due: float = _INF
        self._tainted_regs: set[Reg] = set()
        self._tainted_cells: set[int] = set()
        # Outstanding ECC syndromes: struck-but-not-yet-read words.
        self._slot_flips: dict[tuple[int, int], frozenset[int]] = {}
        self._mem_flips: dict[int, frozenset[int]] = {}

        # Acceleration state: the incremental memory fingerprint (None =
        # not maintained; captured by snapshots), a per-tick callback
        # fired at the bottom of the run loop, and the restored loop
        # position consumed by the next run() call (both excluded from
        # snapshots).
        self._mem_fp: int | None = None
        self._on_tick: Callable[[str, int, int, int], None] | None = None
        self._resume: tuple[str, int, int, int] | None = None

        self._init_registers()

    # -- setup -------------------------------------------------------------

    def _init_registers(self) -> None:
        sp = self.program.register_file.stack_pointer
        self.regs.vals[sp.index] = STACK_BASE
        # Pre-verified initial bindings: the "caller" checkpointed every
        # register before entry, so region 0 itself is recoverable.
        for idx in range(self.program.register_file.num_registers):
            value = STACK_BASE if idx == sp.index else 0
            self.vc_bindings[idx] = ("value", value)
        for reg in self.program.live_in:
            self.vc_bindings[reg.index] = ("value", self.regs.vals[reg.index])

    def set_initial_register(self, reg: Reg, value: int) -> None:
        self.regs[reg] = value
        self.vc_bindings[reg.index] = ("value", value)

    def arm_injection(self, injection: Injection) -> None:
        injection.validate(self.config.wcdl)
        if injection.reg is not None and not (
            0 <= injection.reg.index < self.program.register_file.num_registers
        ):
            raise ValueError(
                f"injection register {injection.reg} outside the register file"
            )
        self.injection = injection

    # -- snapshot / restore --------------------------------------------------

    # Every instance attribute must appear in exactly one of these two
    # sets. snapshot() audits ``vars(self)`` against them and raises
    # SnapshotError on any unclassified field, so adding machine state
    # without a snapshot rule fails loudly instead of corrupting restore.
    _SNAPSHOT_FIELDS = frozenset(
        {
            "mem",
            "regs",
            "sb",
            "rbb",
            "clq",
            "coloring",
            "ckpt_storage",
            "vc_bindings",
            "pending_bindings",
            "stats",
            "injection",
            "_detection_due",
            "_tainted_regs",
            "_tainted_cells",
            "_slot_flips",
            "_mem_flips",
            "_now",
            "_mem_fp",
        }
    )
    # Static configuration and harness plumbing: identical across the
    # runs a snapshot may move between, so capturing it would be wasted
    # bytes (and _on_tick/_resume are per-run, not machine state;
    # _next_due is derived from rbb + _detection_due and recomputed on
    # restore).
    _SNAPSHOT_EXCLUDED = frozenset(
        {
            "compiled",
            "program",
            "recovery_map",
            "config",
            "max_steps",
            "wall_clock_budget",
            "_on_tick",
            "_resume",
            "_next_due",
        }
    )

    def snapshot(
        self,
        label: str,
        pc: int,
        t: int,
        steps: int,
        prev_cells: dict[int, int] | None = None,
    ) -> MachineSnapshot:
        """Capture the machine at the bottom of the run loop.

        ``(label, pc, t, steps)`` is the loop position the caller's
        ``_on_tick`` hook received. With ``prev_cells`` (the cell dict as
        of the previous snapshot) only changed cells are stored; without
        it the snapshot is self-contained.
        """
        unknown = set(vars(self)) - self._SNAPSHOT_FIELDS - self._SNAPSHOT_EXCLUDED
        if unknown:
            raise SnapshotError(
                "machine fields without a snapshot rule: "
                f"{sorted(unknown)}; classify them in _SNAPSHOT_FIELDS "
                "or _SNAPSHOT_EXCLUDED and teach snapshot()/restore() "
                "about them"
            )
        cells = self.mem.cells
        if prev_cells is None:
            mem_delta = dict(cells)
            mem_full = True
        else:
            # Key-exact delta: a cell holding 0 is distinct from an absent
            # one here because MEMORY-injection targeting enumerates keys.
            mem_delta = {
                a: v
                for a, v in cells.items()
                if a not in prev_cells or prev_cells[a] != v
            }
            mem_full = False
        return MachineSnapshot(
            label=label,
            pc=pc,
            t=t,
            steps=steps,
            now=int(self._now),
            mem_delta=mem_delta,
            mem_full=mem_full,
            mem_fp=self._mem_fp,
            regs=self.regs.as_index_dict(),
            sb=self.sb.snapshot_state(),
            rbb=self.rbb.snapshot_state(),
            clq=self.clq.snapshot_state() if self.clq is not None else None,
            coloring=self.coloring.snapshot_state(),
            ckpt_storage=dict(self.ckpt_storage),
            vc_bindings=dict(self.vc_bindings),
            pending_bindings={
                inst: dict(bindings)
                for inst, bindings in self.pending_bindings.items()
            },
            stats=replace(self.stats),
            injection=self.injection,
            detection_due=self._detection_due,
            tainted_regs=tuple(sorted(r.index for r in self._tainted_regs)),
            tainted_cells=tuple(sorted(self._tainted_cells)),
            slot_flips=dict(self._slot_flips),
            mem_flips=dict(self._mem_flips),
        )

    def restore(
        self, snap: MachineSnapshot, cells: dict[int, int] | None = None
    ) -> None:
        """Restore a snapshot; the next run() resumes at its loop position.

        Delta snapshots need ``cells``: the fully materialised cell dict
        at the snapshot point (base memory plus every delta up to and
        including this snapshot's).
        """
        if snap.mem_full:
            self.mem.cells = dict(snap.mem_delta)
        else:
            if cells is None:
                raise SnapshotError(
                    "delta snapshot needs the materialised cell dict"
                )
            self.mem.cells = dict(cells)
        self._mem_fp = snap.mem_fp
        self.regs.load_index_dict(snap.regs)
        self.sb.restore_state(snap.sb)
        self.rbb.restore_state(snap.rbb)
        if (self.clq is None) != (snap.clq is None):
            raise SnapshotError(
                "snapshot CLQ presence does not match this machine's config"
            )
        if self.clq is not None and snap.clq is not None:
            self.clq.restore_state(snap.clq)
        self.coloring.restore_state(snap.coloring)
        self.ckpt_storage = dict(snap.ckpt_storage)
        self.vc_bindings = dict(snap.vc_bindings)
        self.pending_bindings = {
            inst: dict(bindings)
            for inst, bindings in snap.pending_bindings.items()
        }
        self.stats = replace(snap.stats)
        self.injection = snap.injection
        self._detection_due = snap.detection_due
        self._tainted_regs = {Reg.phys(i) for i in snap.tainted_regs}
        self._tainted_cells = set(snap.tainted_cells)
        self._slot_flips = dict(snap.slot_flips)
        self._mem_flips = dict(snap.mem_flips)
        self._now = snap.now
        self._resume = (snap.label, snap.pc, snap.t, snap.steps)
        self._update_next_due()

    # -- main loop -----------------------------------------------------------

    def run(self) -> MachineStats:
        program = self.program
        decoded = _decode_program(program)
        if self._resume is not None:
            # Continue from a restored snapshot (see restore()).
            label, pc, t, steps = self._resume
            self._resume = None
        else:
            label = program.entry.label
            pc = 0
            t = 0
            steps = 0
        instrs = decoded[label]
        # Hot-path locals. All of these objects are mutated strictly in
        # place during a run (restore() between runs may rebind the
        # underlying attributes, but run() re-binds these on entry).
        R = self.regs.vals
        stats = self.stats
        sb = self.sb
        rbb = self.rbb
        clq = self.clq
        mem_load = self.mem.load
        mem_flips = self._mem_flips
        tainted_regs = self._tainted_regs
        tainted_cells = self._tainted_cells
        max_steps = self.max_steps
        budget = self.wall_clock_budget
        start = time.monotonic() if budget is not None else 0.0

        while True:
            steps += 1
            if steps > max_steps:
                raise WatchdogTimeout(
                    f"{program.name}: exceeded {self.max_steps} steps "
                    "(possible recovery livelock)"
                )
            if (
                budget is not None
                and not (steps & 0xFFF)
                and time.monotonic() - start > budget
            ):
                raise WatchdogTimeout(
                    f"{program.name}: exceeded wall-clock budget "
                    f"{budget:.1f}s after {steps} steps"
                )
            # _now must track t every iteration: snapshots, region start
            # times and recovery all read it.
            self._now = t
            if t >= self._next_due:
                self._process_events(t)
                det = self._detection_due
                if det is not None and det <= t:
                    label, pc = self._do_recovery()
                    instrs = decoded[label]
                    t = max(t, int(self._now))
                    continue

            d = instrs[pc]
            kind = d[0]

            if kind == _K_BOUNDARY:
                self._on_boundary(d[1], t)
                pc += 1
                continue

            t += 1
            stats.committed += 1

            if kind == _K_ALU:
                R[d[1]] = d[2](R)
                if tainted_regs:
                    self._taint_alu(d[3])
                if d[4] is not None:
                    self._bind_pending(d[1], ("expr", d[4]))
                    stats.pruned_bindings += 1
                pc += 1
            elif kind == _K_BR:
                label = d[2] if d[1](R) else d[3]
                instrs = decoded[label]
                pc = 0
            elif kind == _K_CKPT:
                self._commit_checkpoint(d[2], R[d[1]], t)
                pc += 1
            elif kind == _K_LD:
                addr = R[d[2]] + d[3]
                forwarded = sb.forward(addr) if sb.entries else None
                if forwarded is not None:
                    value = forwarded
                elif mem_flips and addr in mem_flips:
                    value = self._ecc_load(addr)
                else:
                    value = mem_load(addr)
                R[d[1]] = value
                if tainted_regs or tainted_cells:
                    self._taint_dest(
                        d[4], addr_tainted=d[5] in tainted_regs, loaded_addr=addr
                    )
                if clq is not None and rbb.current is not None:
                    clq.record_load(rbb.current.instance, addr)
                pc += 1
            elif kind == _K_ST:
                addr = R[d[2]] + d[3]
                self._commit_store(addr, R[d[1]], d[5], d[4], t)
                pc += 1
            elif kind == _K_JMP:
                label = d[1]
                instrs = decoded[label]
                pc = 0
            elif kind == _K_NOP:
                pc += 1
            elif kind == _K_RET:
                finished = self._drain(t)
                if finished:
                    return self.stats
                # A detection fired during the drain: recover and resume.
                label, pc = self._do_recovery()
                instrs = decoded[label]
                t = max(t, int(self._now))
                continue
            else:
                raise ProtocolError(f"fell off block {d[1]!r}")

            if self.injection is not None:
                self._maybe_inject(t)
            if self._on_tick is not None:
                self._on_tick(label, pc, t, steps)

    # -- events, verification, detection ----------------------------------------

    @property
    def _recovery_requested(self) -> bool:
        return self._detection_due is not None and self._detection_due <= self._now

    _now: int = 0

    def _update_next_due(self) -> None:
        """Recompute the earliest tick _process_events could act at.

        Called at every point that queues or retires an RBB instance or
        arms/clears a detection; the run loop skips the event scan until
        this tick arrives. The RBB queue verifies strictly in order, so
        its head holds the earliest verification deadline.
        """
        unverified = self.rbb.unverified
        due = unverified[0].verify_time(self.rbb.wcdl) if unverified else _INF
        det = self._detection_due
        if det is not None and det < due:
            due = float(det)
        self._next_due = due

    def _process_events(self, t: int) -> None:
        self._now = t
        before = (
            float(self._detection_due)
            if self._detection_due is not None
            else float("inf")
        )
        due = self.rbb.due_verifications(float(t), before=before)
        sb = self.sb
        for i, inst in enumerate(due):
            # Note: _verify_instance reassigns sb.entries, so read it
            # fresh for every due instance.
            if sb.entries and any(
                not e.parity_ok
                for e in sb.entries
                if e.instance == inst.instance
            ):
                # GSB parity is checked at drain: a struck entry vetoes
                # the merge and surfaces as a detection now, so recovery
                # re-executes the region and regenerates the stores.
                for later in reversed(due[i:]):
                    self.rbb.unverified.appendleft(later)
                self.rbb.stats.instances_verified -= len(due) - i
                self._structure_parity_trip(t)
                return
            self._verify_instance(inst)
        self._update_next_due()

    def _verify_instance(self, inst: RegionInstance) -> None:
        # Merge quarantined stores to cache/memory.
        for entry in self.sb.release_instance(inst.instance):
            if entry.is_checkpoint:
                self._write_ckpt_slot((entry.reg, entry.color), entry.value)
            else:
                self._store_word(entry.addr, entry.value)
        # Promote color assignments and value/expr bindings.
        was_poisoned = self.coloring.poisoned
        self.coloring.verify(inst.instance)
        if self.coloring.poisoned and not was_poisoned:
            self._structure_parity_trip(int(self._now))
        for reg_idx, binding in self.pending_bindings.pop(inst.instance, {}).items():
            self.vc_bindings[reg_idx] = binding
        if self.clq is not None:
            self.clq.retire_region(inst.instance)

    def _maybe_inject(self, t: int) -> None:
        inj = self.injection
        if inj is None or t != inj.time:
            return
        self.injection = None
        target = inj.target
        bits = inj.bit_positions
        mask = 0
        for b in bits:
            mask |= 1 << b

        if target is InjectionTarget.REGISTER:
            reg = inj.reg
            if reg is None:
                raise ValueError("register injection needs a target register")
            vals = self.regs.vals
            vals[reg.index] = wrap32(vals[reg.index] ^ mask)
            self._tainted_regs.add(reg)
        elif target is InjectionTarget.STORE_BUFFER:
            if self.sb.entries:
                index = inj.bit % len(self.sb.entries)
                self.sb.corrupt_entry(index, *bits)
            # An empty SB means the particle hit hardened/idle storage;
            # the sensor still fires.
        elif target is InjectionTarget.CLQ:
            # Entry parity makes post-strike WAR queries conservative;
            # the acoustic detection below cleans the structure up.
            if self.clq is not None:
                self.clq.corrupt(inj.bit)
        elif target is InjectionTarget.COLORING:
            # Map parity is observed at the next assign/verify access,
            # which degrades coloring to quarantine-only (fail-safe).
            self.coloring.corrupt(inj.bit)
        elif target is InjectionTarget.CHECKPOINT:
            if self.ckpt_storage:
                keys = sorted(self.ckpt_storage)
                key = keys[(inj.time * 31 + inj.bit) % len(keys)]
                self.ckpt_storage[key] = wrap32(self.ckpt_storage[key] ^ mask)
                self._slot_flips[key] = frozenset(bits)
            # ECC resolves the syndrome at the next recovery read.
        elif target is InjectionTarget.PC:
            # The architectural PC is parity-protected in fetch: the flip
            # is caught on the next fetch, before any wrong-path
            # instruction can commit, and recovery restarts the region.
            self.stats.pc_parity_detections += 1
            self._detection_due = t
            self._update_next_due()
            return
        elif target is InjectionTarget.MEMORY:
            addr = inj.addr
            if addr is None:
                cells = sorted(
                    a for a in self.mem.cells if DATA_BASE <= a < DATA_LIMIT
                )
                if cells:
                    addr = cells[(inj.time * 31 + inj.bit) % len(cells)]
            if addr is not None:
                self._mem_write(addr, self.mem.load(addr) ^ mask)
                self._mem_flips[addr] = frozenset(bits)
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unhandled injection target {target}")
        self._detection_due = t + inj.detection_delay
        self._update_next_due()

    # -- taint tracking (parity model) ---------------------------------------

    def _taint_alu(self, instr) -> None:
        if not self._tainted_regs:
            return
        if any(src in self._tainted_regs for src in instr.srcs):
            self._tainted_regs.add(instr.dest)
        else:
            self._tainted_regs.discard(instr.dest)

    def _taint_dest(self, dest: Reg, addr_tainted: bool, loaded_addr: int) -> None:
        if addr_tainted or loaded_addr in self._tainted_cells:
            self._tainted_regs.add(dest)
        else:
            self._tainted_regs.discard(dest)

    def _record_store_taint(self, addr: int, value_reg: Reg) -> None:
        if value_reg in self._tainted_regs:
            self._tainted_cells.add(addr)
        else:
            self._tainted_cells.discard(addr)

    def _parity_trip(self, t: int) -> None:
        """A corrupted register reached a fast-release store address: the
        per-register parity bit (Section 5) detects it immediately."""
        self.stats.parity_detections += 1
        self._detection_due = t
        self._update_next_due()

    def _structure_parity_trip(self, t: int) -> None:
        """SRAM parity over a protocol structure (CLQ / color maps) failed:
        treat it like any detection — initiate recovery no later than now."""
        self.stats.structure_parity_trips += 1
        if self._detection_due is None or self._detection_due > t:
            self._detection_due = t
        self._update_next_due()

    # -- ECC over checkpoint storage and the memory hierarchy -----------------

    def _mem_write(self, addr: int, value: int) -> None:
        """Every memory write funnels through here so the incremental
        fingerprint (maintained only while acceleration is active) stays
        in sync with the cells."""
        fp = self._mem_fp
        if fp is None:
            self.mem.store(addr, value)
            return
        cells = self.mem.cells
        old = cells.get(addr, 0)
        new = wrap32(value)
        cells[addr] = new
        self._mem_fp = fp ^ _cell_hash(addr, old) ^ _cell_hash(addr, new)

    def _store_word(self, addr: int, value: int) -> None:
        """Memory write; overwriting a struck word clears its syndrome."""
        self._mem_write(addr, value)
        if self._mem_flips:
            self._mem_flips.pop(addr, None)

    def _real_ecc_decode(
        self, stored: int, flips: frozenset[int], what: str
    ) -> int:
        """Decode a struck 32-bit word through the configured real code.

        The stored cells hold the post-strike data bits; the check bits
        (not separately modelled in machine state) are those of the
        pre-strike word, so the codeword error vector is exactly the
        strike mask mapped onto the code's data positions. Whatever the
        syndrome table says, happens: a wrong correction substitutes a
        wrong value into the run, a zero syndrome passes corruption
        through silently.
        """
        from repro.ecc.codes import make_code

        assert self.config.ecc_code is not None
        code = make_code(self.config.ecc_code, 32)
        mask = 0
        error = 0
        for b in flips:
            mask |= 1 << b
            error |= 1 << code.data_positions[b]
        # Machine words are signed 32-bit; the codeword view is the raw
        # unsigned cell contents.
        original = (stored ^ mask) & 0xFFFFFFFF
        result = code.decode(code.encode(original) ^ error)
        if result.detected:
            raise DetectedHalt(
                f"{code.name} uncorrectable {len(flips)}-bit error in {what}"
            )
        if result.data == original:
            self.stats.ecc_corrections += 1
        elif result.corrected_mask:
            self.stats.ecc_miscorrections += 1
        else:
            self.stats.ecc_silent += 1
        return wrap32(result.data)

    def _ecc_load(self, addr: int) -> int:
        """Read a struck memory word: correct single-bit, halt on multi-bit."""
        flips = self._mem_flips.pop(addr)
        if self.config.ecc_code is not None:
            value = self._real_ecc_decode(
                self.mem.load(addr), flips, f"memory word {addr:#x}"
            )
            self._mem_write(addr, value)
            return value
        if len(flips) > 1:
            raise DetectedHalt(
                f"uncorrectable {len(flips)}-bit error in memory word {addr:#x}"
            )
        value = wrap32(self.mem.load(addr) ^ (1 << next(iter(flips))))
        self._mem_write(addr, value)
        self.stats.ecc_corrections += 1
        return value

    def _write_ckpt_slot(self, key: tuple[int, int], value: int) -> None:
        self.ckpt_storage[key] = value
        if self._slot_flips:
            self._slot_flips.pop(key, None)

    def _read_ckpt_slot(self, key: tuple[int, int]) -> int:
        if key not in self.ckpt_storage:
            reg_idx, color = key
            raise RecoveryFailure(
                f"checkpoint slot (r{reg_idx}, color {color}) was never written"
            )
        value = self.ckpt_storage[key]
        flips = self._slot_flips.get(key)
        if flips:
            if self.config.ecc_code is not None:
                value = self._real_ecc_decode(
                    value, flips, f"checkpoint slot {key}"
                )
                self.ckpt_storage[key] = value
                del self._slot_flips[key]
                return value
            if len(flips) > 1:
                raise DetectedHalt(
                    f"uncorrectable {len(flips)}-bit error in checkpoint "
                    f"slot {key}"
                )
            value = wrap32(value ^ (1 << next(iter(flips))))
            self.ckpt_storage[key] = value
            del self._slot_flips[key]
            self.stats.ecc_corrections += 1
        return value

    # -- stores ------------------------------------------------------------------

    def _commit_store(self, addr: int, value: int, base: Reg, value_reg: Reg, t: int) -> None:
        inst = self.rbb.current
        if inst is None:
            raise ProtocolError("store committed outside any region")
        fast = False
        if (
            self.clq is not None
            and not self.clq.store_has_war(inst.instance, addr)
            and self.sb.forward(addr) is None  # per-address order to L1
        ):
            fast = True
        if fast and base in self._tainted_regs:
            # Parity catches the corrupt address before damage is done.
            self._parity_trip(t)
            return
        if fast:
            self._store_word(addr, value)
            self._record_store_taint(addr, value_reg)
            self.stats.warfree_released += 1
        else:
            self.sb.push(
                SBEntry(
                    instance=inst.instance,
                    is_checkpoint=False,
                    addr=addr,
                    reg=-1,
                    color=QUARANTINE,
                    value=value,
                )
            )
            self._record_store_taint(addr, value_reg)
            self.stats.quarantined_stores += 1

    def _commit_checkpoint(self, reg: Reg, value: int, t: int) -> None:
        inst = self.rbb.current
        if inst is None:
            raise ProtocolError("checkpoint committed outside any region")
        if self.config.unsafe_checkpoint_release:
            # Figure 16's broken design: overwrite the register's single
            # verified storage location immediately, no coloring.
            self.vc_bindings[reg.index] = ("value", value)
            self.stats.colored_checkpoints += 1
            return
        color = QUARANTINE
        if self.config.coloring_enabled:
            was_poisoned = self.coloring.poisoned
            color = self.coloring.assign(inst.instance, reg.index)
            if self.coloring.poisoned and not was_poisoned:
                self._structure_parity_trip(t)
        if color != QUARANTINE:
            self._write_ckpt_slot((reg.index, color), value)
            self._bind_pending(reg.index, ("slot", (reg.index, color)))
            self.stats.colored_checkpoints += 1
        else:
            self.sb.push(
                SBEntry(
                    instance=inst.instance,
                    is_checkpoint=True,
                    addr=-1,
                    reg=reg.index,
                    color=QUARANTINE,
                    value=value,
                )
            )
            # The quarantine pseudo-slot is written when the region
            # verifies (SB merge), which is also when this binding can
            # first be promoted — the slot read at recovery always sees
            # the merged value.
            self._bind_pending(reg.index, ("slot", (reg.index, QUARANTINE)))
            self.stats.quarantined_checkpoints += 1

    def _bind_pending(self, reg_idx: int, binding: Binding) -> None:
        inst = self.rbb.current
        if inst is None:
            raise ProtocolError("binding outside any region")
        self.pending_bindings.setdefault(inst.instance, {})[reg_idx] = binding

    # -- region lifecycle ----------------------------------------------------------

    def _on_boundary(self, region_id: int | None, t: int) -> None:
        if region_id is None:
            raise ProtocolError("boundary without region id")
        inst = self.rbb.open_region(region_id, float(t))
        self.stats.regions += 1
        if self.clq is not None:
            self.clq.begin_region(
                inst.instance, prior_verified=self.rbb.all_prior_verified()
            )
        # A boundary only changes the head verification deadline when the
        # just-closed instance became the sole queued one; a deeper queue
        # keeps its (earlier) head, and _detection_due is untouched here.
        if len(self.rbb.unverified) == 1:
            self._update_next_due()

    def _drain(self, t: int) -> bool:
        """Program RET: wait WCDL for remaining verifications.

        Returns True when everything verified cleanly; False when a
        pending detection fired (caller must run recovery and resume).
        """
        self.rbb.close_final(float(t))
        horizon = t + self.config.wcdl + 1
        for tick in range(t, horizon + 1):
            self._process_events(tick)
            if self._recovery_requested:
                return False
        if self.rbb.unverified:
            raise ProtocolError("instances left unverified after drain")
        # Memory-scrubber pass: resolve outstanding ECC syndromes so the
        # final image never silently carries a struck word.
        for addr, flips in sorted(self._mem_flips.items()):
            if self.config.ecc_code is not None:
                self._mem_write(
                    addr,
                    self._real_ecc_decode(
                        self.mem.load(addr),
                        flips,
                        f"memory word {addr:#x} found by scrub",
                    ),
                )
                continue
            if len(flips) > 1:
                raise DetectedHalt(
                    f"uncorrectable {len(flips)}-bit error in memory "
                    f"word {addr:#x} found by scrub"
                )
            self._mem_write(
                addr, wrap32(self.mem.load(addr) ^ (1 << next(iter(flips))))
            )
            self.stats.ecc_corrections += 1
        self._mem_flips.clear()
        return True

    # -- recovery ----------------------------------------------------------------

    def _do_recovery(self) -> tuple[str, int]:
        self._detection_due = None
        self.stats.recoveries += 1

        target = self.rbb.earliest_unverified()
        if target is None:
            raise ProtocolError("detection with no region in flight")

        # 1. Discard all quarantined (possibly corrupt) stores.
        self.stats.sb_discards += self.sb.discard_all()

        # 2. Drop unverified bindings, colors, CLQ entries.
        dropped = self.rbb.discard_unverified()
        dropped_ids = [d.instance for d in dropped]
        self.coloring.discard(dropped_ids)
        for inst_id in dropped_ids:
            self.pending_bindings.pop(inst_id, None)
        if self.clq is not None:
            self.clq.discard(dropped_ids)

        # 3. The transient upset is gone; re-execution is clean.
        self._tainted_regs.clear()

        # 4. Restore the restart region's live-in registers from verified
        #    checkpoint state (the recovery block of Section 2.2 / 4.1.3).
        entry = self.recovery_map.entry(target.region_id)
        sp = self.program.register_file.stack_pointer
        # Mutate in place: the run loop holds the flat ``vals`` list.
        vals = self.regs.vals
        self.regs.clear()
        vals[sp.index] = STACK_BASE
        for reg in entry.live_in:
            vals[reg.index] = self._resolve_binding(reg.index, resolving=set())

        # 5. Reopen the region and resume at the recovery PC.
        self._on_boundary(target.region_id, int(self._now))
        return entry.block, entry.index + 1

    def _resolve_binding(self, reg_idx: int, resolving: set[int]) -> int:
        # Binding chains through pruned-checkpoint expressions can be long
        # (rematerialisation chains), but never cyclic: the pruning pass's
        # stability condition guarantees every referenced operand's
        # binding predates the referencing one. Detect violations exactly.
        if reg_idx in resolving:
            raise RecoveryFailure(
                f"cyclic reconstruction chain through r{reg_idx}"
            )
        binding = self.vc_bindings.get(reg_idx)
        if binding is None:
            raise RecoveryFailure(f"no verified binding for r{reg_idx}")
        kind, payload = binding
        if kind == "value":
            return payload
        if kind == "slot":
            return self._read_ckpt_slot(payload)
        if kind == "expr":
            resolving.add(reg_idx)
            try:
                return self._eval_expr(payload, resolving)
            finally:
                resolving.discard(reg_idx)
        raise RecoveryFailure(f"unknown binding kind {kind!r}")

    def _eval_expr(self, expr: RecoveryExpr, resolving: set[int]) -> int:
        if expr.kind == "const":
            return wrap32(expr.imm)
        if expr.kind == "ckpt":
            return self._resolve_binding(expr.regs[0].index, resolving)
        if expr.kind == "op":
            values = [
                self._resolve_binding(reg.index, resolving)
                for reg in expr.regs
            ]
            return _apply_opcode(expr.opcode, values, expr.imm)
        raise RecoveryFailure(f"unknown recovery expr kind {expr.kind!r}")


def _apply_opcode(op: Opcode, values: list[int], imm: int) -> int:
    a = values[0]
    b = values[1] if len(values) > 1 else 0
    if op is Opcode.ADDI:
        return wrap32(a + imm)
    if op is Opcode.MULI:
        return wrap32(a * imm)
    if op is Opcode.ANDI:
        return a & imm
    if op is Opcode.SHLI:
        return wrap32(a << (imm & 31))
    if op is Opcode.SHRI:
        return (a & 0xFFFF_FFFF) >> (imm & 31)
    if op is Opcode.ADD:
        return wrap32(a + b)
    if op is Opcode.SUB:
        return wrap32(a - b)
    if op is Opcode.MUL:
        return wrap32(a * b)
    if op is Opcode.DIV:
        return 0 if b == 0 else wrap32(int(a / b))
    if op is Opcode.REM:
        return 0 if b == 0 else wrap32(a - int(a / b) * b)
    if op is Opcode.AND:
        return a & b
    if op is Opcode.OR:
        return a | b
    if op is Opcode.XOR:
        return a ^ b
    if op is Opcode.SHL:
        return wrap32(a << (b & 31))
    if op is Opcode.SHR:
        return (a & 0xFFFF_FFFF) >> (b & 31)
    if op is Opcode.SLT:
        return 1 if a < b else 0
    if op is Opcode.SEQ:
        return 1 if a == b else 0
    raise RecoveryFailure(f"unsupported recovery opcode {op}")
