"""Trace-driven superblock formation and fused step-function emission.

A *superblock* here is a hot chain of basic blocks fused into one
generated Python function: the interior branch of every non-final block
becomes a **guard** that either falls through into the next block's code
(the direction the profile predicted) or **bails** — writes back the
registers defined so far and returns a dedicated bail exit whose static
target is the mispredicted block. Control then resumes on the ordinary
dispatch path, so a bail costs one early return, never a re-execution:
the instructions already retired inside the chain are accounted to the
bail exit's ``steps`` and their architectural effects are identical to
the block-at-a-time path (same trace tuples, same memory writes, same
register writebacks).

Formation consumes the free edge profile the exit-table driver of
:mod:`repro.runtime.fastsim` maintains (one counter per static CFG
edge): seeds are hot blocks in descending execution count, and a chain
follows a block's hottest outgoing edge while that edge is itself hot,
sufficiently biased, and does not close a cycle within the chain —
self-branches and irreducible loop shapes simply stop growth, and cold
targets never get fused. A block heads at most one chain but may be
duplicated into the tail of others (classic superblock tail
duplication, done here implicitly by re-lowering the block's body).

:func:`emit_module` renders a whole program — every block-level
function, every superblock function, and the flat exit/dispatch tables —
as one self-contained Python module with no imports, which
:mod:`repro.runtime.codegen` content-addresses in the artifact cache.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.runtime.fastsim import (
    ExitTable,
    _BlockCode,
    _FnState,
    _gen_block,
    _lower_block_body,
)
from repro.runtime.interpreter import _reg_index

__all__ = ["form_chains", "emit_module"]

# Formation defaults: a block is hot once it has executed MIN_COUNT
# times, and a chain extends through an edge only if that edge carries
# at least RATIO of its block's outgoing flow. CAP bounds chain length.
MIN_COUNT = 16
RATIO = 0.8
MAX_LENGTH = 16


def form_chains(
    exits: ExitTable,
    counts: Sequence[int],
    num_blocks: int,
    min_count: int = MIN_COUNT,
    ratio: float = RATIO,
    max_length: int = MAX_LENGTH,
) -> list[list[int]]:
    """Greedy hottest-successor chain formation from an edge profile.

    ``counts[e]`` is the execution count of exit ``e`` (as accumulated
    by ``FastProgram.execute(..., exit_counts=...)``). Returns chains of
    block indices, each of length >= 2, sorted by head block; every head
    appears in exactly one chain.
    """
    if len(counts) < len(exits):
        raise ValueError(
            f"profile covers {len(counts)} exits, table has {len(exits)}"
        )
    block_count = [0] * num_blocks
    out_edges: list[list[int]] = [[] for _ in range(num_blocks)]
    for e in range(len(exits)):
        block_count[exits.block[e]] += counts[e]
        out_edges[exits.block[e]].append(e)

    seeds = sorted(range(num_blocks), key=lambda b: (-block_count[b], b))
    heads: set[int] = set()
    chains: list[list[int]] = []
    for seed in seeds:
        if block_count[seed] < min_count or seed in heads:
            continue
        chain = [seed]
        members = {seed}
        cur = seed
        while len(chain) < max_length:
            edges = out_edges[cur]
            total = sum(counts[e] for e in edges)
            if total == 0:
                break
            best = max(edges, key=lambda e: (counts[e], -e))
            target = exits.target[best]
            if (
                target < 0  # RET: nothing to fuse past
                or counts[best] < min_count  # cold edge
                or counts[best] < ratio * total  # not biased enough
            ):
                break
            if target in members:
                if target == chain[0]:
                    # The hot path closes a cycle back to the chain head:
                    # unroll the whole cycle by its observed trip count
                    # (self-loops are the 1-block case). Entries into the
                    # head ~ executions not fed by the back edge.
                    entries = max(1, block_count[chain[0]] - counts[best])
                    trips = counts[best] // entries
                    repeat = min(max_length // len(chain), trips)
                    if repeat >= 2:
                        chain = chain * repeat
                break  # interior cycle (irreducible shape): stop growth
            chain.append(target)
            members.add(target)
            cur = target
        if len(chain) >= 2:
            chains.append(chain)
            heads.add(seed)
    chains.sort(key=lambda c: c[0])
    return chains


def _gen_superblock(
    program: Program,
    chain: list[int],
    label_index: dict[str, int],
    block_order: dict[str, int],
    exits: ExitTable,
    uid_base: int = 0,
) -> _BlockCode:
    """Fuse one chain of blocks into a guard-and-bail step function.

    Register locals (``g<slot>``) are shared across the whole chain:
    a value defined by an earlier block is read directly instead of
    being written back to ``R`` and re-loaded, which is where the fused
    path's speedup comes from. Each interior guard's bail exit writes
    back exactly the registers defined so far, so the architectural
    state a bail leaves behind is identical to the block-level path.
    """
    st = _FnState()
    blocks = program.blocks
    last = len(chain) - 1
    ret = ""
    for pos, bidx in enumerate(chain):
        block = blocks[bidx]
        term = _lower_block_body(
            block.instructions, st, bidx, block_order, uid_base=uid_base
        )
        if pos < last:
            next_label = blocks[chain[pos + 1]].label
            if term is None or term.op is Opcode.RET:
                raise ValueError(
                    f"block {block.label!r} cannot be a superblock interior"
                )
            if term.op is Opcode.JMP:
                if term.targets[0] != next_label:
                    raise ValueError(
                        f"chain does not follow {block.label!r}'s jump"
                    )
                continue
            taken, fall = term.targets[0], term.targets[1]
            if taken == next_label and fall == next_label:
                continue  # both arms rejoin the chain: no guard needed
            if taken == next_label:
                guard, bail_label = "if not _tk:", fall
            elif fall == next_label:
                guard, bail_label = "if _tk:", taken
            else:
                raise ValueError(
                    f"chain does not follow either arm of {block.label!r}"
                )
            e_bail = exits.add(
                st.length, label_index[bail_label], 1, st.writes_tuple(), bidx
            )
            st.emit(guard)
            for line in st.writeback_lines():
                st.emit("    " + line)
            st.emit(f"    return {e_bail}")
        else:
            writes = st.writes_tuple()
            if term is None:
                msg = f"fell off the end of block {block.label!r}"
                ret = f"raise RuntimeError({msg!r})"
            elif term.op is Opcode.RET:
                ret = f"return {exits.add(st.length, -1, 0, writes, bidx)}"
            elif term.op is Opcode.JMP:
                target = label_index[term.targets[0]]
                ret = f"return {exits.add(st.length, target, 0, writes, bidx)}"
            else:
                e_taken = exits.add(
                    st.length, label_index[term.targets[0]], 0, writes, bidx
                )
                e_fall = exits.add(
                    st.length, label_index[term.targets[1]], 0, writes, bidx
                )
                ret = f"return {e_taken} if _tk else {e_fall}"
    tail = st.writeback_lines() + [ret]
    trace_lines, plain_lines = st.assemble(tail)
    return _BlockCode(st.length, trace_lines, plain_lines)


def emit_module(
    program: Program,
    chains: list[list[int]],
    uid_base: int = 0,
) -> str:
    """Render a whole program as one self-contained Python module.

    The module holds only generated step functions and flat literal
    tables — no imports, no names beyond what is defined inside it:

    * ``_b<i>_t`` / ``_b<i>_p`` — traced / plain function per block;
    * ``_s<k>_t`` / ``_s<k>_p`` — per superblock chain;
    * ``ESTEPS`` / ``ETARGET`` / ``EBAIL`` / ``EBLOCK`` / ``EWRITES`` —
      the exit table (block exits first, then superblock exits from
      ``FIRST_SB_EXIT`` on);
    * ``DISPATCH_T`` / ``DISPATCH_P`` — per-block entry functions with
      chain heads routed to their superblock;
    * ``BLOCKS_T`` / ``BLOCKS_P`` — block-only dispatch, the
      deoptimization path when bail rates blow up;
    * ``LENS``, ``CHAINS``, ``NUM_SLOTS``, ``SP_SLOT``,
      ``FIRST_SB_EXIT`` — structural metadata pinned by golden tests.

    ``uid_base`` rebases the branch ids folded into trace tuples; the
    executable render uses 0, the content-digest render uses the
    program's minimum instruction uid (see :mod:`repro.runtime.codegen`).
    """
    label_index = {b.label: i for i, b in enumerate(program.blocks)}
    block_order = dict(label_index)
    exits = ExitTable()
    block_codes = [
        _gen_block(
            b.instructions, b.label, i, label_index, block_order, exits,
            uid_base=uid_base,
        )
        for i, b in enumerate(program.blocks)
    ]
    first_sb_exit = len(exits)
    sb_codes = [
        _gen_superblock(
            program, chain, label_index, block_order, exits, uid_base=uid_base
        )
        for chain in chains
    ]
    head_of = {chain[0]: k for k, chain in enumerate(chains)}

    sp_slot = _reg_index(program.register_file.stack_pointer)
    slots = [sp_slot] + [_reg_index(r) for r in program.all_registers()]
    num_slots = max(32, max(slots) + 1) if slots else 32

    lines: list[str] = []
    for i, code in enumerate(block_codes):
        lines.append(f"def _b{i}_t(R, M, T):")
        lines.extend(f"    {line}" for line in code.trace_lines)
        lines.append(f"def _b{i}_p(R, M):")
        lines.extend(f"    {line}" for line in code.plain_lines)
    for k, code in enumerate(sb_codes):
        lines.append(f"def _s{k}_t(R, M, T):")
        lines.extend(f"    {line}" for line in code.trace_lines)
        lines.append(f"def _s{k}_p(R, M):")
        lines.extend(f"    {line}" for line in code.plain_lines)

    n = len(block_codes)
    lines.append(f"NUM_SLOTS = {num_slots}")
    lines.append(f"SP_SLOT = {sp_slot}")
    lines.append(f"FIRST_SB_EXIT = {first_sb_exit}")
    lines.append(f"LENS = {[c.length for c in block_codes]!r}")
    lines.append(f"ESTEPS = {exits.steps!r}")
    lines.append(f"ETARGET = {exits.target!r}")
    lines.append(f"EBAIL = {exits.bail!r}")
    lines.append(f"EBLOCK = {exits.block!r}")
    lines.append(f"EWRITES = {exits.writes!r}")
    lines.append(f"CHAINS = {[list(c) for c in chains]!r}")
    disp_t = [
        f"_s{head_of[i]}_t" if i in head_of else f"_b{i}_t" for i in range(n)
    ]
    disp_p = [
        f"_s{head_of[i]}_p" if i in head_of else f"_b{i}_p" for i in range(n)
    ]
    lines.append("DISPATCH_T = [" + ", ".join(disp_t) + "]")
    lines.append("DISPATCH_P = [" + ", ".join(disp_p) + "]")
    lines.append(
        "BLOCKS_T = [" + ", ".join(f"_b{i}_t" for i in range(n)) + "]"
    )
    lines.append(
        "BLOCKS_P = [" + ", ".join(f"_b{i}_p" for i in range(n)) + "]"
    )
    return "\n".join(lines) + "\n"
