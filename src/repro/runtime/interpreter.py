"""Functional interpreter for TK programs (the golden model).

Executes a program over a :class:`Memory`, optionally emitting the
dynamic trace consumed by the timing core. Checkpoints and boundaries are
functional no-ops here (checkpoint values are recorded for observability
only); the full resilience protocol lives in
:mod:`repro.runtime.machine`.
"""

from __future__ import annotations

from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.isa.registers import Reg
from repro.runtime.memory import Memory, STACK_BASE, wrap32
from repro.runtime import trace as tr


class ExecutionLimitExceeded(RuntimeError):
    """The interpreter hit its dynamic instruction budget."""


class ExecutionResult:
    """Outcome of a functional run."""

    def __init__(
        self,
        memory: Memory,
        registers: dict[Reg, int],
        steps: int,
        trace: list[tuple] | None,
    ):
        self.memory = memory
        self.registers = registers
        self.steps = steps
        self.trace = trace

    def summary(self) -> tr.TraceSummary:
        if self.trace is None:
            raise ValueError("run was executed without trace collection")
        return tr.TraceSummary(self.trace)


def _reg_index(reg: Reg | None) -> int:
    if reg is None:
        return -1
    # Virtual registers are offset so they never collide with physical
    # indices in traces (timing runs always use physical programs).
    return reg.index if not reg.is_virtual else reg.index + 1024


def execute(
    program: Program,
    memory: Memory | None = None,
    initial_registers: dict[Reg, int] | None = None,
    max_steps: int = 2_000_000,
    collect_trace: bool = False,
) -> ExecutionResult:
    """Run ``program`` to its RET; returns final state (and trace).

    The stack pointer is initialised to ``STACK_BASE``; every other
    register starts at 0 unless overridden by ``initial_registers``.
    """
    mem = memory if memory is not None else Memory()
    regs: dict[Reg, int] = {program.register_file.stack_pointer: STACK_BASE}
    if initial_registers:
        regs.update(initial_registers)

    blocks = {b.label: b.instructions for b in program.blocks}
    block_order = {b.label: i for i, b in enumerate(program.blocks)}
    label = program.entry.label
    instrs = blocks[label]
    pc = 0
    steps = 0
    trace: list[tuple] | None = [] if collect_trace else None

    get = regs.get
    while True:
        if pc >= len(instrs):
            raise RuntimeError(f"fell off the end of block {label!r}")
        instr = instrs[pc]
        steps += 1
        if steps > max_steps:
            raise ExecutionLimitExceeded(
                f"{program.name}: exceeded {max_steps} dynamic instructions"
            )
        op = instr.op
        srcs = instr.srcs

        if op is Opcode.BOUNDARY:
            if trace is not None:
                trace.append(
                    (tr.K_BOUNDARY, -1, -1, -1, -1, instr.region_id or 0, 0)
                )
            pc += 1
            continue

        if op is Opcode.LD:
            addr = get(srcs[0], 0) + instr.imm
            value = mem.load(addr)
            regs[instr.dest] = value
            if trace is not None:
                trace.append(
                    (
                        tr.K_LD,
                        _reg_index(instr.dest),
                        _reg_index(srcs[0]),
                        -1,
                        addr,
                        -1 if instr.region_id is None else instr.region_id,
                        0,
                    )
                )
            pc += 1
            continue

        if op is Opcode.ST:
            addr = get(srcs[1], 0) + instr.imm
            mem.store(addr, get(srcs[0], 0))
            if trace is not None:
                kind_ord = tr.STORE_KIND_ORDINAL.get(instr.store_kind, 0)
                trace.append(
                    (
                        tr.K_ST,
                        -1,
                        _reg_index(srcs[0]),
                        _reg_index(srcs[1]),
                        addr,
                        -1 if instr.region_id is None else instr.region_id,
                        kind_ord,
                    )
                )
            pc += 1
            continue

        if op is Opcode.CKPT:
            if trace is not None:
                trace.append(
                    (
                        tr.K_CKPT,
                        -1,
                        _reg_index(srcs[0]),
                        -1,
                        -1,
                        -1 if instr.region_id is None else instr.region_id,
                        0,
                    )
                )
            pc += 1
            continue

        if op in _BRANCH_EVAL:
            lhs = get(srcs[0], 0)
            rhs = get(srcs[1], 0)
            taken = _BRANCH_EVAL[op](lhs, rhs)
            target = instr.targets[0] if taken else instr.targets[1]
            if trace is not None:
                backward = block_order[instr.targets[0]] <= block_order[label]
                aux = (1 if taken else 0) | (2 if backward else 0)
                trace.append(
                    (
                        tr.K_BR,
                        -1,
                        _reg_index(srcs[0]),
                        _reg_index(srcs[1]),
                        instr.uid,  # static branch id for the predictor
                        -1 if instr.region_id is None else instr.region_id,
                        aux,
                    )
                )
            label = target
            instrs = blocks[label]
            pc = 0
            continue

        if op is Opcode.JMP:
            if trace is not None:
                backward = block_order[instr.targets[0]] <= block_order[label]
                trace.append(
                    (
                        tr.K_BR,
                        -1,
                        -1,
                        -1,
                        instr.uid,
                        -1 if instr.region_id is None else instr.region_id,
                        1 | (2 if backward else 0) | 4,  # bit2: unconditional
                    )
                )
            label = instr.targets[0]
            instrs = blocks[label]
            pc = 0
            continue

        if op is Opcode.RET:
            if trace is not None:
                trace.append((tr.K_RET, -1, -1, -1, -1, -1, 0))
            return ExecutionResult(mem, regs, steps, trace)

        # ALU family.
        value = _eval_alu(op, instr, get)
        if instr.dest is not None:
            regs[instr.dest] = value
        if trace is not None:
            src1 = _reg_index(srcs[0]) if len(srcs) > 0 else -1
            src2 = _reg_index(srcs[1]) if len(srcs) > 1 else -1
            trace.append(
                (
                    tr.kind_of_opcode(op),
                    _reg_index(instr.dest),
                    src1,
                    src2,
                    -1,
                    -1 if instr.region_id is None else instr.region_id,
                    0,
                )
            )
        pc += 1


_BRANCH_EVAL = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLT: lambda a, b: a < b,
    Opcode.BGE: lambda a, b: a >= b,
}


def _eval_alu(op: Opcode, instr, get) -> int:
    srcs = instr.srcs
    if op is Opcode.LI:
        return wrap32(instr.imm)
    if op is Opcode.MOV:
        return get(srcs[0], 0)
    if op is Opcode.ADDI:
        return wrap32(get(srcs[0], 0) + instr.imm)
    if op is Opcode.MULI:
        return wrap32(get(srcs[0], 0) * instr.imm)
    if op is Opcode.ANDI:
        return get(srcs[0], 0) & instr.imm
    if op is Opcode.SHLI:
        return wrap32(get(srcs[0], 0) << (instr.imm & 31))
    if op is Opcode.SHRI:
        return (get(srcs[0], 0) & 0xFFFF_FFFF) >> (instr.imm & 31)
    a = get(srcs[0], 0)
    b = get(srcs[1], 0)
    if op is Opcode.ADD:
        return wrap32(a + b)
    if op is Opcode.SUB:
        return wrap32(a - b)
    if op is Opcode.MUL:
        return wrap32(a * b)
    if op is Opcode.DIV:
        if b == 0:
            return 0
        return wrap32(int(a / b))  # C-style truncation
    if op is Opcode.REM:
        if b == 0:
            return 0
        return wrap32(a - int(a / b) * b)
    if op is Opcode.AND:
        return a & b
    if op is Opcode.OR:
        return a | b
    if op is Opcode.XOR:
        return a ^ b
    if op is Opcode.SHL:
        return wrap32(a << (b & 31))
    if op is Opcode.SHR:
        return (a & 0xFFFF_FFFF) >> (b & 31)
    if op is Opcode.SLT:
        return 1 if a < b else 0
    if op is Opcode.SEQ:
        return 1 if a == b else 0
    if op is Opcode.NOP:
        return 0
    raise ValueError(f"unhandled opcode {op}")
