"""Flat word memory for the TK runtime.

Byte-addressed with 32-bit word granularity: every load/store transfers
the whole word stored at its address key (the workloads keep addresses
4-byte aligned by convention). Values wrap to signed 32-bit on ALU
writes, so Python integers stay small in the hot loops.

Layout conventions shared by the compiler, workloads, and machines:

* ``DATA_BASE`` — workload arrays (compared against golden runs);
* ``STACK_BASE`` — stack/spill slots (the stack pointer register is
  initialised here by every machine);
* checkpoint storage is *not* part of this address space — it models the
  dedicated, ECC-protected checkpoint locations and lives in the machines
  as a separate map.
"""

from __future__ import annotations

DATA_BASE = 0x0000_0000
DATA_LIMIT = 0x0010_0000
STACK_BASE = 0x0020_0000
STACK_LIMIT = 0x0030_0000

WORD = 4
_MASK = (1 << 32) - 1


def wrap32(value: int) -> int:
    """Wrap an integer to signed 32-bit two's complement."""
    value &= _MASK
    if value >= 1 << 31:
        value -= 1 << 32
    return value


class Memory:
    """Sparse word memory with helpers for array-shaped workload data."""

    __slots__ = ("cells",)

    def __init__(self) -> None:
        self.cells: dict[int, int] = {}

    def load(self, addr: int) -> int:
        return self.cells.get(addr, 0)

    def store(self, addr: int, value: int) -> None:
        self.cells[addr] = wrap32(value)

    # -- bulk helpers -----------------------------------------------------

    def write_words(self, base: int, values: list[int]) -> None:
        for i, value in enumerate(values):
            self.store(base + i * WORD, value)

    def read_words(self, base: int, count: int) -> list[int]:
        return [self.load(base + i * WORD) for i in range(count)]

    def copy(self) -> "Memory":
        clone = Memory()
        clone.cells = dict(self.cells)
        return clone

    def data_image(self) -> dict[int, int]:
        """Non-zero cells in the data segment (golden-run comparisons)."""
        return {
            addr: value
            for addr, value in self.cells.items()
            if DATA_BASE <= addr < DATA_LIMIT and value != 0
        }

    def full_image(self) -> dict[int, int]:
        return {addr: value for addr, value in self.cells.items() if value != 0}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Memory):
            return NotImplemented
        return self.full_image() == other.full_image()

    def __repr__(self) -> str:
        return f"Memory({len(self.cells)} cells)"
