"""Dynamic trace representation shared by the interpreter and timing core.

A trace element is a plain 7-tuple for speed:

    (kind, dest, src1, src2, addr, region, aux)

* ``kind`` — one of the ``K_*`` constants below;
* ``dest``/``src1``/``src2`` — physical register indices, -1 when absent;
* ``addr`` — effective address for loads and regular stores, -1 otherwise;
* ``region`` — static region id (-1 outside resilience builds);
* ``aux`` — kind-specific:
    - ``K_ST``: store-kind ordinal (0 application, 1 spill);
    - ``K_BR``: bit0 = taken, bit1 = backward branch;
    - others: 0.

Checkpoints carry the saved register in ``src1``.
"""

from __future__ import annotations

from repro.isa.instructions import Opcode, StoreKind

K_ALU = 0
K_MUL = 1
K_DIV = 2
K_LD = 3
K_ST = 4
K_CKPT = 5
K_BR = 6
K_BOUNDARY = 7
K_RET = 8

KIND_NAMES = {
    K_ALU: "alu",
    K_MUL: "mul",
    K_DIV: "div",
    K_LD: "ld",
    K_ST: "st",
    K_CKPT: "ckpt",
    K_BR: "br",
    K_BOUNDARY: "boundary",
    K_RET: "ret",
}

STORE_KIND_ORDINAL = {
    StoreKind.APPLICATION: 0,
    StoreKind.SPILL: 1,
    StoreKind.CHECKPOINT: 2,
}

# Opcode -> trace kind for non-memory, non-control instructions.
_ALU_LIKE = {
    Opcode.ADD,
    Opcode.SUB,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
    Opcode.SHL,
    Opcode.SHR,
    Opcode.SLT,
    Opcode.SEQ,
    Opcode.ADDI,
    Opcode.ANDI,
    Opcode.SHLI,
    Opcode.SHRI,
    Opcode.LI,
    Opcode.MOV,
    Opcode.NOP,
}


_BRANCH_LIKE = {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.JMP}


def kind_of_opcode(op: Opcode) -> int:
    if op in _ALU_LIKE:
        return K_ALU
    if op in _BRANCH_LIKE:
        return K_BR
    if op in (Opcode.MUL, Opcode.MULI):
        return K_MUL
    if op in (Opcode.DIV, Opcode.REM):
        return K_DIV
    if op is Opcode.LD:
        return K_LD
    if op is Opcode.ST:
        return K_ST
    if op is Opcode.CKPT:
        return K_CKPT
    if op is Opcode.JMP:
        return K_BR
    if op is Opcode.RET:
        return K_RET
    if op is Opcode.BOUNDARY:
        return K_BOUNDARY
    raise ValueError(f"unmapped opcode {op}")


class TraceSummary:
    """Aggregate counts over a dynamic trace."""

    def __init__(self, trace: list[tuple]) -> None:
        counts = [0] * 9
        store_kinds = [0, 0, 0]
        for entry in trace:
            counts[entry[0]] += 1
            if entry[0] == K_ST:
                store_kinds[entry[6]] += 1
        self.total = len(trace)
        self.by_kind = {KIND_NAMES[k]: counts[k] for k in range(9)}
        self.app_stores = store_kinds[0]
        self.spill_stores = store_kinds[1]
        self.checkpoints = counts[K_CKPT]
        self.regular_stores = counts[K_ST]
        self.loads = counts[K_LD]
        self.boundaries = counts[K_BOUNDARY]

    @property
    def committed(self) -> int:
        """Instructions that occupy a pipeline slot (BOUNDARY is free)."""
        return self.total - self.boundaries

    @property
    def all_stores(self) -> int:
        return self.regular_stores + self.checkpoints

    def __repr__(self) -> str:
        return (
            f"TraceSummary(total={self.total}, loads={self.loads}, "
            f"stores={self.regular_stores}, ckpts={self.checkpoints}, "
            f"regions={self.boundaries})"
        )
