"""Codegen backend: per-program Python modules with superblock dispatch.

This is the gen-2 functional backend behind ``--backend codegen``. Where
:mod:`repro.runtime.fastsim` execs one step function per basic block at
compile time, this backend goes one step further:

1. the **first** execution of a program runs on the block-level path
   while the exit-table driver accumulates its free static-edge profile
   (a warmup run — results are returned normally and are bit-identical);
2. the profile drives :func:`repro.runtime.superblock.form_chains`, and
   the whole program — block functions, fused superblock functions with
   guard-and-bail mispredict exits, and the flat exit/dispatch tables —
   is rendered as **one self-contained Python source module**;
3. subsequent executions dispatch through the superblock table: zero
   per-instruction interpretation, and for hot chains zero per-block
   register writeback/reload as well.

The rendered module is content-addressed in the artifact cache
(``codegen-<key>.py``) when the program comes from the harness (known
benchmark uid + compiler config), so later processes skip the warmup
run entirely and start on the superblock path. Two safety valves keep
the backend observationally identical to fastsim:

* **digest-based invalidation** — the cache key embeds the simulator
  source digest, and the stored header pins the program's uid-free
  structural digest plus a body digest, so a stale, corrupt, or
  mismatched module is a cache miss, never a wrong answer;
* **bail-rate deoptimization** — if bail exits fire for more than
  ``DEOPT_RATIO`` of superblock dispatches (past a small grace floor),
  dispatch drops back to the block-level functions, whose behaviour is
  exactly fastsim's.

Branch ids folded into trace tuples are process-global instruction
uids, so the executable render of a module is only unique up to a
constant uid offset (the same caveat the trace cache documents). The
``source-digest`` header is therefore computed over a *canonical*
second render rebased to the program's minimum uid, which is
process-invariant — ``repro cache verify`` recompiles a cached module
from scratch and compares exactly this digest. A module served from the
cache may emit branch ids offset by a constant against a same-process
fastsim trace; aliasing in the branch predictor depends only on uid
differences, so timing statistics are unaffected (traces produced
within one process, as the parity suite does, are bit-identical).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Any

from repro.compiler.config import CompilerConfig
from repro.isa.program import Program
from repro.isa.registers import Reg
from repro.runtime.fastsim import FastProgram
from repro.runtime.interpreter import (
    ExecutionLimitExceeded,
    ExecutionResult,
    _reg_index,
)
from repro.runtime.memory import STACK_BASE, Memory
from repro.runtime.superblock import MIN_COUNT, RATIO, emit_module, form_chains

__all__ = [
    "CodegenProgram",
    "compile_codegen",
    "execute_codegen",
    "program_digest",
    "render_module",
    "parse_header",
]

_HEADER_MAGIC = "# repro codegen module v1"

# Deoptimize once bails exceed this fraction of superblock dispatches
# (after a grace floor so one cold run cannot condemn a hot chain).
DEOPT_RATIO = 0.25
DEOPT_FLOOR = 32


def program_digest(program: Program) -> str:
    """Uid-free structural digest of a program (process-invariant)."""
    hasher = hashlib.sha256()
    hasher.update(program.name.encode())
    for block in program.blocks:
        hasher.update(f"\n@{block.label}".encode())
        for instr in block.instructions:
            dest = -1 if instr.dest is None else _reg_index(instr.dest)
            srcs = tuple(_reg_index(r) for r in instr.srcs)
            kind = "" if instr.store_kind is None else instr.store_kind.name
            hasher.update(
                f"\n{instr.op.name}|{dest}|{srcs}|{instr.imm}"
                f"|{instr.targets}|{instr.region_id}|{kind}".encode()
            )
    return hasher.hexdigest()[:16]


def _min_uid(program: Program) -> int:
    uids = [i.uid for i in program.instructions()]
    return min(uids) if uids else 0


def render_module(
    program: Program,
    chains: list[list[int]],
    uid: str | None = None,
    config: CompilerConfig | None = None,
) -> str:
    """Render the full cached artifact: header lines + module body."""
    body = emit_module(program, chains)
    canonical = emit_module(program, chains, uid_base=_min_uid(program))
    source_digest = hashlib.sha256(canonical.encode()).hexdigest()[:16]
    body_digest = hashlib.sha256(body.encode()).hexdigest()[:16]
    config_json = "" if config is None else json.dumps(
        asdict(config), sort_keys=True
    )
    header = [
        _HEADER_MAGIC,
        f"# uid: {uid or ''}",
        f"# scheme: {config.name if config is not None else ''}",
        f"# config: {config_json}",
        f"# program-digest: {program_digest(program)}",
        f"# source-digest: {source_digest}",
        f"# body-digest: {body_digest}",
    ]
    return "\n".join(header) + "\n" + body


def parse_header(source: str) -> tuple[dict[str, str], str] | None:
    """Split a cached module into (header fields, body); None if invalid.

    Validates the body digest, so a truncated or bit-flipped artifact is
    reported as unparseable (a cache miss) rather than executed.
    """
    lines = source.split("\n")
    if not lines or lines[0] != _HEADER_MAGIC:
        return None
    fields: dict[str, str] = {}
    body_start = 1
    for i, line in enumerate(lines[1:], start=1):
        if not line.startswith("# "):
            body_start = i
            break
        key, sep, value = line[2:].partition(": ")
        if sep:
            fields[key] = value
        else:
            fields[line[2:].rstrip(":")] = ""
    else:
        return None
    body = "\n".join(lines[body_start:])
    expected = fields.get("body-digest", "")
    if hashlib.sha256(body.encode()).hexdigest()[:16] != expected:
        return None
    return fields, body


class CodegenProgram:
    """A program executed through a generated superblock module.

    Drop-in for :class:`~repro.runtime.fastsim.FastProgram` (same
    ``execute`` contract, bit-identical results); adds the JIT-style
    warmup / formation / deopt lifecycle described in the module
    docstring. ``uid`` and ``config`` opt the instance into the
    persistent artifact cache; anonymous programs (randomized tests)
    stay process-local.
    """

    def __init__(
        self,
        program: Program,
        uid: str | None = None,
        config: CompilerConfig | None = None,
        cache: object = "default",
        min_count: int = MIN_COUNT,
        ratio: float = RATIO,
        warmup_runs: int = 1,
    ) -> None:
        from repro.harness.artifacts import ArtifactCache

        self._program = program
        self.name = program.name
        self._fast = FastProgram(program)
        self._profile: list[int] = [0] * len(self._fast.exits)
        self._min_count = min_count
        self._ratio = ratio
        self.warmup_runs = warmup_runs
        self._warm_runs = 0
        self._ns: dict[str, Any] | None = None
        self._disabled = False
        self.chains: list[list[int]] = []
        self.source: str | None = None
        self.cache_hit = False
        self.deopted = False
        self.bail_count = 0
        self.sb_dispatches = 0

        resolved: ArtifactCache | None
        if cache == "default":
            resolved = ArtifactCache.default()
        else:
            assert cache is None or isinstance(cache, ArtifactCache)
            resolved = cache
        self._cache = resolved
        self._key: str | None = None
        if uid is not None and config is not None and self._cache is not None:
            self._key = self._cache.codegen_key(uid, config)
            cached = self._cache.load_codegen(self._key)
            if cached is not None:
                parsed = parse_header(cached)
                if (
                    parsed is not None
                    and parsed[0].get("program-digest") == program_digest(program)
                    and self._install(cached, parsed[1])
                ):
                    self.cache_hit = True
        self._uid = uid
        self._config = config

    # -- module lifecycle --------------------------------------------------

    def _install(self, source: str, body: str) -> bool:
        namespace: dict[str, Any] = {}
        try:
            exec(  # noqa: S102 - source is generated (and digest-checked)
                compile(body, f"<codegen:{self.name}>", "exec"), namespace
            )
        except (SyntaxError, ValueError):
            return False
        self._ns = namespace
        self.chains = [list(c) for c in namespace["CHAINS"]]
        self.source = source
        return True

    def _compile_module(self) -> None:
        """Form chains from the warmup profile and install the module."""
        try:
            chains = form_chains(
                self._fast.exits,
                self._profile,
                len(self._fast._lens),
                min_count=self._min_count,
                ratio=self._ratio,
            )
            source = render_module(
                self._program, chains, uid=self._uid, config=self._config
            )
            parsed = parse_header(source)
            if parsed is None or not self._install(source, parsed[1]):
                raise ValueError("generated module failed to install")
        except Exception:
            # Safe fallback: stay on the fastsim block-level path.
            self._disabled = True
            return
        if self._cache is not None and self._key is not None:
            self._cache.store_codegen(self._key, source)

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        memory: Memory | None = None,
        initial_registers: dict[Reg, int] | None = None,
        max_steps: int = 2_000_000,
        collect_trace: bool = False,
    ) -> ExecutionResult:
        """Run to RET; same contract (and results) as fastsim/reference."""
        if self._ns is None:
            result = self._fast.execute(
                memory,
                initial_registers=initial_registers,
                max_steps=max_steps,
                collect_trace=collect_trace,
                exit_counts=self._profile,
            )
            self._warm_runs += 1
            if not self._disabled and self._warm_runs >= self.warmup_runs:
                self._compile_module()
            return result
        return self._execute_module(
            memory, initial_registers, max_steps, collect_trace
        )

    def _execute_module(
        self,
        memory: Memory | None,
        initial_registers: dict[Reg, int] | None,
        max_steps: int,
        collect_trace: bool,
    ) -> ExecutionResult:
        ns = self._ns
        assert ns is not None
        mem = memory if memory is not None else Memory()
        num_slots = max(self._fast.num_slots, int(ns["NUM_SLOTS"]))
        init_items = list(initial_registers.items()) if initial_registers else []
        for reg, _ in init_items:
            if _reg_index(reg) >= num_slots:
                num_slots = _reg_index(reg) + 1
        R = [0] * num_slots
        R[int(ns["SP_SLOT"])] = STACK_BASE
        for reg, value in init_items:
            R[_reg_index(reg)] = value

        M = mem.cells
        esteps: list[int] = ns["ESTEPS"]
        etarget: list[int] = ns["ETARGET"]
        if self.deopted:
            funcs = ns["BLOCKS_T"] if collect_trace else ns["BLOCKS_P"]
        else:
            funcs = ns["DISPATCH_T"] if collect_trace else ns["DISPATCH_P"]
        counts = [0] * len(esteps)
        trace: list[tuple[int, ...]] | None = None
        steps = 0
        idx = 0
        limit_msg = f"{self.name}: exceeded {max_steps} dynamic instructions"
        if collect_trace:
            trace = []
            while idx >= 0:
                e = funcs[idx](R, M, trace)
                steps += esteps[e]
                if steps > max_steps:
                    self._fold_stats(counts, ns)
                    raise ExecutionLimitExceeded(limit_msg)
                counts[e] += 1
                idx = etarget[e]
        else:
            while idx >= 0:
                e = funcs[idx](R, M)
                steps += esteps[e]
                if steps > max_steps:
                    self._fold_stats(counts, ns)
                    raise ExecutionLimitExceeded(limit_msg)
                counts[e] += 1
                idx = etarget[e]
        self._fold_stats(counts, ns)

        regs: dict[Reg, int] = {}
        sp = self._program.register_file.stack_pointer
        regs[sp] = R[int(ns["SP_SLOT"])]
        for reg, _ in init_items:
            regs[reg] = R[_reg_index(reg)]
        written: set[int] = set()
        ewrites: list[tuple[int, ...]] = ns["EWRITES"]
        for e, c in enumerate(counts):
            if c:
                written.update(ewrites[e])
        slot_registers = self._fast.slot_registers
        for slot in written:
            regs[slot_registers[slot]] = R[slot]
        return ExecutionResult(mem, regs, steps, trace)

    def _fold_stats(self, counts: list[int], ns: dict[str, Any]) -> None:
        """Accumulate bail statistics and apply the deopt policy."""
        ebail: list[int] = ns["EBAIL"]
        first_sb: int = ns["FIRST_SB_EXIT"]
        run_sb = 0
        run_bails = 0
        for e in range(first_sb, len(counts)):
            c = counts[e]
            if c:
                run_sb += c
                if ebail[e]:
                    run_bails += c
        self.sb_dispatches += run_sb
        self.bail_count += run_bails
        if (
            not self.deopted
            and self.bail_count
            > max(DEOPT_FLOOR, int(self.sb_dispatches * DEOPT_RATIO))
        ):
            self.deopted = True


def compile_codegen(
    program: Program,
    uid: str | None = None,
    config: CompilerConfig | None = None,
    cache: object = "default",
) -> CodegenProgram:
    """Build a :class:`CodegenProgram` (cache-backed when uid+config given)."""
    return CodegenProgram(program, uid=uid, config=config, cache=cache)


def execute_codegen(
    program: Program,
    memory: Memory | None = None,
    initial_registers: dict[Reg, int] | None = None,
    max_steps: int = 2_000_000,
    collect_trace: bool = False,
    uid: str | None = None,
    config: CompilerConfig | None = None,
    cache: object = "default",
) -> ExecutionResult:
    """One-shot execution through the codegen backend.

    On a cache hit the superblock module runs immediately; on a miss
    this is a (bit-identical) block-level warmup run whose profile
    builds and persists the module for every later caller.
    """
    return CodegenProgram(program, uid=uid, config=config, cache=cache).execute(
        memory,
        initial_registers=initial_registers,
        max_steps=max_steps,
        collect_trace=collect_trace,
    )
