"""Multi-lane timing simulation: decode once, advance K timing lanes.

The trace-driven timing model (:class:`repro.arch.core.InOrderCore`)
interleaves two kinds of work for every committed instruction: *shared*
work whose outcome is identical for every hardware configuration that
sees the same committed stream (data-cache hit/miss resolution, branch
prediction), and *per-lane* work that depends on the resilience
configuration (store-buffer occupancy, CLQ tracking, coloring,
checkpoint/stall accounting). A design-space sweep evaluates many
hardware points against the *same* trace, so the solo simulator repeats
the shared work once per point.

This module splits the two:

* :func:`decode_feed` performs the shared pass once — it replays the
  exact cache/predictor state machines a solo run would construct
  (:class:`~repro.arch.cache.MemoryHierarchy`,
  :class:`~repro.arch.branch.BimodalPredictor`; their update rules are
  inlined here for speed, the object model stays the reference
  semantics) and emits a pre-resolved *feed*: load latencies are final
  numbers, branch outcomes are baked into the opcode, absent operands
  are rewritten to dummy register slots. Configuration-independent
  stream totals (instruction/store/checkpoint/misprediction counts) are
  tallied once into a :data:`FeedMeta` so lanes never re-count them.
* :func:`run_lane` advances one timing lane over a feed. It is a
  flattened re-implementation of ``InOrderCore.run`` — store buffer,
  region boundary buffer, CLQ and coloring maps live as local scalars
  and dicts instead of objects — and is required to produce
  **byte-identical** :class:`~repro.arch.stats.SimStats` to the solo
  reference (enforced by ``tests/test_multisim_parity.py``).
* :func:`run_lanes` is the public entry: one decode per shared-work
  group, then every lane of the group.

Soundness of the sharing: the memory-hierarchy state depends only on
the sequence of touched addresses, which is a pure function of the
trace and of whether the configuration is resilient (a resilient core
never writes checkpoints to the data cache; a baseline core does), and
the predictor state depends only on the trace. Lanes therefore group by
``(core config, resilience enabled)`` — within a group the shared pass
is replayed verbatim, across groups it is re-run.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.arch.branch import BimodalPredictor
from repro.arch.cache import MemoryHierarchy
from repro.arch.config import CoreConfig, ResilienceHardwareConfig
from repro.arch.stats import SimStats
from repro.runtime import trace as tr

INF = float("inf")

# Absent source operands are rewritten to a pinned always-ready slot and
# absent destinations to a write-only scratch slot, so the lane kernel's
# operand path has no validity branches. Trace register indices are
# < 2048 (the solo model sizes its scoreboard accordingly).
DUMMY_SRC = 2048
DUMMY_DST = 2049
_NREGS = 2050

# Feed opcodes, ordered by typical dynamic frequency (the lane kernel
# dispatches through an if-chain in this order).
F_ALU = 0
F_BR_OK = 1  # correctly-predicted or unconditional branch
F_BR_MISS = 2  # mispredicted branch
F_BOUND = 3
F_CKPT = 4
F_LD = 5
F_ST = 6
F_RET = 7

#: One pre-resolved feed entry. Fields by opcode:
#: ALU   (op, dest, src1, src2, latency, 0)
#: BR_*  (op, src1, src2, 0, 0, 0)
#: BOUND (op, 0, 0, 0, 0, 0)
#: CKPT  (op, src1, src2, saved_reg, 0, 0)
#: LD    (op, dest, src1, src2, latency, addr)
#: ST    (op, src1, src2, addr, spill, 0)
#: RET   (op, src1, src2, 0, 0, 0)
FeedEntry = tuple[int, int, int, int, int, int]
Feed = list[FeedEntry]

#: Configuration-independent totals of one decoded stream, tallied once
#: per decode instead of once per lane:
#: (instructions, boundaries, stores, spill_stores, checkpoints,
#:  mispredictions).
FeedMeta = tuple[int, int, int, int, int, int]


def decode_feed(
    trace: list[tuple[int, int, int, int, int, int, int]],
    core: CoreConfig,
    resilient: bool,
) -> tuple[Feed, dict[str, int], FeedMeta]:
    """Shared decode pass: resolve cache latencies and branch outcomes.

    Returns the feed, the memory-hierarchy counters (identical to
    ``hierarchy.stats()`` of a solo run over the same trace, because the
    access sequence is replayed verbatim: loads always probe, regular
    stores always touch, checkpoint stores touch only on a
    non-resilient core), and the stream totals (:data:`FeedMeta`).
    """
    # Construct the real objects for parameter validation and derived
    # geometry, then run their update rules inline on local state: the
    # hot loop below makes zero method calls.
    hierarchy = MemoryHierarchy(core.l1d, core.l2, core.memory_latency)
    predictor = BimodalPredictor()
    l1, l2 = hierarchy.l1, hierarchy.l2
    l1_sets, l2_sets = l1._sets, l2._sets
    l1_shift, l2_shift = l1._line_shift, l2._line_shift
    l1_nsets, l2_nsets = l1.num_sets, l2.num_sets
    l1_ways, l2_ways = l1.config.ways, l2.config.ways
    l1_lat = l1.config.hit_latency
    l12_lat = l1_lat + l2.config.hit_latency
    l123_lat = l12_lat + hierarchy.memory_latency
    l1_hits = l1_misses = l2_hits = l2_misses = 0
    table = predictor.table
    p_mask = predictor.mask

    alu_lat = core.alu_latency
    mul_lat = core.mul_latency
    div_lat = core.div_latency
    n_bound = n_st = n_spill = n_ckpt = n_miss = 0
    feed: Feed = []
    ap = feed.append
    k_alu, k_mul, k_ld, k_st, k_ckpt, k_br, k_boundary = (
        tr.K_ALU, tr.K_MUL, tr.K_LD, tr.K_ST, tr.K_CKPT, tr.K_BR,
        tr.K_BOUNDARY,
    )
    for entry in trace:
        kind = entry[0]
        if kind == k_boundary:
            ap((3, 0, 0, 0, 0, 0))
            n_bound += 1
            continue
        s1 = entry[2]
        s2 = entry[3]
        if s1 < 0:
            s1 = DUMMY_SRC
        if s2 < 0:
            s2 = DUMMY_SRC
        if kind == k_alu:
            d = entry[1]
            ap((0, d if d >= 0 else DUMMY_DST, s1, s2, alu_lat, 0))
        elif kind == k_br:
            aux = entry[6]
            if aux & 4:  # unconditional: predicts perfectly
                ap((1, s1, s2, 0, 0, 0))
            else:
                # Inline BimodalPredictor.predict_and_update.
                index = entry[4] & p_mask
                counter = table[index]
                if aux & 1:
                    if counter < 3:
                        table[index] = counter + 1
                    if counter >= 2:
                        ap((1, s1, s2, 0, 0, 0))
                    else:
                        ap((2, s1, s2, 0, 0, 0))
                        n_miss += 1
                else:
                    if counter > 0:
                        table[index] = counter - 1
                    if counter >= 2:
                        ap((2, s1, s2, 0, 0, 0))
                        n_miss += 1
                    else:
                        ap((1, s1, s2, 0, 0, 0))
        elif kind == k_ckpt:
            if not resilient:
                # Inline MemoryHierarchy.store_touch.
                addr = entry[4]
                line = addr >> l1_shift
                tags = l1_sets[line % l1_nsets]
                tag = line // l1_nsets
                if tag in tags:
                    if tags[0] != tag:
                        tags.remove(tag)
                        tags.insert(0, tag)
                    l1_hits += 1
                else:
                    l1_misses += 1
                    tags.insert(0, tag)
                    if len(tags) > l1_ways:
                        tags.pop()
                    line = addr >> l2_shift
                    tags = l2_sets[line % l2_nsets]
                    tag = line // l2_nsets
                    if tag in tags:
                        if tags[0] != tag:
                            tags.remove(tag)
                            tags.insert(0, tag)
                        l2_hits += 1
                    else:
                        l2_misses += 1
                        tags.insert(0, tag)
                        if len(tags) > l2_ways:
                            tags.pop()
            ap((4, s1, s2, entry[2], 0, 0))
            n_ckpt += 1
        elif kind == k_ld:
            # Inline MemoryHierarchy.load_latency.
            addr = entry[4]
            line = addr >> l1_shift
            tags = l1_sets[line % l1_nsets]
            tag = line // l1_nsets
            if tag in tags:
                if tags[0] != tag:
                    tags.remove(tag)
                    tags.insert(0, tag)
                l1_hits += 1
                lat = l1_lat
            else:
                l1_misses += 1
                tags.insert(0, tag)
                if len(tags) > l1_ways:
                    tags.pop()
                line = addr >> l2_shift
                tags = l2_sets[line % l2_nsets]
                tag = line // l2_nsets
                if tag in tags:
                    if tags[0] != tag:
                        tags.remove(tag)
                        tags.insert(0, tag)
                    l2_hits += 1
                    lat = l12_lat
                else:
                    l2_misses += 1
                    tags.insert(0, tag)
                    if len(tags) > l2_ways:
                        tags.pop()
                    lat = l123_lat
            d = entry[1]
            ap((5, d if d >= 0 else DUMMY_DST, s1, s2, lat, addr))
        elif kind == k_st:
            # Inline MemoryHierarchy.store_touch.
            addr = entry[4]
            line = addr >> l1_shift
            tags = l1_sets[line % l1_nsets]
            tag = line // l1_nsets
            if tag in tags:
                if tags[0] != tag:
                    tags.remove(tag)
                    tags.insert(0, tag)
                l1_hits += 1
            else:
                l1_misses += 1
                tags.insert(0, tag)
                if len(tags) > l1_ways:
                    tags.pop()
                line = addr >> l2_shift
                tags = l2_sets[line % l2_nsets]
                tag = line // l2_nsets
                if tag in tags:
                    if tags[0] != tag:
                        tags.remove(tag)
                        tags.insert(0, tag)
                    l2_hits += 1
                else:
                    l2_misses += 1
                    tags.insert(0, tag)
                    if len(tags) > l2_ways:
                        tags.pop()
            spill = entry[6]
            ap((6, s1, s2, addr, spill, 0))
            n_st += 1
            if spill == 1:
                n_spill += 1
        elif kind == tr.K_RET:
            ap((7, s1, s2, 0, 0, 0))
        else:  # K_MUL / K_DIV: ALU-class, different latency
            d = entry[1]
            ap((0, d if d >= 0 else DUMMY_DST, s1, s2,
                mul_lat if kind == k_mul else div_lat, 0))
    cache_stats = {
        "l1_hits": l1_hits,
        "l1_misses": l1_misses,
        "l2_hits": l2_hits,
        "l2_misses": l2_misses,
    }
    meta = (
        len(feed) - n_bound, n_bound, n_st, n_spill, n_ckpt, n_miss,
    )
    return feed, cache_stats, meta


def run_lanes(
    trace: list[tuple[int, int, int, int, int, int, int]],
    lanes: Sequence[tuple[CoreConfig, ResilienceHardwareConfig]],
    feeds: dict[
        tuple[CoreConfig, bool], tuple[Feed, dict[str, int], FeedMeta]
    ]
    | None = None,
) -> list[SimStats]:
    """Timing-simulate every lane of one committed stream.

    Lanes sharing ``(core, resilience.enabled)`` share one decode pass.
    ``feeds`` optionally carries decode results across calls for the
    same trace (the sweep planner reuses it between lane batches).
    """
    if feeds is None:
        feeds = {}
    out: list[SimStats] = []
    for core, res in lanes:
        group = (core, res.enabled)
        cached = feeds.get(group)
        if cached is None:
            cached = decode_feed(trace, core, res.enabled)
            feeds[group] = cached
        feed, cache_stats, meta = cached
        out.append(run_lane(feed, core, res, cache_stats, meta))
    return out


def run_lane(  # noqa: C901
    feed: Feed,
    core: CoreConfig,
    res: ResilienceHardwareConfig,
    cache_stats: dict[str, int],
    meta: FeedMeta,
) -> SimStats:
    """Advance one timing lane over a pre-decoded feed.

    Byte-identical to ``InOrderCore(core, res).run(trace)`` followed by
    ``stats.cache = hierarchy.stats()`` — the store buffer, RBB, CLQ and
    coloring semantics below are flattened transcriptions of
    ``repro.arch.{store_buffer,rbb,clq,coloring}`` with the
    fault-injection paths (which a timing run never exercises) elided.
    Stream totals that do not depend on the lane configuration come
    from ``meta`` (tallied once at decode), so the loop touches only
    timing state.
    """
    resilient = res.enabled
    clq_on = resilient and res.clq_enabled
    clq_ideal = clq_on and res.clq_kind == "ideal"
    clq_size = res.clq_size
    clq_recycle = res.clq_recycling
    col_on = resilient and res.coloring_enabled
    num_colors = res.num_colors
    wcdl = float(res.wcdl)
    width = core.issue_width
    mispredict = core.mispredict_penalty
    commit_lat = core.store_commit_latency
    baseline_drain = core.baseline_drain_latency
    sb_cap = res.sb_size if resilient else 8

    reg_ready = [0.0] * _NREGS
    cycle = 0.0
    issued_here = 0
    last_mem_cycle = -1.0
    seq_floor = 0.0
    final = 0.0
    data_stall = 0.0
    sb_stall = 0.0
    warfree = 0
    colored = 0
    quarantined = 0
    forced = 0
    # Region lifecycle (flat RegionBoundaryBuffer). ``unverified`` is a
    # FIFO of (deadline, instance); ``uv_head`` is its consumed prefix;
    # ``next_due`` caches the head deadline so the common no-op case of
    # the verification drain is one float compare.
    cur_inst = -1
    next_instance = 0
    unverified: list[tuple[float, int]] = []
    uv_head = 0
    next_due = INF
    # Flat TimingStoreBuffer: (release, instance, addr) triples. An
    # infinite release marks a quarantined entry of the open region;
    # ``open_inf`` counts them so boundary closure skips the scan when
    # the open region quarantined nothing.
    sb_entries: list[tuple[float, int, int]] = []
    open_inf = 0
    # Cached minimum finite release across ``sb_entries`` (INF when all
    # entries are quarantined-open or the buffer is empty): the common
    # nothing-to-drain case of a store is then one float compare
    # instead of a list rebuild.
    sb_min = INF
    # Flat CLQ state (parity is never bad in a timing run, so the
    # conservative parity branches of the object model are elided).
    clq_loads: dict[int, set[int]] = {}
    clq_ranges: dict[int, list[int]] = {}  # instance -> [lo, hi, populated]
    clq_disabled = False
    occ_samples = 0
    occ_sum = 0
    occ_max = 0
    # Flat ColorMaps: AC free lists pop from the end; UC per-instance
    # reg->color assignments; VC last verified color per register.
    ac: dict[int, list[int]] = {}
    uc: dict[int, dict[int, int]] = {}
    vc: dict[int, int] = {}

    for op, fa, fb, fc, fd, fe in feed:
        if op == 0:  # ALU / MUL / DIV
            # Issue-slot logic, common case first: both operands ready
            # and no mispredict shadow -> issue this cycle (or roll to
            # the next when the width is exhausted). Provably the same
            # decision tree as the reference max/compare chain.
            r1 = reg_ready[fb]
            r2 = reg_ready[fc]
            ready = r1 if r1 >= r2 else r2
            if ready <= cycle:
                if seq_floor <= cycle:
                    t = cycle
                    if issued_here >= width:
                        t += 1.0
                        issued_here = 1
                    else:
                        issued_here += 1
                else:
                    t = seq_floor
                    issued_here = 1
            elif seq_floor > cycle:
                if ready > seq_floor:
                    data_stall += ready - seq_floor
                    t = ready
                else:
                    t = seq_floor
                issued_here = 1
            else:
                data_stall += ready - cycle
                t = ready
                issued_here = 1
            cycle = t
            t += fd
            reg_ready[fa] = t
            if t > final:
                final = t
            continue
        if op <= 2:  # branch (outcome baked into the opcode)
            r1 = reg_ready[fa]
            r2 = reg_ready[fb]
            ready = r1 if r1 >= r2 else r2
            if ready <= cycle:
                if seq_floor <= cycle:
                    t = cycle
                    if issued_here >= width:
                        t += 1.0
                        issued_here = 1
                    else:
                        issued_here += 1
                else:
                    t = seq_floor
                    issued_here = 1
            elif seq_floor > cycle:
                if ready > seq_floor:
                    data_stall += ready - seq_floor
                    t = ready
                else:
                    t = seq_floor
                issued_here = 1
            else:
                data_stall += ready - cycle
                t = ready
                issued_here = 1
            cycle = t
            resolve = t + 1
            seq_floor = 0.0 if op == 1 else resolve + mispredict
            if resolve > final:
                final = resolve
            continue
        if op == 3:  # region boundary
            if resilient:
                now = cycle
                if cur_inst >= 0:
                    if open_inf:
                        # set_instance_release: the open region's
                        # quarantined entries obtain end + WCDL (+1 per
                        # entry: one drain per cycle through the port).
                        base = now + wcdl
                        offset = 0
                        converted: list[tuple[float, int, int]] = []
                        for ent in sb_entries:
                            if ent[0] == INF:
                                converted.append(
                                    (base + offset, ent[1], ent[2])
                                )
                                offset += 1
                            else:
                                converted.append(ent)
                        sb_entries = converted
                        open_inf = 0
                        if base < sb_min:
                            sb_min = base
                    deadline = now + wcdl
                    unverified.append((deadline, cur_inst))
                    if next_due == INF:
                        next_due = deadline
                cur_inst = next_instance
                next_instance += 1
                if clq_on:
                    if next_due <= now:
                        n_unv = len(unverified)
                        while uv_head < n_unv and unverified[uv_head][0] <= now:
                            inst_id = unverified[uv_head][1]
                            uv_head += 1
                            if col_on:
                                promoted = uc.pop(inst_id, None)
                                if promoted:
                                    for reg, color in promoted.items():
                                        old = vc.get(reg)
                                        if old is not None and old != -1:
                                            free = ac.get(reg)
                                            if free is None:
                                                free = ac[reg] = list(
                                                    range(num_colors)
                                                )
                                            free.append(old)
                                        vc[reg] = color
                            if clq_ideal:
                                clq_loads.pop(inst_id, None)
                            else:
                                clq_ranges.pop(inst_id, None)
                        next_due = (
                            unverified[uv_head][0]
                            if uv_head < len(unverified)
                            else INF
                        )
                    prior_verified = uv_head >= len(unverified)
                    if clq_ideal:
                        clq_loads[cur_inst] = set()
                    else:
                        if clq_disabled:
                            if not prior_verified:
                                continue  # stay disabled, no tracking
                            clq_disabled = False
                            clq_ranges.clear()
                        if len(clq_ranges) >= clq_size:
                            if clq_recycle:
                                del clq_ranges[min(clq_ranges)]
                            else:
                                clq_ranges.clear()
                                clq_disabled = True
                                continue
                        clq_ranges[cur_inst] = [0, 0, 0]
            continue
        if op == 4:  # checkpoint store
            r1 = reg_ready[fa]
            r2 = reg_ready[fb]
            ready = r1 if r1 >= r2 else r2
            bc = seq_floor if seq_floor > cycle else cycle
            if ready > bc:
                data_stall += ready - bc
            candidate = ready if ready > seq_floor else seq_floor
            if candidate <= last_mem_cycle:
                candidate = last_mem_cycle + 1
            if candidate > cycle:
                t = candidate
                issued_here = 1
            else:
                t = cycle
                if issued_here >= width:
                    t += 1.0
                    issued_here = 1
                else:
                    issued_here += 1
            cycle = t
            last_mem_cycle = t
            commit = t + commit_lat
            if not resilient:
                if sb_entries:
                    sb_entries = [e for e in sb_entries if e[0] > commit]
                alloc = commit
                while len(sb_entries) >= sb_cap:
                    earliest = min(e[0] for e in sb_entries)
                    if alloc < earliest:
                        alloc = earliest
                    sb_entries = [e for e in sb_entries if e[0] > alloc]
                if alloc > commit:
                    sb_stall += alloc - commit
                    cycle = alloc
                    issued_here = 1
                sb_entries.append((alloc + baseline_drain, 0, -1))
                if alloc + baseline_drain > final:
                    final = alloc + baseline_drain
                continue
            if next_due <= commit:
                n_unv = len(unverified)
                while uv_head < n_unv and unverified[uv_head][0] <= commit:
                    inst_id = unverified[uv_head][1]
                    uv_head += 1
                    if col_on:
                        promoted = uc.pop(inst_id, None)
                        if promoted:
                            for reg, color in promoted.items():
                                old = vc.get(reg)
                                if old is not None and old != -1:
                                    free = ac.get(reg)
                                    if free is None:
                                        free = ac[reg] = list(
                                            range(num_colors)
                                        )
                                    free.append(old)
                                vc[reg] = color
                    if clq_on:
                        if clq_ideal:
                            clq_loads.pop(inst_id, None)
                        else:
                            clq_ranges.pop(inst_id, None)
                next_due = (
                    unverified[uv_head][0]
                    if uv_head < len(unverified)
                    else INF
                )
            instance = cur_inst if cur_inst >= 0 else 0
            released = False
            if col_on:
                assigned = uc.get(instance)
                if assigned is None:
                    assigned = uc[instance] = {}
                reg = fc
                color = assigned.get(reg)
                if color is None:
                    free = ac.get(reg)
                    if free is None:
                        free = ac[reg] = list(range(num_colors))
                    if free:
                        color = free.pop()
                        assigned[reg] = color
                    else:
                        assigned[reg] = color = -1
                if color != -1:
                    released = True
                    colored += 1
            if not released:
                quarantined += 1
                if sb_min <= commit:
                    sb_entries = [e for e in sb_entries if e[0] > commit]
                    sb_min = INF
                    for e in sb_entries:
                        if e[0] < sb_min:
                            sb_min = e[0]
                alloc = commit
                stalled_open = False
                while len(sb_entries) >= sb_cap:
                    if sb_min == INF:
                        stalled_open = True
                        break
                    if alloc < sb_min:
                        alloc = sb_min
                    sb_entries = [e for e in sb_entries if e[0] > alloc]
                    sb_min = INF
                    for e in sb_entries:
                        if e[0] < sb_min:
                            sb_min = e[0]
                if stalled_open:
                    # Safety valve: force-close the open region so its
                    # entries obtain release times (cold path).
                    forced += 1
                    base = commit + wcdl
                    offset = 0
                    converted = []
                    for ent in sb_entries:
                        if ent[1] == instance and ent[0] == INF:
                            converted.append((base + offset, ent[1], ent[2]))
                            offset += 1
                        else:
                            converted.append(ent)
                    sb_entries = converted
                    open_inf = 0
                    sb_min = INF
                    for e in sb_entries:
                        if e[0] < sb_min:
                            sb_min = e[0]
                    alloc = commit
                    while len(sb_entries) >= sb_cap:
                        if sb_min == INF:
                            break
                        if alloc < sb_min:
                            alloc = sb_min
                        sb_entries = [e for e in sb_entries if e[0] > alloc]
                        sb_min = INF
                        for e in sb_entries:
                            if e[0] < sb_min:
                                sb_min = e[0]
                if alloc > commit:
                    sb_stall += alloc - commit
                    cycle = alloc
                    issued_here = 1
                sb_entries.append((INF, instance, -1))
                open_inf += 1
            if commit > final:
                final = commit
            continue
        if op == 5:  # load
            r1 = reg_ready[fb]
            r2 = reg_ready[fc]
            ready = r1 if r1 >= r2 else r2
            bc = seq_floor if seq_floor > cycle else cycle
            if ready > bc:
                data_stall += ready - bc
            candidate = ready if ready > seq_floor else seq_floor
            if candidate <= last_mem_cycle:
                candidate = last_mem_cycle + 1
            if candidate > cycle:
                t = candidate
                issued_here = 1
            else:
                t = cycle
                if issued_here >= width:
                    t += 1.0
                    issued_here = 1
                else:
                    issued_here += 1
            cycle = t
            last_mem_cycle = t
            done = t + fd
            reg_ready[fa] = done
            if done > final:
                final = done
            if clq_on and cur_inst >= 0:
                if clq_ideal:
                    loads = clq_loads.get(cur_inst)
                    if loads is None:
                        loads = clq_loads[cur_inst] = set()
                    loads.add(fe)
                    occ_samples += 1
                    occ = len(clq_loads)
                    occ_sum += occ
                    if occ > occ_max:
                        occ_max = occ
                else:
                    rng = clq_ranges.get(cur_inst)
                    if rng is not None:
                        addr = fe
                        if rng[2]:
                            if addr < rng[0]:
                                rng[0] = addr
                            if addr > rng[1]:
                                rng[1] = addr
                        else:
                            rng[0] = rng[1] = addr
                            rng[2] = 1
                        occ_samples += 1
                        occ = 0
                        for other in clq_ranges.values():
                            if other[2]:
                                occ += 1
                        occ_sum += occ
                        if occ > occ_max:
                            occ_max = occ
            continue
        if op == 6:  # regular store
            r1 = reg_ready[fa]
            r2 = reg_ready[fb]
            ready = r1 if r1 >= r2 else r2
            bc = seq_floor if seq_floor > cycle else cycle
            if ready > bc:
                data_stall += ready - bc
            candidate = ready if ready > seq_floor else seq_floor
            if candidate <= last_mem_cycle:
                candidate = last_mem_cycle + 1
            if candidate > cycle:
                t = candidate
                issued_here = 1
            else:
                t = cycle
                if issued_here >= width:
                    t += 1.0
                    issued_here = 1
                else:
                    issued_here += 1
            cycle = t
            last_mem_cycle = t
            commit = t + commit_lat
            if not resilient:
                if sb_entries:
                    sb_entries = [e for e in sb_entries if e[0] > commit]
                alloc = commit
                while len(sb_entries) >= sb_cap:
                    earliest = min(e[0] for e in sb_entries)
                    if alloc < earliest:
                        alloc = earliest
                    sb_entries = [e for e in sb_entries if e[0] > alloc]
                if alloc > commit:
                    sb_stall += alloc - commit
                    cycle = alloc
                    issued_here = 1
                sb_entries.append((alloc + baseline_drain, 0, -1))
                if alloc + baseline_drain > final:
                    final = alloc + baseline_drain
                continue
            if next_due <= commit:
                n_unv = len(unverified)
                while uv_head < n_unv and unverified[uv_head][0] <= commit:
                    inst_id = unverified[uv_head][1]
                    uv_head += 1
                    if col_on:
                        promoted = uc.pop(inst_id, None)
                        if promoted:
                            for reg, color in promoted.items():
                                old = vc.get(reg)
                                if old is not None and old != -1:
                                    free = ac.get(reg)
                                    if free is None:
                                        free = ac[reg] = list(
                                            range(num_colors)
                                        )
                                    free.append(old)
                                vc[reg] = color
                    if clq_on:
                        if clq_ideal:
                            clq_loads.pop(inst_id, None)
                        else:
                            clq_ranges.pop(inst_id, None)
                next_due = (
                    unverified[uv_head][0]
                    if uv_head < len(unverified)
                    else INF
                )
            instance = cur_inst if cur_inst >= 0 else 0
            addr = fc
            released = False
            if clq_on:
                if clq_ideal:
                    loads_set = clq_loads.get(instance)
                    war = True if loads_set is None else addr in loads_set
                else:
                    rng = clq_ranges.get(instance)
                    war = (
                        True
                        if rng is None
                        else bool(rng[2]) and rng[0] <= addr <= rng[1]
                    )
                if not war:
                    if sb_min <= commit:
                        sb_entries = [e for e in sb_entries if e[0] > commit]
                        sb_min = INF
                        for e in sb_entries:
                            if e[0] < sb_min:
                                sb_min = e[0]
                    pending = any(e[2] == addr for e in sb_entries)
                    if not pending:
                        released = True
                        warfree += 1
            if not released:
                quarantined += 1
                if sb_min <= commit:
                    sb_entries = [e for e in sb_entries if e[0] > commit]
                    sb_min = INF
                    for e in sb_entries:
                        if e[0] < sb_min:
                            sb_min = e[0]
                alloc = commit
                stalled_open = False
                while len(sb_entries) >= sb_cap:
                    if sb_min == INF:
                        stalled_open = True
                        break
                    if alloc < sb_min:
                        alloc = sb_min
                    sb_entries = [e for e in sb_entries if e[0] > alloc]
                    sb_min = INF
                    for e in sb_entries:
                        if e[0] < sb_min:
                            sb_min = e[0]
                if stalled_open:
                    forced += 1
                    base = commit + wcdl
                    offset = 0
                    converted = []
                    for ent in sb_entries:
                        if ent[1] == instance and ent[0] == INF:
                            converted.append((base + offset, ent[1], ent[2]))
                            offset += 1
                        else:
                            converted.append(ent)
                    sb_entries = converted
                    open_inf = 0
                    sb_min = INF
                    for e in sb_entries:
                        if e[0] < sb_min:
                            sb_min = e[0]
                    alloc = commit
                    while len(sb_entries) >= sb_cap:
                        if sb_min == INF:
                            break
                        if alloc < sb_min:
                            alloc = sb_min
                        sb_entries = [e for e in sb_entries if e[0] > alloc]
                        sb_min = INF
                        for e in sb_entries:
                            if e[0] < sb_min:
                                sb_min = e[0]
                if alloc > commit:
                    sb_stall += alloc - commit
                    cycle = alloc
                    issued_here = 1
                sb_entries.append((INF, instance, addr))
                open_inf += 1
            if commit > final:
                final = commit
            continue
        # op == 7: return
        r1 = reg_ready[fa]
        r2 = reg_ready[fb]
        ready = r1 if r1 >= r2 else r2
        if ready <= cycle:
            if seq_floor <= cycle:
                t = cycle
                if issued_here >= width:
                    t += 1.0
                    issued_here = 1
                else:
                    issued_here += 1
            else:
                t = seq_floor
                issued_here = 1
        elif seq_floor > cycle:
            if ready > seq_floor:
                data_stall += ready - seq_floor
                t = ready
            else:
                t = seq_floor
            issued_here = 1
        else:
            data_stall += ready - cycle
            t = ready
            issued_here = 1
        cycle = t
        if t + 1 > final:
            final = t + 1

    n_instr, n_bound, n_st, n_spill, n_ckpt, n_miss = meta
    stats = SimStats()
    stats.cycles = final if final > cycle else cycle
    stats.instructions = n_instr
    stats.sb_stall_cycles = sb_stall
    stats.data_stall_cycles = data_stall
    # Exact: the solo model adds the integer penalty once per miss.
    stats.branch_stall_cycles = n_miss * float(mispredict)
    stats.stores_total = n_st
    stats.checkpoints_total = n_ckpt
    stats.warfree_released = warfree
    stats.colored_released = colored
    stats.quarantined = quarantined
    stats.spill_stores = n_spill
    stats.app_stores = n_st - n_spill
    stats.regions = n_bound if resilient else 0
    stats.forced_region_closures = forced
    stats.branch_mispredictions = n_miss
    stats.cache = dict(cache_stats)
    if clq_on:
        stats.clq_occupancy_avg = (
            occ_sum / occ_samples if occ_samples else 0.0
        )
        stats.clq_occupancy_max = occ_max
    return stats
