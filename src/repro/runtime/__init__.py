"""Functional execution: golden interpreter, traces, resilient machine."""

from repro.runtime.memory import (
    DATA_BASE,
    DATA_LIMIT,
    Memory,
    STACK_BASE,
    WORD,
    wrap32,
)
from repro.runtime.interpreter import (
    ExecutionLimitExceeded,
    ExecutionResult,
    execute,
)
from repro.runtime.fastsim import (
    FastProgram,
    compile_fast,
    execute_fast,
)
from repro.runtime.trace import (
    K_ALU,
    K_BOUNDARY,
    K_BR,
    K_CKPT,
    K_DIV,
    K_LD,
    K_MUL,
    K_RET,
    K_ST,
    TraceSummary,
)
from repro.runtime.machine import (
    Injection,
    InjectionTarget,
    MachineStats,
    ProtocolError,
    RecoveryFailure,
    ResilienceConfig,
    ResilientMachine,
)

__all__ = [
    "DATA_BASE",
    "DATA_LIMIT",
    "Memory",
    "STACK_BASE",
    "WORD",
    "wrap32",
    "ExecutionLimitExceeded",
    "ExecutionResult",
    "execute",
    "FastProgram",
    "compile_fast",
    "execute_fast",
    "K_ALU",
    "K_BOUNDARY",
    "K_BR",
    "K_CKPT",
    "K_DIV",
    "K_LD",
    "K_MUL",
    "K_RET",
    "K_ST",
    "TraceSummary",
    "Injection",
    "InjectionTarget",
    "MachineStats",
    "ProtocolError",
    "RecoveryFailure",
    "ResilienceConfig",
    "ResilientMachine",
]
