"""ECC overhead on top of the CACTI-style array model.

Extends :mod:`repro.hwcost.cacti` with the two costs an error code
adds to a protected array:

1. **Check-bit storage** — the array is rebuilt with
   ``bits_per_entry`` inflated by the layout's check bits, through the
   same calibrated ``ram_array`` / ``cam_array`` constructors, so the
   Table 1 anchor rows stay the zero-check baseline.
2. **Encoder/decoder logic** — first-order XOR-tree estimate: the
   syndrome/check network needs one 2-input XOR per excess term of the
   parity-check matrix (``ones(H) - r``), counted twice for the write
   (encode) and read (syndrome) sides, plus a correction stage of one
   gate-equivalent per codeword bit for the column-match/flip network.

Gate constants are 22 nm standard-cell ballparks, deliberately on the
same first-order footing as the array constants they extend.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ecc.layout import Layout
from repro.hwcost.cacti import ArrayCost, cam_array, ram_array

#: 2-input XOR standard cell at 22 nm: area and per-toggle energy.
XOR2_AREA_UM2 = 0.65
XOR2_ENERGY_PJ = 0.0002
#: Gate-equivalent for the correction stage (column match + flip mux).
CORRECTOR_GATE_AREA_UM2 = 0.45
CORRECTOR_GATE_ENERGY_PJ = 0.0001


@dataclass(frozen=True)
class EccCost:
    """Full cost of one protected structure under one layout."""

    layout_name: str
    base: ArrayCost  # unprotected array (Table 1 geometry)
    protected: ArrayCost  # array with check-bit columns added
    logic_area_um2: float
    logic_energy_pj: float
    check_bits: int
    xor_terms: int

    @property
    def area_um2(self) -> float:
        return self.protected.area_um2 + self.logic_area_um2

    @property
    def energy_pj(self) -> float:
        return self.protected.dynamic_energy_pj + self.logic_energy_pj

    @property
    def area_overhead(self) -> float:
        """Fractional area cost over the unprotected array."""
        return self.area_um2 / self.base.area_um2 - 1.0

    @property
    def energy_overhead(self) -> float:
        return self.energy_pj / self.base.dynamic_energy_pj - 1.0


def _array(kind: str, name: str, entries: int, bits: int) -> ArrayCost:
    if kind == "cam":
        return cam_array(name, entries, bits)
    return ram_array(name, entries, bits)


def layout_cost(layout: Layout) -> EccCost:
    """Cost one (code, structure) layout through the array model."""
    geom = layout.structure
    base = _array(geom.array_kind, geom.name, geom.entries, geom.word_bits)
    protected = _array(
        geom.array_kind,
        f"{geom.name}+{layout.code_name}",
        geom.entries,
        layout.total_bits,
    )
    xor_terms = 0
    corrector_bits = 0
    for code in layout.codes:
        ones = sum(col.bit_count() for col in code.columns)
        xor_terms += 2 * max(0, ones - code.r)  # encode + syndrome trees
        corrector_bits += code.n
    logic_area = (
        xor_terms * XOR2_AREA_UM2
        + corrector_bits * CORRECTOR_GATE_AREA_UM2
    )
    logic_energy = (
        xor_terms * XOR2_ENERGY_PJ
        + corrector_bits * CORRECTOR_GATE_ENERGY_PJ
    )
    return EccCost(
        layout_name=f"{geom.name}/{layout.code_name}"
        + ("/interleaved" if layout.interleave else ""),
        base=base,
        protected=protected,
        logic_area_um2=logic_area,
        logic_energy_pj=logic_energy,
        check_bits=layout.check_bits,
        xor_terms=xor_terms,
    )
