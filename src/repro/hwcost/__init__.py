"""Analytical hardware area/energy cost models (Table 1)."""

from repro.hwcost.cacti import (
    ArrayCost,
    Table1,
    build_table1,
    cam_array,
    clq_cost,
    color_maps_cost,
    ram_array,
    store_buffer_cost,
)

__all__ = [
    "ArrayCost",
    "Table1",
    "build_table1",
    "cam_array",
    "clq_cost",
    "color_maps_cost",
    "ram_array",
    "store_buffer_cost",
]
