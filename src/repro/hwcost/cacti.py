"""Analytical CAM/RAM array cost model (Table 1).

A simplified CACTI-style model at 22 nm: array area is cells + peripheral
overhead, dynamic access energy scales with the bits switched per access.
CAM cells (store-buffer address matching) are substantially larger and
hungrier than 6T SRAM cells because of the match-line comparators.

Constants are calibrated so the paper's Table 1 anchor points reproduce:

* 4-entry SB (CAM, ~49-bit address + 64-bit data per entry): 621.28 um^2,
  0.43099 pJ/access;
* 40-entry SB: ~5.04x the 4-entry area (504%), ~4.97x energy;
* Turnpike's color maps (24 B RAM): 36.651 um^2, 0.02518 pJ;
* 2-entry CLQ (16 B RAM): 24.434 um^2, 0.01679 pJ.
"""

from __future__ import annotations

from dataclasses import dataclass

# 22 nm cell footprints (um^2 per bit) and per-bit switching energy (pJ).
# The peripheral constants are solved from the paper's Table 1 anchors
# (4/40-entry SB, 32x6-bit color maps, 2x64-bit CLQ), so the model
# reproduces those rows exactly and interpolates/extrapolates elsewhere.
SRAM_CELL_AREA_UM2 = 0.110
CAM_CELL_AREA_UM2 = 0.160
SRAM_BIT_ENERGY_PJ = 0.00005  # per stored bit read out
CAM_BIT_ENERGY_PJ = 0.00010  # per bit, entire array searched

RAM_FIXED_AREA_UM2 = 10.0088
RAM_PER_ENTRY_AREA_UM2 = 0.17257
CAM_FIXED_AREA_UM2 = 342.26
CAM_PER_ENTRY_AREA_UM2 = 50.556

RAM_FIXED_ENERGY_PJ = 0.012837
RAM_PER_ENTRY_ENERGY_PJ = 0.000376
CAM_FIXED_ENERGY_PJ = 0.24385
CAM_PER_ENTRY_ENERGY_PJ = 0.034785

# Store buffer entry geometry (AArch64-like): 49-bit physical address +
# 64-bit data + status.
SB_ENTRY_BITS = 120


@dataclass(frozen=True)
class ArrayCost:
    """Area and per-access dynamic energy of one hardware array."""

    name: str
    area_um2: float
    dynamic_energy_pj: float

    def relative_to(self, other: "ArrayCost") -> tuple[float, float]:
        return (
            self.area_um2 / other.area_um2,
            self.dynamic_energy_pj / other.dynamic_energy_pj,
        )


def ram_array(name: str, entries: int, bits_per_entry: int) -> ArrayCost:
    """Cost of a RAM (direct-indexed) array: one entry read per access."""
    bits = entries * bits_per_entry
    area = (
        RAM_FIXED_AREA_UM2
        + entries * RAM_PER_ENTRY_AREA_UM2
        + bits * SRAM_CELL_AREA_UM2
    )
    energy = (
        RAM_FIXED_ENERGY_PJ
        + entries * RAM_PER_ENTRY_ENERGY_PJ
        + bits_per_entry * SRAM_BIT_ENERGY_PJ
    )
    return ArrayCost(name=name, area_um2=area, dynamic_energy_pj=energy)


def cam_array(name: str, entries: int, bits_per_entry: int) -> ArrayCost:
    """Cost of a CAM (content-searched) array.

    Every access searches all entries, so dynamic energy scales with the
    full array, not one entry — this is why large store buffers are
    unrealistic for low-power in-order cores (Section 5).
    """
    bits = entries * bits_per_entry
    area = CAM_FIXED_AREA_UM2 + entries * CAM_PER_ENTRY_AREA_UM2 + bits * CAM_CELL_AREA_UM2
    energy = (
        CAM_FIXED_ENERGY_PJ
        + entries * CAM_PER_ENTRY_ENERGY_PJ
        + bits * CAM_BIT_ENERGY_PJ
    )
    return ArrayCost(name=name, area_um2=area, dynamic_energy_pj=energy)


def store_buffer_cost(entries: int) -> ArrayCost:
    """Store buffer with store-to-load-forwarding CAM search."""
    return cam_array(f"{entries}-entry SB (CAM)", entries, SB_ENTRY_BITS)


def color_maps_cost(num_registers: int = 32, num_colors: int = 4) -> ArrayCost:
    """AC/UC/VC maps: 3 * log2(colors) bits per register (Section 6.5)."""
    import math

    bits_per_reg = 3 * max(1, math.ceil(math.log2(num_colors)))
    return ram_array(
        "Color maps in Turnpike (RAM)", num_registers, bits_per_reg
    )


def clq_cost(entries: int = 2) -> ArrayCost:
    """Compact CLQ: two 32-bit range bounds per entry (16 B at 2 entries)."""
    return ram_array(f"{entries}-entry CLQ in Turnpike (RAM)", entries, 64)


@dataclass(frozen=True)
class Table1:
    """All rows of the paper's Table 1."""

    sb4: ArrayCost
    color_maps: ArrayCost
    clq2: ArrayCost
    sb40: ArrayCost

    @property
    def turnpike_total(self) -> ArrayCost:
        return ArrayCost(
            name="Turnpike in total (color maps + 2-entry CLQ)",
            area_um2=self.color_maps.area_um2 + self.clq2.area_um2,
            dynamic_energy_pj=self.color_maps.dynamic_energy_pj
            + self.clq2.dynamic_energy_pj,
        )

    @property
    def turnpike_vs_sb4(self) -> tuple[float, float]:
        """Turnpike's relative overhead vs the 4-entry SB (paper: ~9.8%/9.7%)."""
        return self.turnpike_total.relative_to(self.sb4)

    @property
    def sb40_vs_sb4(self) -> tuple[float, float]:
        """Large-SB scaling (paper: ~504%/497%)."""
        return self.sb40.relative_to(self.sb4)

    def rows(self) -> list[ArrayCost]:
        return [
            self.sb4,
            self.color_maps,
            self.clq2,
            self.turnpike_total,
            self.sb40,
        ]


def build_table1(
    num_registers: int = 32, num_colors: int = 4, clq_entries: int = 2
) -> Table1:
    return Table1(
        sb4=store_buffer_cost(4),
        color_maps=color_maps_cost(num_registers, num_colors),
        clq2=clq_cost(clq_entries),
        sb40=store_buffer_cost(40),
    )
