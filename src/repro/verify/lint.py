"""The ``repro lint`` driver: verify compiled benchmarks from the CLI.

Compiles each requested benchmark under the chosen scheme, runs the
verifier rule suite (differential WAR cross-checking included by
default), and renders the findings as text, JSON, or SARIF.

Exit codes follow lint conventions: 0 when no error-severity finding
exists (warnings allowed unless ``--strict``), 1 when findings fail the
run, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import TextIO

from repro.verify.diagnostics import VerificationReport
from repro.verify.manager import VerifierContext, default_manager
from repro.verify.sarif import render_sarif

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def lint_benchmark(
    uid: str,
    scheme: str = "turnpike",
    sb_size: int = 4,
    differential: bool = True,
    max_steps: int = 2_000_000,
    upset_model: str = "single",
) -> VerificationReport:
    """Compile one benchmark and verify it."""
    from repro.compiler.config import turnpike_config, turnstile_config
    from repro.compiler.pipeline import compile_program
    from repro.workloads.suites import load_workload

    workload = load_workload(uid)
    if scheme == "turnstile":
        config = turnstile_config(sb_size=sb_size)
    else:
        config = turnpike_config(sb_size=sb_size)
    compiled = compile_program(workload.program, config)
    ctx = VerifierContext(
        compiled,
        differential=differential,
        memory_factory=workload.fresh_memory,
        max_steps=max_steps,
    )
    report = default_manager(upset_model=upset_model).run(ctx)
    # Report under the benchmark uid rather than the internal program
    # name, so CLI findings are attributable; diagnostic locations keep
    # the program name.
    report.program = uid
    return report


def _lint_job(
    job: tuple[str, str, int, bool, str]
) -> tuple[str, VerificationReport | None, str | None]:
    """Multiprocessing entry point: lint one benchmark in a worker.

    Must stay module-level (picklable) and take a single tuple so it can
    be mapped over a process pool; reports are plain dataclasses and
    travel back to the parent intact. A verifier crash is contained
    here — returned as ``(uid, None, error)`` instead of propagating —
    so one broken program cannot take down a whole ``--all`` run.
    """
    uid, scheme, sb_size, differential, upset_model = job
    try:
        report = lint_benchmark(
            uid,
            scheme=scheme,
            sb_size=sb_size,
            differential=differential,
            upset_model=upset_model,
        )
    except Exception as exc:  # containment is the point: report, don't die
        return uid, None, f"{type(exc).__name__}: {exc}"
    return uid, report, None


def _lint_all(
    uids: list[str],
    scheme: str,
    sb_size: int,
    differential: bool,
    workers: int,
    upset_model: str = "single",
) -> list[tuple[str, VerificationReport | None, str | None]]:
    """Lint many benchmarks, fanning out across processes when asked.

    Results come back in ``uids`` order regardless of worker count, so
    text/JSON/SARIF output is deterministic either way.
    """
    jobs = [
        (uid, scheme, sb_size, differential, upset_model) for uid in uids
    ]
    if workers <= 1 or len(jobs) <= 1:
        return [_lint_job(job) for job in jobs]
    import multiprocessing as mp

    with mp.get_context().Pool(min(workers, len(jobs))) as pool:
        return pool.map(_lint_job, jobs, chunksize=1)


def run_lint(args: argparse.Namespace, out: TextIO | None = None) -> int:
    """Handler for ``repro lint`` (argparse namespace in, exit code out)."""
    from repro.workloads.suites import all_profiles

    # Resolve the stream at call time so output redirection (pytest
    # capture, shell pipes set up after import) is respected.
    if out is None:
        out = sys.stdout

    if args.all and args.uid:
        print("lint: give either a benchmark uid or --all, not both",
              file=sys.stderr)
        return EXIT_USAGE
    if not args.all and not args.uid:
        print("lint: need a benchmark uid or --all", file=sys.stderr)
        return EXIT_USAGE
    uids = (
        [p.uid for p in all_profiles()] if args.all else [args.uid]
    )
    known = {p.uid for p in all_profiles()}
    unknown = [u for u in uids if u not in known]
    if unknown:
        print(f"lint: unknown benchmark(s): {', '.join(unknown)}",
              file=sys.stderr)
        return EXIT_USAGE

    from repro.harness.runner import resolve_workers

    upset_model = getattr(args, "upset_model", None) or "single"
    try:
        from repro.ecc.faultmodel import pattern

        pattern(upset_model)
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return EXIT_USAGE

    workers = resolve_workers(getattr(args, "workers", None))
    results = _lint_all(
        uids,
        scheme=args.scheme,
        sb_size=args.sb,
        differential=not args.no_differential,
        workers=workers,
        upset_model=upset_model,
    )
    reports = [report for _, report, _ in results if report is not None]
    crashed = [(uid, error) for uid, report, error in results if report is None]
    for uid, error in crashed:
        print(f"lint: {uid}: verifier crashed: {error}", file=sys.stderr)
    if args.format == "text":
        for report in reports:
            print(report.render_text(max_per_rule=args.max_per_rule),
                  file=out)

    rendered: str | None = None
    if args.format == "json":
        rendered = json.dumps(
            {
                "reports": [r.to_dict() for r in reports],
                "ok": all(r.ok for r in reports),
            },
            indent=2,
            sort_keys=True,
        )
    elif args.format == "sarif":
        rendered = render_sarif(reports)
    if rendered is not None:
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(rendered + "\n")
        else:
            print(rendered, file=out)
    elif args.output:
        with open(args.output, "w") as fh:
            for report in reports:
                fh.write(report.render_text(args.max_per_rule) + "\n")

    errors = sum(len(r.errors) for r in reports)
    warnings = sum(len(r.warnings) for r in reports)
    if args.format == "text":
        verdict = (
            "CRASH" if crashed
            else "FAIL" if errors or (args.strict and warnings)
            else "OK"
        )
        crash_note = ""
        if crashed:
            crash_note = (
                f", {len(crashed)} crashed "
                f"({', '.join(uid for uid, _ in crashed)})"
            )
        print(
            f"lint: {len(reports)} program(s), {errors} error(s), "
            f"{warnings} warning(s){crash_note} -> {verdict}",
            file=out,
        )
    if crashed:
        return EXIT_USAGE
    if errors:
        return EXIT_FINDINGS
    if args.strict and warnings:
        return EXIT_FINDINGS
    return EXIT_CLEAN
