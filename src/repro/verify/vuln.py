"""Bit-level static vulnerability analysis (BVA) over compiled programs.

Following the BEC line of work, a large fraction of soft-error injection
cells can be classified *statically*, without running a single faulty
execution. This module classifies every ``(target structure, bit,
cycle)`` cell of a fault-injection campaign as:

* ``masked`` — a flip provably cannot change the architectural outcome
  (the final data-segment memory image). Register cells are masked when
  the struck bit is dead — no instruction on the committed path reads it
  before it is overwritten; structure cells (store buffer / CLQ /
  colour maps) are masked when the structure holds no populated entry
  at the strike cycle, so the machine's ``corrupt`` hook is a no-op.
* ``vulnerable`` — a flip *may* change the outcome (the bit is live, or
  the structure is occupied). This is a conservative upper bound: the
  dynamic corruption probability of vulnerable cells is what the
  importance-sampled campaigns of :mod:`repro.faults.sampling` estimate.
* ``unknown`` — the analysis makes no claim (reserved registers, the
  deliberately broken ``unsafe`` protocol variant, target kinds the
  analysis does not model such as PC/memory/checkpoint storage).

Soundness argument for register cells (the subtle case): a bit of
register ``r`` struck right after commit tick ``t`` is restored to a
clean value before any read whenever backward *bit-level* liveness over
the committed golden instruction stream shows the bit dead after ``t``.
Every injection schedules acoustic detection within WCDL cycles, and
region-level recovery restores live-in registers from verified bindings
while dead registers are rewritten before any replayed read. The
transfer functions are conservative where precision is not worth the
risk: load/store addresses, store values, branch operands and
checkpointed registers are always treated as full 32-bit reads, and
carry-propagating ALU ops (ADD/SUB/MUL and immediate forms) read the
down-fill of the destination's live mask. The classification is only
claimed for the protocol-sound variants (``turnstile``, ``warfree``,
``turnpike``); under ``unsafe`` everything is ``unknown`` because even
an injection that corrupts nothing can trigger an unsafe recovery.

The resulting :class:`VulnerabilityMap` is persisted in the artifact
cache keyed by the source digest, surfaced through verifier rules R7/R8,
the ``repro vuln`` CLI, and the stratified sampler in
:mod:`repro.faults.sampling`.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.isa.instructions import BRANCH_OPS, Instruction, Opcode
from repro.isa.program import Program
from repro.runtime.interpreter import _BRANCH_EVAL, _eval_alu
from repro.runtime.machine import ResilienceConfig, ResilientMachine
from repro.runtime.memory import STACK_BASE, Memory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.compiler.pipeline import CompiledProgram
    from repro.isa.registers import Reg

MASKED = "masked"
VULNERABLE = "vulnerable"
UNKNOWN = "unknown"

#: Protocol variants for which the masked classification is claimed.
#: ``unsafe`` deliberately violates the checkpoint-release protocol
#: (Figure 16), so even a no-op strike can corrupt the outcome there.
SOUND_VARIANTS = ("turnstile", "warfree", "turnpike")

DEFAULT_VULN_VARIANTS = ("turnstile", "warfree", "turnpike")

#: Structures whose occupancy the analysis models per cycle.
STRUCTURE_TARGETS = ("store_buffer", "clq", "coloring")

_FULL = 0xFFFF_FFFF


def variant_config(variant: str, wcdl: int = 10) -> ResilienceConfig:
    """The machine config of one campaign protocol variant.

    Mirrors the constructors in :mod:`repro.faults.campaign` (kept
    independent to avoid an import cycle through the sampling module;
    ``tests/test_vuln_analysis.py`` locks the two in agreement).
    """
    if variant == "turnstile":
        return ResilienceConfig(wcdl=wcdl, clq_enabled=False, coloring_enabled=False)
    if variant == "warfree":
        return ResilienceConfig(wcdl=wcdl, clq_enabled=True, coloring_enabled=False)
    if variant == "turnpike":
        return ResilienceConfig(wcdl=wcdl, clq_enabled=True, coloring_enabled=True)
    if variant == "unsafe":
        return ResilienceConfig(
            wcdl=wcdl,
            clq_enabled=True,
            coloring_enabled=False,
            unsafe_checkpoint_release=True,
        )
    raise ValueError(f"unknown protocol variant {variant!r}")


def scheme_variant(scheme: str) -> str | None:
    """Map a compiler scheme name to its campaign protocol variant."""
    return {"turnpike": "turnpike", "turnstile": "turnstile"}.get(scheme)


# -- committed instruction stream --------------------------------------------


def committed_stream(
    program: Program,
    memory: Memory,
    max_steps: int = 4_000_000,
) -> list[Instruction]:
    """Execute ``program`` and return the committed instruction stream.

    The stream contains every committed non-BOUNDARY instruction in
    order (mirroring the resilient machine's tick counter: tick ``t`` is
    the ``t``-th entry, 1-based; the final entry is the RET). BOUNDARY
    markers do not advance the machine's tick and are excluded.
    """
    regs: dict[Reg, int] = {program.register_file.stack_pointer: STACK_BASE}
    blocks = {b.label: b.instructions for b in program.blocks}
    label = program.entry.label
    instrs = blocks[label]
    pc = 0
    steps = 0
    out: list[Instruction] = []
    get = regs.get
    while True:
        if pc >= len(instrs):
            raise RuntimeError(f"fell off the end of block {label!r}")
        instr = instrs[pc]
        steps += 1
        if steps > max_steps:
            raise RuntimeError(
                f"{program.name}: vulnerability walk exceeded {max_steps} steps"
            )
        op = instr.op
        srcs = instr.srcs
        if op is Opcode.BOUNDARY:
            pc += 1
            continue
        out.append(instr)
        if op is Opcode.LD:
            addr = get(srcs[0], 0) + instr.imm
            if instr.dest is not None:
                regs[instr.dest] = memory.load(addr)
            pc += 1
        elif op is Opcode.ST:
            addr = get(srcs[1], 0) + instr.imm
            memory.store(addr, get(srcs[0], 0))
            pc += 1
        elif op is Opcode.CKPT:
            pc += 1
        elif op in _BRANCH_EVAL:
            taken = _BRANCH_EVAL[op](get(srcs[0], 0), get(srcs[1], 0))
            label = instr.targets[0] if taken else instr.targets[1]
            instrs = blocks[label]
            pc = 0
        elif op is Opcode.JMP:
            label = instr.targets[0]
            instrs = blocks[label]
            pc = 0
        elif op is Opcode.RET:
            return out
        else:
            value = _eval_alu(op, instr, get)
            if instr.dest is not None:
                regs[instr.dest] = value
            pc += 1


# -- backward bit-level liveness ---------------------------------------------


def _down_fill(mask: int) -> int:
    """All bits at or below the mask's most significant set bit."""
    return (1 << mask.bit_length()) - 1 if mask else 0


_LINEAR_OPS = frozenset(
    {Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.ADDI, Opcode.MULI}
)
_BITWISE_OPS = frozenset({Opcode.AND, Opcode.OR, Opcode.XOR})
_OPAQUE_OPS = frozenset(
    {Opcode.DIV, Opcode.REM, Opcode.SLT, Opcode.SEQ, Opcode.SHL, Opcode.SHR}
)


def _transfer(instr: Instruction, live: dict[int, int]) -> None:
    """One backward step: update live-after masks across ``instr``.

    ``live`` maps register index to the live-after bit mask *below* the
    instruction; on return it holds the mask *above* it.
    """
    op = instr.op
    srcs = instr.srcs

    def read_full(regs: tuple[Reg, ...]) -> None:
        for reg in regs:
            live[reg.index] = _FULL

    if op in BRANCH_OPS:
        read_full(srcs)
        return
    if op is Opcode.CKPT or op is Opcode.ST:
        # Checkpointed values feed recovery; store value and address feed
        # memory. All are unconditional full-width reads.
        read_full(srcs)
        return
    if op is Opcode.JMP or op is Opcode.RET or op is Opcode.BOUNDARY:
        return

    dest = instr.dest
    if op is Opcode.LD:
        if dest is not None:
            live.pop(dest.index, None)
        # The base address steers which word is read: always live, even
        # when the loaded value is dead (a corrupt address could perturb
        # CLQ bookkeeping the fast-release argument depends on).
        read_full(srcs[:1])
        return

    if dest is None:
        return
    dmask = live.pop(dest.index, 0)
    if not dmask:
        return  # fully dead destination: a pure ALU op reads nothing live
    gains: dict[int, int] = {}
    if op in _LINEAR_OPS:
        gain = _down_fill(dmask)
        for reg in srcs:
            gains[reg.index] = gains.get(reg.index, 0) | gain
    elif op in _BITWISE_OPS or op is Opcode.MOV:
        for reg in srcs:
            gains[reg.index] = gains.get(reg.index, 0) | dmask
    elif op is Opcode.ANDI:
        gains[srcs[0].index] = dmask & instr.imm & _FULL
    elif op is Opcode.SHLI:
        gains[srcs[0].index] = dmask >> (instr.imm & 31)
    elif op is Opcode.SHRI:
        gains[srcs[0].index] = (dmask << (instr.imm & 31)) & _FULL
    elif op is Opcode.LI:
        pass  # no register sources
    else:
        # Opaque or unmodelled op (DIV/REM/compares/variable shifts):
        # any live destination bit may depend on every source bit.
        for reg in srcs:
            gains[reg.index] = _FULL
    for index, gain in gains.items():
        if gain:
            live[index] = live.get(index, 0) | gain


def register_bit_liveness(
    stream: list[Instruction],
) -> dict[int, list[tuple[int, int, int]]]:
    """Per-register live-after bit masks as run-length intervals.

    Returns ``{reg_index: [(start, end, mask), ...]}`` where ``mask`` is
    the live-after mask for every tick ``t`` in the inclusive interval
    ``[start, end]``; ticks not covered by any interval have mask 0
    (every bit masked). Intervals are ascending and disjoint.
    """
    ticks = len(stream)
    live: dict[int, int] = {}
    upper: dict[int, int] = {}
    runs: dict[int, list[tuple[int, int, int]]] = {}
    for t in range(ticks, 0, -1):
        # Entering this iteration, ``live`` holds live_after(., t).
        before = dict(live)
        _transfer(stream[t - 1], live)
        changed = set(before) | set(live)
        for index in changed:
            old = before.get(index, 0)
            new = live.get(index, 0)
            if old == new:
                continue
            hi = upper.get(index, ticks)
            if old:
                runs.setdefault(index, []).append((t, hi, old))
            upper[index] = t - 1
    for index, mask in live.items():
        if mask:
            runs.setdefault(index, []).append((1, upper.get(index, ticks), mask))
    for intervals in runs.values():
        intervals.reverse()
    return runs


# -- per-variant structure occupancy -----------------------------------------


def structure_occupancy(
    compiled: CompiledProgram,
    config: ResilienceConfig,
    memory: Memory,
    expected_ticks: int,
    max_steps: int = 8_000_000,
) -> dict[str, list[tuple[int, int]]]:
    """Occupied-cycle intervals of each injectable structure.

    Runs one fault-free resilient execution under ``config`` and records,
    per committed tick, whether a strike into each structure could hit a
    populated entry — exactly the criterion the machine's ``corrupt``
    hooks apply. Returns inclusive ``(start, end)`` intervals per
    structure name. Ticks outside every interval are strike no-ops.
    """
    machine = ResilientMachine(compiled, config, memory.copy(), max_steps=max_steps)
    state: dict[str, tuple[int, int] | None] = {
        name: None for name in STRUCTURE_TARGETS
    }
    out: dict[str, list[tuple[int, int]]] = {name: [] for name in STRUCTURE_TARGETS}
    last_tick = [0]

    def observe(name: str, occupied: bool, t: int) -> None:
        run = state[name]
        if occupied:
            if run is None:
                state[name] = (t, t)
            else:
                state[name] = (run[0], t)
        elif run is not None:
            out[name].append(run)
            state[name] = None

    def hook(label: str, pc: int, t: int, steps: int) -> None:
        last_tick[0] = t
        observe("store_buffer", bool(machine.sb.entries), t)
        clq = machine.clq
        observe("clq", clq is not None and clq.strike_targets() > 0, t)
        observe("coloring", machine.coloring.strike_targets() > 0, t)

    machine._on_tick = hook
    machine.run()
    for name in STRUCTURE_TARGETS:
        run = state[name]
        if run is not None:
            out[name].append(run)
    if last_tick[0] != expected_ticks - 1:
        raise RuntimeError(
            f"{compiled.program.name}: fault-free resilient run committed "
            f"{last_tick[0] + 1} ticks, golden walk committed {expected_ticks}"
        )
    return out


# -- the vulnerability map ---------------------------------------------------


@dataclass
class VulnerabilityMap:
    """Static masked/vulnerable/unknown classification of one program.

    ``ticks`` is the committed instruction count N (the RET commits at
    tick N); the campaign horizon is ``max(2, N - 1)`` and injection
    times range over ``[1, horizon - 1]``. ``reg_live`` holds live-after
    bit masks as inclusive RLE intervals; ``structures`` holds occupied
    tick intervals per protocol variant; ``active`` lists the structures
    that physically exist under each variant.
    """

    uid: str
    scheme: str
    wcdl: int
    ticks: int
    num_registers: int
    reserved: tuple[int, ...]
    variants: tuple[str, ...]
    active: dict[str, tuple[str, ...]]
    reg_live: dict[int, list[tuple[int, int, int]]]
    structures: dict[str, dict[str, list[tuple[int, int]]]]
    _starts: dict[int, list[int]] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def horizon(self) -> int:
        return max(2, self.ticks - 1)

    # -- lookups -----------------------------------------------------------

    def register_live_mask(self, reg: int, time: int) -> int:
        """Live-after bit mask of register ``reg`` at tick ``time``."""
        intervals = self.reg_live.get(reg)
        if not intervals:
            return 0
        starts = self._starts.get(reg)
        if starts is None:
            starts = self._starts[reg] = [iv[0] for iv in intervals]
        pos = bisect_right(starts, time) - 1
        if pos < 0:
            return 0
        start, end, mask = intervals[pos]
        return mask if start <= time <= end else 0

    def structure_occupied(self, variant: str, structure: str, time: int) -> bool:
        intervals = self.structures.get(variant, {}).get(structure, [])
        for start, end in intervals:
            if start <= time <= end:
                return True
            if start > time:
                break
        return False

    def classify(
        self,
        target: str,
        time: int,
        bit: int = 0,
        reg: int | None = None,
        variant: str = "turnpike",
    ) -> str:
        """Classify one injection cell as masked/vulnerable/unknown."""
        if variant not in SOUND_VARIANTS or variant not in self.variants:
            return UNKNOWN
        if time >= self.ticks:
            return MASKED  # the run returns at the RET tick; never applied
        if time < 1 or not 0 <= bit < 32:
            return UNKNOWN
        if target == "register":
            if reg is None or reg in self.reserved:
                return UNKNOWN
            if not 0 <= reg < self.num_registers:
                return UNKNOWN
            mask = self.register_live_mask(reg, time)
            return VULNERABLE if (mask >> bit) & 1 else MASKED
        if target in STRUCTURE_TARGETS:
            if self.structure_occupied(variant, target, time):
                return VULNERABLE
            return MASKED
        return UNKNOWN

    # -- aggregate views ---------------------------------------------------

    def _times(self) -> int:
        """Size of the campaign time population ``[1, horizon - 1]``."""
        return max(0, self.horizon - 1)

    def breakdown(self, variant: str) -> dict[str, dict[str, int]]:
        """Cell counts per target over the campaign population.

        The population matches what enumerated campaigns draw from:
        injection times in ``[1, horizon - 1]``, 32 bits, and (for the
        register target) every non-reserved register.
        """
        times = self._times()
        lo, hi = 1, self.horizon - 1
        out: dict[str, dict[str, int]] = {}
        regs = [
            r for r in range(self.num_registers) if r not in self.reserved
        ]
        total = len(regs) * 32 * times
        if variant not in SOUND_VARIANTS or variant not in self.variants:
            out["register"] = {
                "cells": total, "masked": 0, "vulnerable": 0, "unknown": total,
            }
        else:
            vulnerable = 0
            for r in regs:
                for start, end, mask in self.reg_live.get(r, []):
                    s, e = max(start, lo), min(end, hi)
                    if s <= e:
                        vulnerable += (e - s + 1) * mask.bit_count()
            out["register"] = {
                "cells": total,
                "masked": total - vulnerable,
                "vulnerable": vulnerable,
                "unknown": 0,
            }
        stotal = 32 * times
        for name in STRUCTURE_TARGETS:
            if variant not in SOUND_VARIANTS or variant not in self.variants:
                out[name] = {
                    "cells": stotal, "masked": 0, "vulnerable": 0,
                    "unknown": stotal,
                }
                continue
            occupied = 0
            for start, end in self.structures.get(variant, {}).get(name, []):
                s, e = max(start, lo), min(end, hi)
                if s <= e:
                    occupied += e - s + 1
            out[name] = {
                "cells": stotal,
                "masked": stotal - occupied * 32,
                "vulnerable": occupied * 32,
                "unknown": 0,
            }
        return out

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        return {
            "uid": self.uid,
            "scheme": self.scheme,
            "wcdl": self.wcdl,
            "ticks": self.ticks,
            "num_registers": self.num_registers,
            "reserved": list(self.reserved),
            "variants": list(self.variants),
            "active": {v: list(names) for v, names in self.active.items()},
            "reg_live": {
                str(reg): [list(iv) for iv in intervals]
                for reg, intervals in sorted(self.reg_live.items())
            },
            "structures": {
                v: {
                    name: [list(iv) for iv in intervals]
                    for name, intervals in per.items()
                }
                for v, per in self.structures.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> VulnerabilityMap:
        reserved = data["reserved"]
        variants = data["variants"]
        active = data["active"]
        reg_live = data["reg_live"]
        structures = data["structures"]
        wcdl = data["wcdl"]
        ticks = data["ticks"]
        num_registers = data["num_registers"]
        if not (
            isinstance(reserved, list)
            and isinstance(variants, list)
            and isinstance(active, dict)
            and isinstance(reg_live, dict)
            and isinstance(structures, dict)
            and isinstance(wcdl, int)
            and isinstance(ticks, int)
            and isinstance(num_registers, int)
        ):
            raise TypeError("malformed vulnerability-map payload")
        return cls(
            uid=str(data["uid"]),
            scheme=str(data["scheme"]),
            wcdl=wcdl,
            ticks=ticks,
            num_registers=num_registers,
            reserved=tuple(int(i) for i in reserved),
            variants=tuple(str(v) for v in variants),
            active={
                str(v): tuple(str(n) for n in names)
                for v, names in active.items()
            },
            reg_live={
                int(reg): [(int(iv[0]), int(iv[1]), int(iv[2])) for iv in intervals]
                for reg, intervals in reg_live.items()
            },
            structures={
                str(v): {
                    str(name): [(int(iv[0]), int(iv[1])) for iv in intervals]
                    for name, intervals in per.items()
                }
                for v, per in structures.items()
            },
        )

    def render_text(self) -> str:
        """Deterministic human-readable per-structure breakdown."""
        lines = [
            f"{self.uid} [{self.scheme}]: {self.ticks} committed ticks, "
            f"horizon {self.horizon}, wcdl {self.wcdl}"
        ]
        for variant in self.variants:
            lines.append(f"  variant {variant}:")
            per = self.breakdown(variant)
            for name in ("register", *STRUCTURE_TARGETS):
                row = per[name]
                cells = row["cells"]
                if cells == 0:
                    continue
                note = ""
                if name in STRUCTURE_TARGETS and name not in self.active.get(
                    variant, ()
                ):
                    note = " (absent)"
                lines.append(
                    f"    {name:<12} {cells:>10} cells  "
                    f"masked {row['masked'] / cells:7.2%}  "
                    f"vulnerable {row['vulnerable'] / cells:7.2%}  "
                    f"unknown {row['unknown'] / cells:7.2%}{note}"
                )
        return "\n".join(lines)


# -- builders ----------------------------------------------------------------


def build_map(
    compiled: CompiledProgram,
    memory_factory: Callable[[], Memory],
    *,
    uid: str,
    wcdl: int = 10,
    variants: tuple[str, ...] = DEFAULT_VULN_VARIANTS,
    max_steps: int = 4_000_000,
) -> VulnerabilityMap:
    """Compute the vulnerability map of one compiled program.

    ``memory_factory`` supplies a fresh initial memory per execution
    (one golden walk plus one fault-free resilient run per variant).
    """
    if compiled.recovery is None:
        raise ValueError(
            "vulnerability analysis needs a resilience-compiled program"
        )
    program = compiled.program
    stream = committed_stream(program, memory_factory(), max_steps)
    ticks = len(stream)
    reg_live = register_bit_liveness(stream)
    structures: dict[str, dict[str, list[tuple[int, int]]]] = {}
    active: dict[str, tuple[str, ...]] = {}
    for variant in variants:
        config = variant_config(variant, wcdl)
        names = ["store_buffer"]
        if config.clq_enabled:
            names.append("clq")
        if config.coloring_enabled:
            names.append("coloring")
        active[variant] = tuple(names)
        if variant in SOUND_VARIANTS:
            structures[variant] = structure_occupancy(
                compiled,
                config,
                memory_factory(),
                ticks,
                max_steps=2 * max_steps,
            )
        else:
            structures[variant] = {name: [] for name in STRUCTURE_TARGETS}
    rf = program.register_file
    return VulnerabilityMap(
        uid=uid,
        scheme=compiled.config.name,
        wcdl=wcdl,
        ticks=ticks,
        num_registers=rf.num_registers,
        reserved=rf.reserved,
        variants=tuple(variants),
        active=active,
        reg_live=reg_live,
        structures=structures,
    )


def vulnerability_map(
    uid: str,
    *,
    scheme: str = "turnpike",
    sb_size: int = 4,
    wcdl: int = 10,
    variants: tuple[str, ...] = DEFAULT_VULN_VARIANTS,
    max_steps: int = 4_000_000,
    use_cache: bool = True,
) -> VulnerabilityMap:
    """Build (or load from the artifact cache) one benchmark's map."""
    from repro.harness.artifacts import ArtifactCache

    cache = ArtifactCache.default() if use_cache else None
    key = ArtifactCache.vuln_key(uid, scheme, sb_size, wcdl, variants, max_steps)
    if cache is not None:
        data = cache.load_vuln(key)
        if data is not None:
            try:
                return VulnerabilityMap.from_dict(data)
            except (KeyError, TypeError, ValueError, AssertionError, IndexError):
                pass  # stale/corrupt entry: fall through and rebuild
    from repro.compiler.config import turnpike_config, turnstile_config
    from repro.compiler.pipeline import compile_program
    from repro.workloads.suites import load_workload

    workload = load_workload(uid)
    config = (
        turnstile_config(sb_size) if scheme == "turnstile"
        else turnpike_config(sb_size)
    )
    compiled = compile_program(workload.program, config)
    vmap = build_map(
        compiled,
        workload.fresh_memory,
        uid=uid,
        wcdl=wcdl,
        variants=variants,
        max_steps=max_steps,
    )
    if cache is not None:
        cache.store_vuln(key, vmap.to_dict())
    return vmap
