"""SARIF 2.1.0 rendering of verification reports.

Emits a minimal, spec-conformant static-analysis log so findings can be
ingested by SARIF viewers and code-scanning UIs. Program locations use
``repro://<program>/<block>`` artifact URIs with the instruction index
(1-based) as the line number.
"""

from __future__ import annotations

import json

from repro.verify.diagnostics import Diagnostic, VerificationReport

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVEL = {"error": "error", "warning": "warning", "info": "note"}

#: Base of each rule's ``helpUri``; anchors address the rule-doc headings
#: in the repository README.
RULE_HELP_BASE = "https://example.invalid/repro/docs/rules"

RULE_CATALOGUE: dict[str, tuple[str, str]] = {
    "R1": (
        "region-capacity",
        "max quarantined stores along any intra-region path fits the "
        "store-buffer budget",
    ),
    "R2": (
        "checkpoint-completeness",
        "every region-live-out register is checkpointed or provably "
        "reconstructable",
    ),
    "R3": (
        "war-freedom",
        "fast-released stores are provably WAR-free (with optional "
        "differential cross-check)",
    ),
    "R4": (
        "colour-pool-bound",
        "no static path holds more simultaneous checkpoint colours than "
        "the pool provides",
    ),
    "R5": (
        "recovery-map-consistency",
        "every region entry maps to reachable, register-consistent "
        "recovery code",
    ),
    "R6": (
        "scheduling-hazard",
        "checkpoints issue at least producer-latency instructions after "
        "their definition",
    ),
    "R7": (
        "masked-fraction-floor",
        "per-structure masked/vulnerable bit breakdown, warning when a "
        "protected structure is almost entirely masked (over-protection)",
    ),
    "R8": (
        "unprotected-vulnerable",
        "no structure instantiated by the protocol variant holds "
        "statically vulnerable bits outside the protection set",
    ),
    "R9": (
        "protection-code-strength",
        "every protected structure's declared ECC contains the "
        "configured upset model's worst-case strike (no silent pass or "
        "miscorrection)",
    ),
}


def rule_help_uri(rule_id: str) -> str:
    """Stable documentation link for one rule id."""
    name = RULE_CATALOGUE[rule_id][0]
    return f"{RULE_HELP_BASE}/{rule_id.lower()}-{name}"


def _result(diag: Diagnostic) -> dict[str, object]:
    message = diag.message
    if diag.hint:
        message += f" [hint: {diag.hint}]"
    region: dict[str, object] = {}
    if diag.location.index >= 0:
        region["startLine"] = diag.location.index + 1
    physical: dict[str, object] = {
        "artifactLocation": {"uri": diag.location.artifact_uri()},
    }
    if region:
        physical["region"] = region
    return {
        "ruleId": diag.rule,
        "level": _LEVEL[diag.severity.value],
        "message": {"text": message},
        "locations": [{"physicalLocation": physical}],
    }


def reports_to_sarif(reports: list[VerificationReport]) -> dict[str, object]:
    """Build one SARIF log with a single run covering all reports."""
    rules = [
        {
            "id": rule_id,
            "name": name,
            "shortDescription": {"text": desc},
            "helpUri": rule_help_uri(rule_id),
        }
        for rule_id, (name, desc) in RULE_CATALOGUE.items()
    ]
    results: list[dict[str, object]] = []
    for report in reports:
        for diag in report.sorted_diagnostics():
            results.append(_result(diag))
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(reports: list[VerificationReport]) -> str:
    return json.dumps(reports_to_sarif(reports), indent=2, sort_keys=True)
