"""Verifier pass framework: context, region graph, and pass manager.

The :class:`VerifierContext` wraps one :class:`CompiledProgram` and lazily
builds the analyses the rules share (CFG, liveness, dominators, loop
forest, region graph). Rules are :class:`VerifierRule` subclasses; the
:class:`VerifierPassManager` runs a configured sequence of them and
collects their findings into a :class:`VerificationReport`.

The **region graph** is the verifier's central derived structure: nodes
are static region ids, and an edge ``a -> b`` means control can flow from
an instruction of region ``a`` directly to the BOUNDARY that opens region
``b`` (intra-block fall-through or a CFG edge). Loops whose body is a
single region produce self-edges — each iteration is a fresh dynamic
instance of the same static region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.analysis.cfg import ControlFlowGraph, build_cfg
from repro.analysis.dominators import DominatorTree
from repro.analysis.liveness import LivenessInfo, compute_liveness
from repro.analysis.loops import LoopForest
from repro.verify.diagnostics import Diagnostic, VerificationReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.compiler.config import CompilerConfig
    from repro.compiler.pipeline import CompiledProgram
    from repro.isa.program import Program
    from repro.isa.registers import Reg
    from repro.runtime.memory import Memory
    from repro.verify.vuln import VulnerabilityMap


@dataclass
class RegionGraph:
    """Static region-to-region control flow for one compiled program."""

    regions: set[int] = field(default_factory=set)
    edges: dict[int, set[int]] = field(default_factory=dict)
    ckpt_regs: dict[int, set["Reg"]] = field(default_factory=dict)
    boundary_of: dict[int, tuple[str, int]] = field(default_factory=dict)
    first_rid: dict[str, int | None] = field(default_factory=dict)
    last_rid: dict[str, int | None] = field(default_factory=dict)

    def add_edge(self, src: int, dst: int) -> None:
        self.edges.setdefault(src, set()).add(dst)

    def succs(self, rid: int) -> set[int]:
        return self.edges.get(rid, set())


def build_region_graph(cfg: ControlFlowGraph) -> RegionGraph:
    """Derive the region graph from a partitioned program's CFG."""
    graph = RegionGraph()
    reachable = cfg.reachable_blocks()
    starts_with_boundary: dict[str, bool] = {}
    for label in cfg.reverse_postorder():
        block = cfg.block(label)
        instrs = block.instructions
        starts_with_boundary[label] = bool(instrs) and instrs[0].is_boundary
        prev: int | None = None
        first: int | None = None
        for index, instr in enumerate(instrs):
            rid = instr.region_id
            if rid is None:
                continue
            graph.regions.add(rid)
            if instr.is_checkpoint:
                graph.ckpt_regs.setdefault(rid, set()).add(instr.srcs[0])
            if instr.is_boundary:
                graph.boundary_of.setdefault(rid, (label, index))
                if prev is not None:
                    graph.add_edge(prev, rid)
            elif prev is not None and rid != prev:
                # Region changed without a boundary: a tagging bug that R5
                # reports; keep the edge so downstream rules stay sound.
                graph.add_edge(prev, rid)
            if first is None:
                first = rid
            prev = rid
        graph.first_rid[label] = first
        graph.last_rid[label] = prev
    for src, dst in cfg.edges():
        if src not in reachable or dst not in reachable:
            continue
        a = graph.last_rid.get(src)
        b = graph.first_rid.get(dst)
        if a is None or b is None:
            continue
        # Same region continuing across the edge is not a transition —
        # unless the successor opens with a BOUNDARY, which starts a new
        # dynamic instance (the single-region-loop self-edge case).
        if a != b or starts_with_boundary.get(dst, False):
            graph.add_edge(a, b)
    return graph


@dataclass(frozen=True)
class ColorRun:
    """Checkpoint-colour pressure of one register over the region graph.

    ``longest_acyclic`` is the longest chain of *consecutive* regions that
    all checkpoint the register along any acyclic region path; ``cyclic``
    is True when those regions lie on a region-graph cycle (a loop re-
    checkpointing the register each iteration), where the chain length is
    bounded only by the dynamic in-flight region count, not statically.
    """

    longest_acyclic: int
    cyclic: bool


def color_runs(graph: RegionGraph) -> dict["Reg", ColorRun]:
    """Per-register checkpoint-colour pressure (see R4).

    A colour taken by region ``A``'s checkpoint of ``r`` is held until
    ``A`` verifies, so two ``r``-checkpointing regions accumulate
    colours whenever both can be in flight — regardless of how many
    non-checkpointing regions execute between them. The per-register
    subgraph therefore connects ``A -> B`` when ``B`` is *reachable*
    from ``A`` in the region graph without passing through another
    ``r``-checkpointing region (paths through one are covered by
    chaining that node's own edges).
    """
    regs: set["Reg"] = set()
    for members in graph.ckpt_regs.values():
        regs |= members
    out: dict["Reg", ColorRun] = {}
    for reg in regs:
        nodes = {
            rid for rid, members in graph.ckpt_regs.items() if reg in members
        }
        sub = {rid: _condensed_succs(graph, rid, nodes) for rid in nodes}
        cyclic = _has_cycle(sub)
        longest = _longest_path(sub) if not cyclic else _longest_path_dagged(sub)
        out[reg] = ColorRun(longest_acyclic=longest, cyclic=cyclic)
    return out


def _condensed_succs(
    graph: RegionGraph, start: int, nodes: set[int]
) -> set[int]:
    """Members of ``nodes`` reachable from ``start`` with no ``nodes``
    member as an intermediate hop (frontier-stopping BFS)."""
    found: set[int] = set()
    seen: set[int] = set()
    work = list(graph.succs(start))
    while work:
        rid = work.pop()
        if rid in seen:
            continue
        seen.add(rid)
        if rid in nodes:
            found.add(rid)
            continue  # stop here: further hops chain through rid's edges
        work.extend(graph.succs(rid))
    return found


def _has_cycle(sub: dict[int, set[int]]) -> bool:
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in sub}
    for root in sub:
        if color[root] != WHITE:
            continue
        stack: list[tuple[int, list[int]]] = [(root, sorted(sub[root]))]
        color[root] = GRAY
        while stack:
            node, succs = stack[-1]
            if succs:
                nxt = succs.pop()
                if color[nxt] == GRAY:
                    return True
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    stack.append((nxt, sorted(sub[nxt])))
            else:
                color[node] = BLACK
                stack.pop()
    return False


def _longest_path(sub: dict[int, set[int]]) -> int:
    """Longest node count along any path of an acyclic subgraph."""
    memo: dict[int, int] = {}

    def visit(node: int) -> int:
        cached = memo.get(node)
        if cached is not None:
            return cached
        memo[node] = 1  # provisional (graph is acyclic; never read back)
        best = 1 + max((visit(s) for s in sub[node]), default=0)
        memo[node] = best
        return best

    return max((visit(n) for n in sub), default=0)


def _longest_path_dagged(sub: dict[int, set[int]]) -> int:
    """Longest path ignoring back edges (for cyclic subgraphs)."""
    memo: dict[int, int] = {}
    on_path: set[int] = set()

    def visit(node: int) -> int:
        cached = memo.get(node)
        if cached is not None:
            return cached
        on_path.add(node)
        best = 1 + max(
            (visit(s) for s in sub[node] if s not in on_path), default=0
        )
        on_path.discard(node)
        memo[node] = best
        return best

    return max((visit(n) for n in sub), default=0)


class VerifierContext:
    """Shared state for one verification run over a compiled program."""

    def __init__(
        self,
        compiled: "CompiledProgram",
        differential: bool = False,
        memory_factory: Callable[[], "Memory"] | None = None,
        max_steps: int = 2_000_000,
    ) -> None:
        self.compiled = compiled
        self.differential = differential
        self.memory_factory = memory_factory
        self.max_steps = max_steps
        self._cfg: ControlFlowGraph | None = None
        self._liveness: LivenessInfo | None = None
        self._dominators: DominatorTree | None = None
        self._loops: LoopForest | None = None
        self._region_graph: RegionGraph | None = None
        self._color_runs: dict["Reg", ColorRun] | None = None
        self._vuln_map: "VulnerabilityMap | None" = None

    @property
    def program(self) -> "Program":
        return self.compiled.program

    @property
    def config(self) -> "CompilerConfig":
        return self.compiled.config

    def cfg(self) -> ControlFlowGraph:
        if self._cfg is None:
            self._cfg = build_cfg(self.program)
        return self._cfg

    def liveness(self) -> LivenessInfo:
        if self._liveness is None:
            self._liveness = compute_liveness(self.cfg())
        return self._liveness

    def dominators(self) -> DominatorTree:
        if self._dominators is None:
            self._dominators = DominatorTree(self.cfg())
        return self._dominators

    def loops(self) -> LoopForest:
        if self._loops is None:
            self._loops = LoopForest(self.cfg(), self.dominators())
        return self._loops

    def region_graph(self) -> RegionGraph:
        if self._region_graph is None:
            self._region_graph = build_region_graph(self.cfg())
        return self._region_graph

    def color_pressure(self) -> dict["Reg", ColorRun]:
        if self._color_runs is None:
            self._color_runs = color_runs(self.region_graph())
        return self._color_runs

    def exhaustible_registers(self, num_colors: int = 4) -> set["Reg"]:
        """Registers whose colour pool can run dry on some static path.

        A checkpoint of any *other* register always fast-releases through
        the colour pool and never occupies a store-buffer entry; only these
        registers' checkpoints can fall back to SB quarantine.
        """
        return {
            reg
            for reg, run in self.color_pressure().items()
            if run.cyclic or run.longest_acyclic >= num_colors
        }

    def vulnerability_map(self) -> "VulnerabilityMap | None":
        """The program's bit-level vulnerability map (R7/R8), or None.

        Needs differential mode (a memory factory to execute against)
        and a resilience-compiled program whose scheme maps to a
        campaign protocol variant; restricted to that single variant to
        keep lint runs cheap.
        """
        if self._vuln_map is None:
            from repro.verify.vuln import build_map, scheme_variant

            variant = scheme_variant(self.config.name)
            if (
                variant is None
                or self.memory_factory is None
                or self.compiled.recovery is None
            ):
                return None
            self._vuln_map = build_map(
                self.compiled,
                self.memory_factory,
                uid=self.program.name,
                variants=(variant,),
                max_steps=self.max_steps,
            )
        return self._vuln_map


class VerifierRule:
    """Base class: one named invariant check over a VerifierContext."""

    rule_id: str = "R0"
    title: str = ""
    description: str = ""

    def run(self, ctx: VerifierContext) -> list[Diagnostic]:
        raise NotImplementedError


class VerifierPassManager:
    """Runs a sequence of rules and aggregates their findings."""

    def __init__(self, rules: list[VerifierRule]):
        self.rules = list(rules)

    def rule_ids(self) -> list[str]:
        return [rule.rule_id for rule in self.rules]

    def run(self, ctx: VerifierContext) -> VerificationReport:
        report = VerificationReport(program=ctx.program.name)
        for rule in self.rules:
            report.extend(rule.run(ctx))
            report.rules_run.append(rule.rule_id)
        return report


def default_rules(upset_model: str = "single") -> list[VerifierRule]:
    """The standard R1..R9 rule suite.

    ``upset_model`` configures R9's assumed fault model; the default
    ``single`` keeps stock lint runs clean (every shipped protection
    declaration contains single-bit strikes).
    """
    from repro.verify.rules.capacity import RegionCapacityRule
    from repro.verify.rules.checkpoints import CheckpointCompletenessRule
    from repro.verify.rules.codes import ProtectionStrengthRule
    from repro.verify.rules.colors import ColorPoolRule
    from repro.verify.rules.recovery import RecoveryMapRule
    from repro.verify.rules.scheduling import SchedulingHazardRule
    from repro.verify.rules.vulnerability import (
        MaskedFractionRule,
        UnprotectedVulnerableRule,
    )
    from repro.verify.rules.war import WarFreedomRule

    return [
        RegionCapacityRule(),
        CheckpointCompletenessRule(),
        WarFreedomRule(),
        ColorPoolRule(),
        RecoveryMapRule(),
        SchedulingHazardRule(),
        MaskedFractionRule(),
        UnprotectedVulnerableRule(),
        ProtectionStrengthRule(upset_model=upset_model),
    ]


def default_manager(upset_model: str = "single") -> VerifierPassManager:
    return VerifierPassManager(default_rules(upset_model=upset_model))


def verify_compiled(
    compiled: "CompiledProgram",
    differential: bool = False,
    memory_factory: Callable[[], "Memory"] | None = None,
    max_steps: int = 2_000_000,
    manager: VerifierPassManager | None = None,
) -> VerificationReport:
    """Run the default (or given) rule suite over one compiled program."""
    ctx = VerifierContext(
        compiled,
        differential=differential,
        memory_factory=memory_factory,
        max_steps=max_steps,
    )
    if manager is None:
        manager = default_manager()
    return manager.run(ctx)
