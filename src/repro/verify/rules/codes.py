"""R9: protection-code strength versus the configured upset model.

Each protocol variant's hardened structures declare an ECC (the stock
hardware guards its arrays with even parity — the abstract fail-safe the
injector models by default). The declaration is only as good as the
fault model it faces: parity contains every single-bit strike but passes
adjacent doubles silently, and a plain SEC Hamming *miscorrects* them.
R9 replays the configured upset shapes through the real decoder of each
declared code (:mod:`repro.ecc.codes`) and errors when the worst-case
verdict escapes containment — i.e. the declared protection is weaker
than the fault model the study assumes.

The default upset model is ``single``, under which every shipped
declaration is contained, so stock lint runs stay clean; studies that
assume multi-bit upsets opt in with ``--upset-model``.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.verify.diagnostics import Diagnostic, Location, Severity
from repro.verify.manager import VerifierContext, VerifierRule
from repro.verify.rules.vulnerability import DEFAULT_PROTECTION
from repro.verify.vuln import scheme_variant

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ecc.codes import Verdict

#: The ECC each protected machine structure declares. The stock hardware
#: model guards every array with the parity fail-safe; campaign studies
#: that model stronger per-structure codes pass a custom table.
DEFAULT_PROTECTION_CODES: dict[str, str] = {
    "register": "parity",
    "store_buffer": "parity",
    "clq": "parity",
    "coloring": "parity",
}

#: Monte-Carlo draws for upset shapes without an enumerable instance set.
_SAMPLED_TRIALS = 256

#: Machine word width the declared codes protect.
_WORD_BITS = 32


def worst_case_verdict(code_name: str, upset_name: str) -> Verdict:
    """Worst decode verdict of one code under one upset shape.

    Enumerates the shape's full instance set over the codeword width
    when it is enumerable, otherwise draws a seeded sample. The verdict
    of a linear code depends only on the error vector, never the stored
    data, so decoding the all-zero codeword is exhaustive over data.
    """
    from repro.ecc.codes import SEVERITY, Verdict, make_code
    from repro.ecc.faultmodel import pattern

    code = make_code(code_name, _WORD_BITS)
    upset = pattern(upset_name)
    errors = upset.instances(code.n)
    if errors is None:
        rng = random.Random(f"r9:{code_name}:{upset_name}")
        errors = [upset.sample(rng, code.n) for _ in range(_SAMPLED_TRIALS)]
    worst = Verdict.CLEAN
    for error in errors:
        verdict = code.verdict(0, error)
        if SEVERITY.index(verdict) > SEVERITY.index(worst):
            worst = verdict
    return worst


class ProtectionStrengthRule(VerifierRule):
    """R9: declared ECC must contain the configured upset model."""

    rule_id = "R9"
    title = "Protection-code strength"
    description = (
        "Errors when a structure in the protocol variant's protection "
        "set declares an ECC whose worst-case decode verdict under the "
        "configured upset model escapes containment (silent corruption "
        "or miscorrection), i.e. the declared protection is weaker than "
        "the assumed fault model."
    )

    def __init__(
        self,
        upset_model: str = "single",
        codes: dict[str, str] | None = None,
    ) -> None:
        self.upset_model = upset_model
        self.codes = DEFAULT_PROTECTION_CODES if codes is None else codes

    def run(self, ctx: VerifierContext) -> list[Diagnostic]:
        from repro.ecc.codes import CONTAINED_VERDICTS

        variant = scheme_variant(ctx.config.name)
        if variant is None:
            return []
        protected = DEFAULT_PROTECTION.get(variant, frozenset())
        loc = Location(program=ctx.program.name)
        diags: list[Diagnostic] = []
        for name in sorted(protected):
            code_name = self.codes.get(name)
            if code_name is None:
                continue
            worst = worst_case_verdict(code_name, self.upset_model)
            if worst in CONTAINED_VERDICTS:
                continue
            diags.append(
                Diagnostic(
                    rule=self.rule_id,
                    severity=Severity.ERROR,
                    location=loc,
                    message=(
                        f"{name} declares {code_name} but a "
                        f"{self.upset_model} upset can end "
                        f"{worst.value}: the declared protection is "
                        "weaker than the configured fault model"
                    ),
                    hint=(
                        "declare a stronger code for this structure "
                        "(secded, secdaec, bch) or lint under the upset "
                        "model the hardware is actually specified for"
                    ),
                )
            )
        return diags
