"""The verifier's rule suite (R1..R8).

Each module holds one :class:`~repro.verify.manager.VerifierRule`:

* ``capacity``      — R1 region store traffic vs the gated SB budget;
* ``checkpoints``   — R2 every boundary-crossing value is recoverable;
* ``war``           — R3 static WAR classification (+ differential mode);
* ``colors``        — R4 checkpoint colour-pool pressure;
* ``recovery``      — R5 recovery-map structural consistency;
* ``scheduling``    — R6 checkpoint scheduling hazards;
* ``vulnerability`` — R7 masked-fraction floor and R8 unprotected
  vulnerable bits, both over the bit-level vulnerability map.
"""

from repro.verify.rules.capacity import RegionCapacityRule
from repro.verify.rules.checkpoints import CheckpointCompletenessRule
from repro.verify.rules.colors import ColorPoolRule
from repro.verify.rules.recovery import RecoveryMapRule
from repro.verify.rules.scheduling import SchedulingHazardRule
from repro.verify.rules.vulnerability import (
    MaskedFractionRule,
    UnprotectedVulnerableRule,
)
from repro.verify.rules.war import WarFreedomRule

__all__ = [
    "RegionCapacityRule",
    "CheckpointCompletenessRule",
    "WarFreedomRule",
    "ColorPoolRule",
    "RecoveryMapRule",
    "SchedulingHazardRule",
    "MaskedFractionRule",
    "UnprotectedVulnerableRule",
]
