"""R2 — checkpoint completeness for boundary-crossing values.

Recovery restores a restarted region's live-in registers from verified
checkpoint storage, so every value that crosses a region boundary must
be *bound*: either an explicit ``CKPT`` executes between the defining
instruction and every boundary the value crosses, or the definition
carries a pruned-checkpoint annotation (Penny-style reconstruction), or
the value predates the program (initial register bindings are
pre-verified by the runtime).

The check is a backward "unprotected live-across-boundary" dataflow,
jointly with plain liveness (meet = union over successors):

* at a BOUNDARY, the unprotected set becomes the entire live set —
  everything live here flows into the region that starts at the
  boundary and must be recoverable;
* a ``CKPT r`` removes ``r`` — the value is bound from here backward;
* a definition of ``r`` while ``r`` is still unprotected is the
  violation: that exact value reaches a boundary with no binding on
  some path. Pruned definitions are exempt.

This is stronger than the program-level coverage check in
:mod:`repro.compiler.recovery` — it is path-sensitive about *which*
definition reaches the boundary, so a checkpoint elsewhere in the
program cannot excuse an unprotected path (the case LICM sinking must
preserve and this rule proves it does).
"""

from __future__ import annotations

from repro.compiler.pruning import PRUNED_ANNOTATION
from repro.isa.registers import Reg
from repro.verify.diagnostics import Diagnostic, Location, Severity
from repro.verify.manager import VerifierContext, VerifierRule


class CheckpointCompletenessRule(VerifierRule):
    rule_id = "R2"
    title = "checkpoint-completeness"
    description = (
        "every region-live-out register is checkpointed before the "
        "boundary or provably reconstructable"
    )

    def run(self, ctx: VerifierContext) -> list[Diagnostic]:
        cfg = ctx.cfg()
        order = cfg.postorder()  # reachable blocks only
        live_in: dict[str, set[Reg]] = {label: set() for label in order}
        ulab_in: dict[str, set[Reg]] = {label: set() for label in order}

        def transfer(
            label: str,
            live: set[Reg],
            ulab: set[Reg],
            diags: list[Diagnostic] | None,
        ) -> tuple[set[Reg], set[Reg]]:
            block = cfg.block(label)
            for index in range(len(block.instructions) - 1, -1, -1):
                instr = block.instructions[index]
                if instr.is_boundary:
                    ulab = set(live)
                    continue
                if instr.is_checkpoint:
                    ulab.discard(instr.srcs[0])
                    live.update(instr.srcs)
                    continue
                dest = instr.dest
                if dest is not None:
                    if (
                        diags is not None
                        and dest in ulab
                        and PRUNED_ANNOTATION not in instr.annotations
                    ):
                        diags.append(
                            Diagnostic(
                                rule=self.rule_id,
                                severity=Severity.ERROR,
                                location=Location(
                                    ctx.program.name, label, index, instr.uid
                                ),
                                message=(
                                    f"{dest.name} defined here crosses a "
                                    "region boundary with no checkpoint "
                                    "and no pruned-checkpoint binding on "
                                    "some path"
                                ),
                                hint=(
                                    f"insert `ckpt {dest.name}` after this "
                                    "definition (eager checkpointing) or "
                                    "prove it reconstructable so pruning "
                                    "annotates it"
                                ),
                            )
                        )
                    live.discard(dest)
                    ulab.discard(dest)
                live.update(instr.srcs)
            return live, ulab

        changed = True
        while changed:
            changed = False
            for label in order:
                live: set[Reg] = set()
                ulab: set[Reg] = set()
                for succ in cfg.succs(label):
                    live |= live_in.get(succ, set())
                    ulab |= ulab_in.get(succ, set())
                live, ulab = transfer(label, live, ulab, None)
                if live != live_in[label]:
                    live_in[label] = live
                    changed = True
                if ulab != ulab_in[label]:
                    ulab_in[label] = ulab
                    changed = True

        # Reporting pass over the converged states. Registers still
        # unprotected at the top of the entry block are program live-ins
        # (or read-before-write defaults); the runtime pre-verifies every
        # initial register binding, so they need no diagnostic.
        diags: list[Diagnostic] = []
        for label in cfg.reverse_postorder():
            live = set()
            ulab = set()
            for succ in cfg.succs(label):
                live |= live_in.get(succ, set())
                ulab |= ulab_in.get(succ, set())
            transfer(label, live, ulab, diags)
        return diags
