"""R3 — WAR-freedom of fast-released stores.

The CLQ releases a regular store to the cache *before* verification when
no earlier load of the same region instance read the store's address:
re-executing the region after an error then never observes the
possibly-corrupt value. This rule reproduces that safety argument
statically, without trusting the CLQ hardware model, and classifies
every regular store:

* ``warfree``  — provably no earlier same-region load aliases the store:
  the CLQ may fast-release it on every execution;
* ``must``     — an earlier same-region load provably reads the same
  address: the store is quarantined on every execution (a WARNING,
  since it is a guaranteed performance cost the compiler could avoid by
  splitting the region between the load and the store);
* ``may``      — aliasing cannot be decided statically (the CLQ decides
  dynamically; reported in aggregate as INFO).

The alias domain is affine value numbering per block: every address is a
``(root, offset)`` pair where ``LI`` produces a constant root, ``ADDI``
offsets a root, and ``MOV`` copies one; any other definition mints a
fresh root. Two addresses are equal iff their pairs are equal, provably
distinct iff they share a root (or are both constants) with different
offsets, and unknown otherwise. Loads inherited from predecessor blocks
within the same region are folded to an unknown-address token, so the
classification is sound across block boundaries and loop back edges.

**Differential mode** additionally executes the program (an ideal-CLQ
shadow interpreter) and cross-checks every executed store: a store the
static analysis calls ``warfree`` that dynamically conflicts — or a
``must`` store that executes without conflicting — is a soundness
disagreement and an ERROR.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.isa.registers import Reg
from repro.runtime.interpreter import _BRANCH_EVAL, _eval_alu
from repro.runtime.memory import Memory, STACK_BASE
from repro.verify.diagnostics import Diagnostic, Location, Severity
from repro.verify.manager import VerifierContext, VerifierRule

_MASK = (1 << 32) - 1
_CONST_ROOT = -1

WARFREE = "warfree"
MUST = "must"
MAY = "may"


@dataclass(frozen=True)
class StoreClass:
    """Static classification of one regular store."""

    uid: int
    kind: str  # warfree | must | may
    location: Location


def classify_stores(ctx: VerifierContext) -> dict[int, StoreClass]:
    """Statically classify every reachable regular store."""
    cfg = ctx.cfg()
    rpo = cfg.reverse_postorder()
    reachable = set(rpo)

    # Fixpoint: does any load of the still-open region precede the top
    # of each block? (meet = OR over predecessors; a leading BOUNDARY
    # resets inside the transfer.)
    loads_in: dict[str, bool] = {label: False for label in rpo}

    def flag_out(label: str, flag: bool) -> bool:
        for instr in cfg.block(label).instructions:
            if instr.is_boundary:
                flag = False
            elif instr.is_load:
                flag = True
        return flag

    changed = True
    while changed:
        changed = False
        for label in rpo:
            # The program-start path contributes False, which is the OR
            # identity, so the entry block merges like any other (a back
            # edge into the entry still carries its loads).
            merged = any(
                flag_out(p, loads_in[p])
                for p in cfg.preds(label)
                if p in reachable
            )
            if merged != loads_in[label]:
                loads_in[label] = merged
                changed = True

    out: dict[int, StoreClass] = {}
    name = ctx.program.name
    for label in rpo:
        vals: dict[Reg, tuple[int, int]] = {}
        counter = [0]

        def val(reg: Reg) -> tuple[int, int]:
            got = vals.get(reg)
            if got is None:
                counter[0] += 1
                got = vals[reg] = (counter[0], 0)
            return got

        loads: set[tuple[int, int]] = set()
        unknown_loads = loads_in[label]
        for index, instr in enumerate(cfg.block(label).instructions):
            if instr.is_boundary:
                loads.clear()
                unknown_loads = False
                continue
            if instr.is_load:
                root, off = val(instr.srcs[0])
                loads.add((root, (off + instr.imm) & _MASK))
            if instr.is_regular_store:
                root, off = val(instr.srcs[1])
                key = (root, (off + instr.imm) & _MASK)
                kind = _classify(key, loads, unknown_loads)
                out[instr.uid] = StoreClass(
                    uid=instr.uid,
                    kind=kind,
                    location=Location(name, label, index, instr.uid),
                )
            dest = instr.dest
            if dest is None:
                continue
            op = instr.op
            if op is Opcode.LI:
                vals[dest] = (_CONST_ROOT, instr.imm & _MASK)
            elif op is Opcode.MOV:
                vals[dest] = val(instr.srcs[0])
            elif op is Opcode.ADDI:
                root, off = val(instr.srcs[0])
                vals[dest] = (root, (off + instr.imm) & _MASK)
            else:
                counter[0] += 1
                vals[dest] = (counter[0], 0)
    return out


def _classify(
    store_key: tuple[int, int],
    loads: set[tuple[int, int]],
    unknown_loads: bool,
) -> str:
    if store_key in loads:
        return MUST  # equality is decidable even among unknown loads
    if unknown_loads:
        return MAY
    for load_key in loads:
        if load_key[0] == store_key[0]:
            continue  # same root, different offset: provably distinct
        if load_key[0] == _CONST_ROOT and store_key[0] == _CONST_ROOT:
            continue  # distinct constant addresses
        return MAY
    return WARFREE


@dataclass
class DynamicStoreStats:
    executions: int = 0
    conflicts: int = 0


def simulate_war(
    program: Program,
    memory: Memory,
    max_steps: int = 2_000_000,
) -> dict[int, DynamicStoreStats]:
    """Ideal-CLQ shadow execution: per-store dynamic WAR outcomes.

    Mirrors the resilient machine's ground truth — a store conflicts
    when an earlier load *of the same region instance* read its address
    — with exact (ideal CLQ) address matching.
    """
    regs: dict[Reg, int] = {program.register_file.stack_pointer: STACK_BASE}
    blocks = {b.label: b.instructions for b in program.blocks}
    label = program.entry.label
    instrs = blocks[label]
    pc = 0
    steps = 0
    instance_loads: set[int] = set()
    out: dict[int, DynamicStoreStats] = {}
    get = regs.get
    while True:
        if pc >= len(instrs):
            raise RuntimeError(f"fell off the end of block {label!r}")
        instr = instrs[pc]
        steps += 1
        if steps > max_steps:
            raise RuntimeError(
                f"{program.name}: differential run exceeded {max_steps} steps"
            )
        op = instr.op
        srcs = instr.srcs
        if op is Opcode.BOUNDARY:
            instance_loads.clear()
            pc += 1
        elif op is Opcode.LD:
            addr = get(srcs[0], 0) + instr.imm
            instance_loads.add(addr)
            regs[instr.dest] = memory.load(addr)
            pc += 1
        elif op is Opcode.ST:
            addr = get(srcs[1], 0) + instr.imm
            stats = out.get(instr.uid)
            if stats is None:
                stats = out[instr.uid] = DynamicStoreStats()
            stats.executions += 1
            if addr in instance_loads:
                stats.conflicts += 1
            memory.store(addr, get(srcs[0], 0))
            pc += 1
        elif op is Opcode.CKPT:
            pc += 1
        elif op in _BRANCH_EVAL:
            taken = _BRANCH_EVAL[op](get(srcs[0], 0), get(srcs[1], 0))
            label = instr.targets[0] if taken else instr.targets[1]
            instrs = blocks[label]
            pc = 0
        elif op is Opcode.JMP:
            label = instr.targets[0]
            instrs = blocks[label]
            pc = 0
        elif op is Opcode.RET:
            return out
        else:
            value = _eval_alu(op, instr, get)
            if instr.dest is not None:
                regs[instr.dest] = value
            pc += 1


class WarFreedomRule(VerifierRule):
    rule_id = "R3"
    title = "war-freedom"
    description = (
        "stores the CLQ may fast-release must be provably WAR-free; "
        "differential mode cross-checks against an ideal-CLQ execution"
    )

    def run(self, ctx: VerifierContext) -> list[Diagnostic]:
        classes = classify_stores(ctx)
        diags: list[Diagnostic] = []
        name = ctx.program.name
        counts = {WARFREE: 0, MUST: 0, MAY: 0}
        for sc in classes.values():
            counts[sc.kind] += 1
            if sc.kind == MUST:
                diags.append(
                    Diagnostic(
                        rule=self.rule_id,
                        severity=Severity.WARNING,
                        location=sc.location,
                        message=(
                            "store always conflicts with an earlier load "
                            "of the same region (guaranteed quarantine "
                            "until verification)"
                        ),
                        hint=(
                            "split the region between the load and this "
                            "store so the CLQ can fast-release it"
                        ),
                    )
                )
        if classes:
            diags.append(
                Diagnostic(
                    rule=self.rule_id,
                    severity=Severity.INFO,
                    location=Location(name),
                    message=(
                        f"{len(classes)} regular stores: "
                        f"{counts[WARFREE]} provably WAR-free, "
                        f"{counts[MUST]} always-WAR, "
                        f"{counts[MAY]} undecided (CLQ decides at run time)"
                    ),
                )
            )
        if not ctx.differential or ctx.memory_factory is None:
            return diags

        dynamic = simulate_war(
            ctx.program, ctx.memory_factory(), ctx.max_steps
        )
        imprecise = 0
        for uid, stats in dynamic.items():
            sc = classes.get(uid)
            if sc is None:
                continue  # store in a block static analysis skipped (dead)
            if sc.kind == WARFREE and stats.conflicts > 0:
                diags.append(
                    Diagnostic(
                        rule=self.rule_id,
                        severity=Severity.ERROR,
                        location=sc.location,
                        message=(
                            "differential disagreement: statically "
                            "classified WAR-free but conflicted in "
                            f"{stats.conflicts}/{stats.executions} dynamic "
                            "executions — fast release would be unsafe"
                        ),
                        hint=(
                            "the static may-alias domain is unsound for "
                            "this addressing pattern; fix classify_stores"
                        ),
                    )
                )
            elif (
                sc.kind == MUST
                and stats.executions > 0
                and stats.conflicts == 0
            ):
                diags.append(
                    Diagnostic(
                        rule=self.rule_id,
                        severity=Severity.ERROR,
                        location=sc.location,
                        message=(
                            "differential disagreement: statically "
                            "classified always-WAR but executed "
                            f"{stats.executions} times with no conflict"
                        ),
                        hint="must-alias reasoning in classify_stores is wrong",
                    )
                )
            elif sc.kind == MAY and stats.conflicts == 0:
                imprecise += 1
        executed = sum(1 for s in dynamic.values() if s.executions)
        diags.append(
            Diagnostic(
                rule=self.rule_id,
                severity=Severity.INFO,
                location=Location(name),
                message=(
                    f"differential: {executed} stores executed, "
                    f"{imprecise} undecided stores never conflicted "
                    "(static imprecision, safely quarantined)"
                ),
            )
        )
        return diags
