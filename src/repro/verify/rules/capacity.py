"""R1 — region store capacity vs the gated store buffer.

Turnpike's deadlock-freedom argument requires that the quarantined
stores of a region fit the gated SB: the partitioner budgets
``config.max_stores_per_region`` regular stores per region (half the SB
under overlap partitioning, so two in-flight regions co-reside). This
rule recomputes the bound the hard way — a forward dataflow carrying the
worst-case store count along every intra-region path, across block
boundaries — instead of trusting the partitioner's bookkeeping.

Two counts are tracked:

* **regular** — ``ST`` instructions only. Exceeding the budget is an
  ERROR: the compiler's contract is violated and two adjacent regions
  can deadlock the SB.
* **refined** — regular stores plus checkpoints of *exhaustible*
  registers (see :meth:`VerifierContext.exhaustible_registers`): only
  those checkpoints can ever fall back to SB quarantine when the colour
  pool runs dry. Exceeding the budget here is a WARNING — the overflow
  is conditional on colour exhaustion, and the hardware degrades by
  stalling the quarantined checkpoint, not by corrupting state — but it
  erodes the sizing argument and is worth surfacing (LICM sinking can
  pile many sunk checkpoints into one loop-exit region).
"""

from __future__ import annotations

from repro.verify.diagnostics import Diagnostic, Location, Severity
from repro.verify.manager import VerifierContext, VerifierRule

# Counts saturate here so store loops without an interior boundary still
# reach a fixpoint; a saturated count reads as "unbounded".
_SATURATE = 1 << 16


class RegionCapacityRule(VerifierRule):
    rule_id = "R1"
    title = "region-capacity"
    description = (
        "max quarantined stores along any intra-region path must fit the "
        "partitioner's per-region store-buffer budget"
    )

    def run(self, ctx: VerifierContext) -> list[Diagnostic]:
        budget = ctx.config.max_stores_per_region
        cfg = ctx.cfg()
        exhaustible = ctx.exhaustible_registers()
        rpo = cfg.reverse_postorder()
        reachable = set(rpo)

        # state = (regular, refined) max counts since the last boundary.
        in_state: dict[str, tuple[int, int]] = {
            label: (0, 0) for label in rpo
        }

        def transfer(label: str, state: tuple[int, int]) -> tuple[int, int]:
            regular, refined = state
            for instr in cfg.block(label).instructions:
                if instr.is_boundary:
                    regular, refined = 0, 0
                elif instr.is_regular_store:
                    regular = min(regular + 1, _SATURATE)
                    refined = min(refined + 1, _SATURATE)
                elif instr.is_checkpoint and instr.srcs[0] in exhaustible:
                    refined = min(refined + 1, _SATURATE)
            return regular, refined

        changed = True
        while changed:
            changed = False
            for label in rpo:
                preds = [p for p in cfg.preds(label) if p in reachable]
                outs = [transfer(p, in_state[p]) for p in preds]
                if label == cfg.entry:
                    outs.append((0, 0))  # the program-start path
                if not outs:
                    new_in = (0, 0)
                else:
                    new_in = (
                        max(o[0] for o in outs),
                        max(o[1] for o in outs),
                    )
                if new_in != in_state[label]:
                    in_state[label] = new_in
                    changed = True

        # Reporting pass: worst count observed at each store, per region.
        worst_regular: dict[int, tuple[int, Location]] = {}
        worst_refined: dict[int, tuple[int, Location]] = {}
        name = ctx.program.name
        for label in rpo:
            regular, refined = in_state[label]
            for index, instr in enumerate(cfg.block(label).instructions):
                if instr.is_boundary:
                    regular, refined = 0, 0
                    continue
                counts_store = instr.is_regular_store
                counts_ckpt = (
                    instr.is_checkpoint and instr.srcs[0] in exhaustible
                )
                if not counts_store and not counts_ckpt:
                    continue
                loc = Location(name, label, index, instr.uid)
                rid = instr.region_id
                if rid is None:
                    continue  # R5 reports untagged instructions
                if counts_store:
                    regular = min(regular + 1, _SATURATE)
                refined = min(refined + 1, _SATURATE)
                if counts_store and regular > worst_regular.get(rid, (0, loc))[0]:
                    worst_regular[rid] = (regular, loc)
                if refined > worst_refined.get(rid, (0, loc))[0]:
                    worst_refined[rid] = (refined, loc)

        diags: list[Diagnostic] = []
        for rid, (count, loc) in sorted(worst_regular.items()):
            if count <= budget:
                continue
            rendered = "unbounded" if count >= _SATURATE else str(count)
            diags.append(
                Diagnostic(
                    rule=self.rule_id,
                    severity=Severity.ERROR,
                    location=loc,
                    message=(
                        f"region {rid} quarantines {rendered} regular "
                        f"stores on one path; the SB budget is {budget}"
                    ),
                    hint=(
                        "split the region (insert a BOUNDARY upstream of "
                        "this store) or raise the store-buffer size"
                    ),
                )
            )
        for rid, (count, loc) in sorted(worst_refined.items()):
            if count <= budget:
                continue
            regular_count = worst_regular.get(rid, (0, loc))[0]
            if regular_count > budget:
                continue  # already an error above; don't double-report
            rendered = "unbounded" if count >= _SATURATE else str(count)
            diags.append(
                Diagnostic(
                    rule=self.rule_id,
                    severity=Severity.WARNING,
                    location=loc,
                    message=(
                        f"region {rid} can quarantine {rendered} stores "
                        f"(budget {budget}) if the checkpoint colour pool "
                        "is exhausted; regular stores alone fit "
                        f"({regular_count})"
                    ),
                    hint=(
                        "colour-pool fallback degrades to SB stalls, not "
                        "corruption; reduce LICM-sunk checkpoints in this "
                        "region or enlarge the colour pool to remove the "
                        "pressure"
                    ),
                )
            )
        return diags
