"""R5 — recovery-map structural consistency.

When an error is detected, the machine restarts the most recent
unverified region through its :class:`RegionEntry`: jump to the
instruction after the region's BOUNDARY and restore the entry's live-in
registers. Every field of that metadata is safety-critical, so this
rule re-derives all of it from the program text and compares:

* every region id used by any reachable instruction has a recovery
  entry, and every entry's region id exists in the program;
* the entry points at a real block and index, the instruction there is
  the region's own BOUNDARY, and the block is reachable (recovery must
  not resume into dead code);
* no region has two boundaries (a restart target must be unique);
* the recorded live-in set equals independently recomputed liveness at
  the boundary (a stale set under-restores registers after an error);
* recovery-block code generation succeeds for every region (pruned
  recovery expressions must form an acyclic, generatable slice);
* reachable instructions are region-tagged at all (untagged code would
  escape the protocol entirely).
"""

from __future__ import annotations

from repro.compiler.recovery_codegen import (
    RecoveryCodegenError,
    generate_recovery_blocks,
)
from repro.verify.diagnostics import Diagnostic, Location, Severity
from repro.verify.manager import VerifierContext, VerifierRule


class RecoveryMapRule(VerifierRule):
    rule_id = "R5"
    title = "recovery-map-consistency"
    description = (
        "every region entry maps to reachable, register-consistent "
        "recovery code"
    )

    def run(self, ctx: VerifierContext) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        name = ctx.program.name
        cfg = ctx.cfg()
        program = ctx.program
        recovery = ctx.compiled.recovery
        reachable = cfg.reachable_blocks()

        has_boundaries = any(
            i.is_boundary for i in program.instructions()
        )
        if recovery is None:
            if has_boundaries:
                diags.append(
                    Diagnostic(
                        rule=self.rule_id,
                        severity=Severity.ERROR,
                        location=Location(name),
                        message=(
                            "program has region boundaries but no "
                            "recovery map — errors are undetectable but "
                            "unrecoverable"
                        ),
                        hint="call build_recovery_map after partitioning",
                    )
                )
            return diags

        # Scan the program: boundary locations and used region ids.
        boundary_at: dict[int, list[tuple[str, int]]] = {}
        used_rids: set[int] = set()
        for label in cfg.reverse_postorder():
            for index, instr in enumerate(cfg.block(label).instructions):
                rid = instr.region_id
                if rid is None:
                    diags.append(
                        Diagnostic(
                            rule=self.rule_id,
                            severity=Severity.ERROR,
                            location=Location(name, label, index, instr.uid),
                            message=(
                                "reachable instruction carries no region "
                                "id; it executes outside every region's "
                                "recovery protocol"
                            ),
                            hint="re-run the region partitioner",
                        )
                    )
                    continue
                used_rids.add(rid)
                if instr.is_boundary:
                    boundary_at.setdefault(rid, []).append((label, index))

        for rid, sites in sorted(boundary_at.items()):
            if len(sites) > 1:
                label, index = sites[1]
                diags.append(
                    Diagnostic(
                        rule=self.rule_id,
                        severity=Severity.ERROR,
                        location=Location(name, label, index),
                        message=(
                            f"region {rid} has {len(sites)} boundaries; "
                            "its restart target is ambiguous"
                        ),
                        hint="region ids must be unique per boundary",
                    )
                )

        for rid in sorted(used_rids):
            if rid not in recovery.entries:
                label, index = boundary_at.get(rid, [("", -1)])[0]
                diags.append(
                    Diagnostic(
                        rule=self.rule_id,
                        severity=Severity.ERROR,
                        location=Location(name, label, index),
                        message=(
                            f"region {rid} has no recovery entry; an "
                            "error inside it cannot be recovered"
                        ),
                        hint="rebuild the recovery map",
                    )
                )

        block_labels = {b.label for b in program.blocks}
        liveness = ctx.liveness()
        live_after_cache: dict[str, list] = {}
        for rid, entry in sorted(recovery.entries.items()):
            loc = Location(name, entry.block, entry.index)
            if entry.block not in block_labels:
                diags.append(
                    Diagnostic(
                        rule=self.rule_id,
                        severity=Severity.ERROR,
                        location=loc,
                        message=(
                            f"region {rid}'s recovery entry names "
                            f"unknown block {entry.block!r}"
                        ),
                        hint="rebuild the recovery map",
                    )
                )
                continue
            instrs = program.block(entry.block).instructions
            if not 0 <= entry.index < len(instrs):
                diags.append(
                    Diagnostic(
                        rule=self.rule_id,
                        severity=Severity.ERROR,
                        location=loc,
                        message=(
                            f"region {rid}'s recovery entry index "
                            f"{entry.index} is out of bounds for block "
                            f"{entry.block!r} ({len(instrs)} instructions)"
                        ),
                        hint="rebuild the recovery map",
                    )
                )
                continue
            target = instrs[entry.index]
            if not target.is_boundary or target.region_id != rid:
                diags.append(
                    Diagnostic(
                        rule=self.rule_id,
                        severity=Severity.ERROR,
                        location=loc,
                        message=(
                            f"region {rid}'s recovery entry does not "
                            "point at its own BOUNDARY (found "
                            f"{target.op.value})"
                        ),
                        hint="rebuild the recovery map",
                    )
                )
                continue
            if entry.block not in reachable:
                diags.append(
                    Diagnostic(
                        rule=self.rule_id,
                        severity=Severity.ERROR,
                        location=loc,
                        message=(
                            f"region {rid}'s recovery entry resumes in "
                            f"unreachable block {entry.block!r}"
                        ),
                        hint=(
                            "dead regions must not own recovery entries; "
                            "rebuild the recovery map"
                        ),
                    )
                )
                continue
            pairs = live_after_cache.get(entry.block)
            if pairs is None:
                pairs = live_after_cache[entry.block] = liveness.live_after(
                    entry.block
                )
            expected = frozenset(pairs[entry.index][1])
            if expected != entry.live_in:
                missing = sorted(r.name for r in expected - entry.live_in)
                extra = sorted(r.name for r in entry.live_in - expected)
                diags.append(
                    Diagnostic(
                        rule=self.rule_id,
                        severity=Severity.ERROR,
                        location=loc,
                        message=(
                            f"region {rid}'s recorded live-in set "
                            "disagrees with recomputed liveness "
                            f"(missing: {missing or '-'}, stale: "
                            f"{extra or '-'})"
                        ),
                        hint=(
                            "the recovery map is stale — rebuild it after "
                            "the last program transformation"
                        ),
                    )
                )

        try:
            generate_recovery_blocks(ctx.compiled)
        except RecoveryCodegenError as exc:
            diags.append(
                Diagnostic(
                    rule=self.rule_id,
                    severity=Severity.ERROR,
                    location=Location(name),
                    message=f"recovery code generation failed: {exc}",
                    hint=(
                        "a pruned-checkpoint expression has no "
                        "generatable restore slice"
                    ),
                )
            )
        return diags
