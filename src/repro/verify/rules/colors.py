"""R4 — checkpoint colour-pool bound.

Fast-releasing a checkpoint store must not overwrite the only verified
copy of the register, so the hardware rotates each register's
checkpoints through a small colour pool (default 4). A colour is held
from the checkpoint's commit until its region verifies, and the VC map
permanently occupies one slot once a checkpoint has verified — so a
chain of N *consecutive* region instances that all checkpoint the same
register holds N + 1 colours simultaneously in the worst case, and the
pool is exhausted (safe SB-quarantine fallback, but a sizing-claim
violation) when N reaches the pool size.

This rule walks the region graph per checkpointed register:

* an **acyclic** chain of length >= the pool size is a WARNING — a
  bounded static path can already exhaust the pool, contradicting the
  paper's 4-colour sizing argument;
* chains around a region **cycle** (a loop re-checkpointing the
  register each iteration) are reported once per program as INFO: their
  length equals the dynamic in-flight region count, which the WCDL
  bounds at run time, so no static violation can be claimed.
"""

from __future__ import annotations

from repro.verify.diagnostics import Diagnostic, Location, Severity
from repro.verify.manager import VerifierContext, VerifierRule

DEFAULT_NUM_COLORS = 4


class ColorPoolRule(VerifierRule):
    rule_id = "R4"
    title = "colour-pool-bound"
    description = (
        "no static path may hold more simultaneous checkpoint colours "
        "than the per-register pool provides"
    )

    def __init__(self, num_colors: int = DEFAULT_NUM_COLORS):
        self.num_colors = num_colors

    def run(self, ctx: VerifierContext) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        name = ctx.program.name
        graph = ctx.region_graph()
        cyclic_regs = []
        for reg, run in sorted(
            ctx.color_pressure().items(), key=lambda item: item[0].name
        ):
            if run.cyclic:
                cyclic_regs.append(reg)
                continue
            if run.longest_acyclic >= self.num_colors:
                # Anchor at the boundary of some region checkpointing reg.
                rid = min(
                    r for r, members in graph.ckpt_regs.items()
                    if reg in members
                )
                block, index = graph.boundary_of.get(rid, ("", -1))
                diags.append(
                    Diagnostic(
                        rule=self.rule_id,
                        severity=Severity.WARNING,
                        location=Location(name, block, index),
                        message=(
                            f"{reg.name} is checkpointed by "
                            f"{run.longest_acyclic} consecutive regions on "
                            "an acyclic path; with the verified colour the "
                            f"pool of {self.num_colors} is exhausted and "
                            "checkpoints degrade to SB quarantine"
                        ),
                        hint=(
                            "merge regions, prune intermediate "
                            "checkpoints, or grow the colour pool"
                        ),
                    )
                )
        if cyclic_regs:
            regs = ", ".join(r.name for r in cyclic_regs[:8])
            more = (
                f" (+{len(cyclic_regs) - 8} more)"
                if len(cyclic_regs) > 8
                else ""
            )
            diags.append(
                Diagnostic(
                    rule=self.rule_id,
                    severity=Severity.INFO,
                    location=Location(name),
                    message=(
                        f"{len(cyclic_regs)} register(s) re-checkpoint "
                        f"around region cycles ({regs}{more}); colour "
                        "demand there equals the in-flight region count, "
                        "bounded dynamically by the WCDL"
                    ),
                )
            )
        return diags
