"""R6 — checkpoint scheduling-hazard audit.

A ``CKPT r`` reads ``r`` the cycle it issues; if the producing
instruction is still in the pipeline (its latency has not elapsed), the
in-order core stalls. Turnpike's checkpoint-aware scheduler is supposed
to hoist independent work between a long-latency definition and its
checkpoint — this rule audits the result: every checkpoint scheduled
fewer than ``latency - 1`` instructions after its same-block definition
gets a WARNING carrying the estimated stall cost, and the per-program
total is summarised as INFO.

Only same-block def->checkpoint pairs are audited: across blocks the
distance is at least the block-prefix length plus a taken branch, which
already covers every latency in the model when it is observable at all.
Single-cycle producers can never stall their checkpoint and are skipped.
"""

from __future__ import annotations

from repro.compiler.scheduling import _LATENCY
from repro.isa.registers import Reg
from repro.verify.diagnostics import Diagnostic, Location, Severity
from repro.verify.manager import VerifierContext, VerifierRule


class SchedulingHazardRule(VerifierRule):
    rule_id = "R6"
    title = "scheduling-hazard"
    description = (
        "checkpoint stores should issue at least producer-latency "
        "instructions after their definition"
    )

    def run(self, ctx: VerifierContext) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        name = ctx.program.name
        cfg = ctx.cfg()
        total_stall = 0
        hazards = 0
        for label in cfg.reverse_postorder():
            # Position and latency of the last definition of each register,
            # counted in issue slots (BOUNDARY markers occupy no slot).
            last_def: dict[Reg, tuple[int, int]] = {}
            slot = 0
            for index, instr in enumerate(cfg.block(label).instructions):
                if instr.is_boundary:
                    continue
                if instr.is_checkpoint:
                    found = last_def.get(instr.srcs[0])
                    if found is not None:
                        def_slot, latency = found
                        gap = slot - def_slot - 1
                        stall = latency - 1 - gap
                        if stall > 0:
                            hazards += 1
                            total_stall += stall
                            diags.append(
                                Diagnostic(
                                    rule=self.rule_id,
                                    severity=Severity.WARNING,
                                    location=Location(
                                        name, label, index, instr.uid
                                    ),
                                    message=(
                                        f"checkpoint of "
                                        f"{instr.srcs[0].name} issues "
                                        f"{gap} instruction(s) after its "
                                        f"{latency}-cycle producer: "
                                        f"~{stall} stall cycle(s) per "
                                        "execution"
                                    ),
                                    hint=(
                                        "let the scheduler hoist "
                                        "independent work between the "
                                        "definition and its checkpoint"
                                    ),
                                )
                            )
                elif instr.dest is not None:
                    latency = _LATENCY.get(instr.op, 1)
                    if latency > 1:
                        last_def[instr.dest] = (slot, latency)
                    else:
                        last_def.pop(instr.dest, None)
                slot += 1
        if hazards:
            diags.append(
                Diagnostic(
                    rule=self.rule_id,
                    severity=Severity.INFO,
                    location=Location(name),
                    message=(
                        f"{hazards} checkpoint scheduling hazard(s), "
                        f"~{total_stall} static stall cycles total"
                    ),
                )
            )
        return diags
