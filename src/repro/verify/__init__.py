"""Static resilience verifier for compiled Turnpike programs.

``repro.verify`` proves the protocol invariants the compiler claims to
establish — region store capacity, checkpoint completeness, WAR-freedom
of fast-released stores, colour-pool bounds, recovery-map consistency,
and checkpoint scheduling — directly on :class:`CompiledProgram` text.
See :mod:`repro.verify.manager` for the pass framework and
:mod:`repro.verify.rules` for the rule suite.
"""

from repro.verify.diagnostics import (
    Diagnostic,
    Location,
    Severity,
    VerificationError,
    VerificationReport,
)
from repro.verify.manager import (
    ColorRun,
    RegionGraph,
    VerifierContext,
    VerifierPassManager,
    VerifierRule,
    build_region_graph,
    color_runs,
    default_manager,
    default_rules,
    verify_compiled,
)
from repro.verify.sarif import render_sarif, reports_to_sarif
from repro.verify.vuln import (
    VulnerabilityMap,
    build_map,
    vulnerability_map,
)

__all__ = [
    "VulnerabilityMap",
    "build_map",
    "vulnerability_map",
    "Diagnostic",
    "Location",
    "Severity",
    "VerificationError",
    "VerificationReport",
    "ColorRun",
    "RegionGraph",
    "VerifierContext",
    "VerifierPassManager",
    "VerifierRule",
    "build_region_graph",
    "color_runs",
    "default_manager",
    "default_rules",
    "verify_compiled",
    "render_sarif",
    "reports_to_sarif",
]
