"""Diagnostic model for the static resilience verifier.

A :class:`Diagnostic` is one finding produced by a verifier rule: a rule
id (``R1``..``R6``), a severity, a program location, a human-readable
message, and an optional fix hint. :class:`VerificationReport` aggregates
the findings of one verification run and knows how to render itself as
text or JSON (SARIF rendering lives in :mod:`repro.verify.sarif`).

Severity semantics follow the lint exit-code contract:

* ``ERROR``   — a protocol invariant is violated; the compiled program is
  not soft-error safe as claimed.  ``repro lint`` exits 1.
* ``WARNING`` — the invariant holds only conditionally (e.g. a region
  whose store traffic fits the SB only while the colour pool is not
  exhausted) or a performance hazard was proven.  Exit 0 unless
  ``--strict``.
* ``INFO``    — advisory context (e.g. a register whose checkpoint
  colours rotate around a loop and therefore cannot be bounded
  statically).  Never affects the exit code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]


@dataclass(frozen=True)
class Location:
    """A program point: block label plus instruction index.

    ``index`` is the position within the block (``-1`` for findings that
    apply to the block or program as a whole). ``uid`` carries the
    instruction's stable uid when one exists, so findings survive
    instruction re-ordering between compiles.
    """

    program: str
    block: str = ""
    index: int = -1
    uid: int | None = None

    def render(self) -> str:
        if not self.block:
            return self.program
        if self.index < 0:
            return f"{self.program}/{self.block}"
        return f"{self.program}/{self.block}:{self.index}"

    def artifact_uri(self) -> str:
        """A stable pseudo-URI for SARIF artifact locations."""
        return f"repro://{self.program}/{self.block or '-'}"


@dataclass(frozen=True)
class Diagnostic:
    """One finding from one verifier rule."""

    rule: str
    severity: Severity
    location: Location
    message: str
    hint: str = ""

    def render(self) -> str:
        text = (
            f"{self.severity.value}[{self.rule}] "
            f"{self.location.render()}: {self.message}"
        )
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "program": self.location.program,
            "block": self.location.block,
            "index": self.location.index,
            "message": self.message,
        }
        if self.location.uid is not None:
            out["uid"] = self.location.uid
        if self.hint:
            out["hint"] = self.hint
        return out


@dataclass
class VerificationReport:
    """All diagnostics from verifying one compiled program."""

    program: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    rules_run: list[str] = field(default_factory=list)

    def extend(self, diags: list[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    def by_rule(self, rule: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when no error-severity finding is present."""
        return not self.errors

    def sorted_diagnostics(self) -> list[Diagnostic]:
        return sorted(
            self.diagnostics,
            key=lambda d: (
                -d.severity.rank,
                d.rule,
                d.location.block,
                d.location.index,
            ),
        )

    def render_text(self, max_per_rule: int = 8) -> str:
        """Human-readable report; long rule groups are elided."""
        lines: list[str] = []
        shown: dict[str, int] = {}
        elided: dict[str, int] = {}
        for diag in self.sorted_diagnostics():
            key = f"{diag.rule}/{diag.severity.value}"
            count = shown.get(key, 0)
            if max_per_rule >= 0 and count >= max_per_rule:
                elided[key] = elided.get(key, 0) + 1
                continue
            shown[key] = count + 1
            lines.append("  " + diag.render().replace("\n", "\n  "))
        for key, count in sorted(elided.items()):
            lines.append(f"  ... {count} more {key} finding(s) elided")
        counts = self.summary_counts()
        summary = (
            f"{self.program}: {counts['error']} error(s), "
            f"{counts['warning']} warning(s), {counts['info']} info"
        )
        if not lines:
            return summary
        return summary + "\n" + "\n".join(lines)

    def summary_counts(self) -> dict[str, int]:
        counts = {"error": 0, "warning": 0, "info": 0}
        for diag in self.diagnostics:
            counts[diag.severity.value] += 1
        return counts

    def to_dict(self) -> dict[str, object]:
        return {
            "program": self.program,
            "rules_run": list(self.rules_run),
            "counts": self.summary_counts(),
            "ok": self.ok,
            "diagnostics": [
                d.to_dict() for d in self.sorted_diagnostics()
            ],
        }


class VerificationError(Exception):
    """Raised by ``compile_program(..., verify=True)`` on error findings."""

    def __init__(self, report: VerificationReport):
        self.report = report
        errors = report.errors
        head = "; ".join(d.render() for d in errors[:3])
        more = f" (+{len(errors) - 3} more)" if len(errors) > 3 else ""
        super().__init__(
            f"verification failed for {report.program}: {head}{more}"
        )
