"""Real linear block codes at the bit level.

Four constructions back the design-space explorer and the injector's
``--ecc`` mode:

* even parity — detects every odd-weight error, silent on even weight;
* Hamming SEC (``sec``) — the *plain* single-error-correcting code.
  Kept deliberately: a double-bit error aliases to some single-bit
  syndrome and the decoder confidently flips a third bit, which is the
  classic miscorrection failure the DED parity bit exists to prevent;
* extended Hamming SEC-DED (``secded``) — (72,64) and a parameterized
  (n,k) constructor: corrects all singles, detects all doubles;
* SEC-DAEC (``secdaec``) — greedy Dutta/Touba-style parity-check
  construction whose adjacent-column sums are distinct from every
  single column and from each other, so adjacent doubles correct;
* DEC-TED BCH (``bch``) — syndromes over GF(2^m) at alpha and alpha^3
  plus an overall parity bit: corrects any double, detects any triple.

Every decode is honest syndrome decoding: the verdict for an arbitrary
error vector is *computed*, never assumed. A miscorrection is whatever
falls out of the syndrome table — the decoder applied a correction and
the recovered data still differs from what was stored.

All codes here are linear, so the verdict of an error vector does not
depend on the data word it lands on; ``tests/test_ecc_codes.py`` checks
that property rather than relying on it silently.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass
from functools import lru_cache


class Verdict(enum.Enum):
    """Typed decode verdict for one (codeword, error vector) pair."""

    CLEAN = "clean"  # zero error, decoder untouched
    CORRECTED = "corrected"  # decoder acted, data recovered exactly
    DETECTED = "detected"  # decoder flagged an uncorrectable error
    MISCORRECTED = "miscorrected"  # decoder "fixed" the wrong bits
    SILENT = "silent"  # error aliased to a valid codeword


#: Severity order for aggregating per-codeword verdicts into one word
#: verdict: a detected codeword halts the machine (contained) even if a
#: sibling codeword miscorrected, and any undetected corruption beats a
#: successful correction.
SEVERITY = (
    Verdict.CLEAN,
    Verdict.CORRECTED,
    Verdict.DETECTED,
    Verdict.SILENT,
    Verdict.MISCORRECTED,
)

#: Verdicts after which the stored word is still trustworthy.
GOOD_VERDICTS = frozenset({Verdict.CLEAN, Verdict.CORRECTED})
#: Verdicts the machine can act on (halt / recover) — contained.
CONTAINED_VERDICTS = frozenset(
    {Verdict.CLEAN, Verdict.CORRECTED, Verdict.DETECTED}
)


@dataclass(frozen=True)
class DecodeResult:
    """What the decoder did to one received word."""

    data: int  # recovered data bits (k wide)
    corrected_mask: int  # codeword bits the decoder flipped
    detected: bool  # uncorrectable-error flag raised


class Code:
    """A systematic linear block code over GF(2).

    ``columns[i]`` is the r-bit parity-check column of codeword bit i.
    ``check_positions`` index r linearly independent columns; the
    remaining positions carry data bits in order.
    """

    def __init__(
        self,
        name: str,
        columns: tuple[int, ...],
        r: int,
    ) -> None:
        self.name = name
        self.columns = columns
        self.r = r
        self.n = len(columns)
        self.k = self.n - r
        self.check_positions = _pick_check_positions(columns, r)
        in_check = set(self.check_positions)
        self.data_positions = tuple(
            i for i in range(self.n) if i not in in_check
        )
        # Columns of the inverse of the check submatrix: _solve[j] is
        # the check-bit combination whose syndrome is the unit vector
        # 2**j, so encode() can cancel any data syndrome.
        self._solve = _invert_columns(
            tuple(columns[i] for i in self.check_positions), r
        )

    # -- encode / syndrome ------------------------------------------------

    def encode(self, data: int) -> int:
        """Map k data bits to the n-bit codeword (syndrome zero)."""
        if data < 0 or data >> self.k:
            raise ValueError(f"data out of range for k={self.k}")
        word = 0
        syndrome = 0
        for j, pos in enumerate(self.data_positions):
            if (data >> j) & 1:
                word |= 1 << pos
                syndrome ^= self.columns[pos]
        check = 0
        for j in range(self.r):
            if (syndrome >> j) & 1:
                check ^= self._solve[j]
        for j, pos in enumerate(self.check_positions):
            if (check >> j) & 1:
                word |= 1 << pos
        return word

    def syndrome(self, word: int) -> int:
        s = 0
        w = word
        while w:
            low = w & -w
            s ^= self.columns[low.bit_length() - 1]
            w ^= low
        return s

    def extract(self, word: int) -> int:
        """Data bits of a codeword, no decoding."""
        data = 0
        for j, pos in enumerate(self.data_positions):
            if (word >> pos) & 1:
                data |= 1 << j
        return data

    # -- decode -----------------------------------------------------------

    def correction_for(self, syndrome: int) -> int | None:
        """Codeword flip mask for a syndrome, or None if uncorrectable.

        Subclasses implement the code-specific syndrome table / algebra.
        A zero syndrome never reaches this method.
        """
        raise NotImplementedError

    def decode(self, word: int) -> DecodeResult:
        s = self.syndrome(word)
        if s == 0:
            return DecodeResult(self.extract(word), 0, False)
        mask = self.correction_for(s)
        if mask is None:
            return DecodeResult(self.extract(word), 0, True)
        return DecodeResult(self.extract(word ^ mask), mask, False)

    # -- evaluation -------------------------------------------------------

    def verdict(self, data: int, error: int) -> Verdict:
        """Honest outcome of decoding ``encode(data) ^ error``."""
        result = self.decode(self.encode(data) ^ error)
        if result.detected:
            return Verdict.DETECTED
        if result.data == data:
            if error == 0:
                return Verdict.CLEAN
            return Verdict.CORRECTED
        if result.corrected_mask:
            return Verdict.MISCORRECTED
        return Verdict.SILENT

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} ({self.n},{self.k})>"


def _pick_check_positions(
    columns: tuple[int, ...], r: int
) -> tuple[int, ...]:
    """Choose r positions with linearly independent columns.

    Scans from the high end so conventional layouts keep their data
    bits in the low positions.
    """
    basis: list[int] = []  # row-echelon accumulators
    picked: list[int] = []
    for i in reversed(range(len(columns))):
        vec = columns[i]
        for b in basis:
            vec = min(vec, vec ^ b)
        if vec:
            basis.append(vec)
            picked.append(i)
            if len(picked) == r:
                return tuple(sorted(picked))
    raise ValueError(f"parity-check matrix has rank < {r}")


def _invert_columns(cols: tuple[int, ...], r: int) -> tuple[int, ...]:
    """Invert an r x r GF(2) matrix given as column bitmasks.

    Returns columns of the inverse: result[j] solves M*x = 2**j.
    """
    # Augment each column with its identity tag and run Gauss-Jordan.
    rows = [0] * r  # rows[i] = bits of row i across [M | I]
    for j, col in enumerate(cols):
        for i in range(r):
            if (col >> i) & 1:
                rows[i] |= 1 << j
    for j in range(r):
        rows[j] |= 1 << (r + j)  # identity augmentation
    for col in range(r):
        pivot = next(
            (i for i in range(col, r) if (rows[i] >> col) & 1), None
        )
        if pivot is None:
            raise ValueError("check submatrix is singular")
        rows[col], rows[pivot] = rows[pivot], rows[col]
        for i in range(r):
            if i != col and (rows[i] >> col) & 1:
                rows[i] ^= rows[col]
    # Column j of the inverse = bits i where inverse[i][j] == 1.
    out = [0] * r
    for i in range(r):
        inv_row = rows[i] >> r
        for j in range(r):
            if (inv_row >> j) & 1:
                out[j] |= 1 << i
    return tuple(out)


# ---------------------------------------------------------------------------
# Even parity
# ---------------------------------------------------------------------------


class EvenParity(Code):
    """One check bit; detects odd-weight errors, never corrects."""

    def __init__(self, k: int) -> None:
        super().__init__("parity", tuple([1] * (k + 1)), 1)

    def correction_for(self, syndrome: int) -> int | None:
        return None  # detect-only


# ---------------------------------------------------------------------------
# Hamming SEC and extended Hamming SEC-DED
# ---------------------------------------------------------------------------


def _hamming_columns(k: int) -> tuple[tuple[int, ...], int]:
    """Distinct nonzero r-bit columns for k data + r check bits."""
    r = 2
    while (1 << r) - 1 < k + r:
        r += 1
    n = k + r
    cols: list[int] = []
    unit = {1 << j for j in range(r)}
    value = 1
    # Data columns: non-unit values in increasing order; check columns
    # (the unit vectors) appended at the top so check bits sit above
    # the data bits, matching the systematic layout convention.
    while len(cols) < n - r:
        if value not in unit:
            cols.append(value)
        value += 1
        if value >= (1 << r):  # pragma: no cover - r chosen large enough
            raise ValueError("hamming construction overflow")
    cols.extend(sorted(unit))
    return tuple(cols), r


class HammingSEC(Code):
    """Plain Hamming: corrects singles, *miscorrects* most doubles."""

    def __init__(self, k: int) -> None:
        columns, r = _hamming_columns(k)
        super().__init__("sec", columns, r)
        self._by_syndrome = {
            col: 1 << i for i, col in enumerate(self.columns)
        }

    def correction_for(self, syndrome: int) -> int | None:
        # Shortened codes leave syndrome gaps; those detect by luck.
        return self._by_syndrome.get(syndrome)


class HammingSECDED(Code):
    """Extended Hamming: overall parity row distinguishes doubles.

    The parity-check matrix is the plain Hamming matrix plus an
    all-ones row and one extra parity bit. Decode convention:
    odd-weight syndrome pattern -> correct; even-weight nonzero ->
    detected double.
    """

    def __init__(self, k: int) -> None:
        base, r = _hamming_columns(k)
        parity_bit = 1 << r
        columns = tuple(col | parity_bit for col in base) + (parity_bit,)
        super().__init__("secded", columns, r + 1)
        self._by_syndrome = {
            col: 1 << i for i, col in enumerate(self.columns)
        }
        self._parity_bit = parity_bit

    def correction_for(self, syndrome: int) -> int | None:
        if not syndrome & self._parity_bit:
            return None  # even error weight: guaranteed double detect
        return self._by_syndrome.get(syndrome)


# ---------------------------------------------------------------------------
# SEC-DAEC
# ---------------------------------------------------------------------------


def _daec_columns(k: int, r: int) -> tuple[int, ...] | None:
    """Greedy column selection for SEC-DAEC at a given r.

    Invariants maintained while scanning positions left to right: all
    columns distinct and nonzero; every adjacent-pair sum distinct from
    every column and every other adjacent sum. Those two sets never
    colliding is exactly the SEC-DAEC condition.
    """
    n = k + r
    cols: list[int] = []
    used: set[int] = set()
    adj: set[int] = set()
    limit = 1 << r
    for _ in range(n):
        prev = cols[-1] if cols else None
        for cand in range(1, limit):
            if cand in used or cand in adj:
                continue
            if prev is not None:
                s = prev ^ cand
                if s in used or s in adj or s == cand:
                    continue
            cols.append(cand)
            used.add(cand)
            if prev is not None:
                adj.add(prev ^ cand)
            break
        else:
            return None
    return tuple(cols)


class SECDAEC(Code):
    """Single-error plus double-adjacent-error correcting code."""

    def __init__(self, k: int) -> None:
        base_r = _hamming_columns(k)[1]
        columns: tuple[int, ...] | None = None
        r = base_r
        while True:
            r += 1
            if r > base_r + 8:  # pragma: no cover - greedy always lands
                raise ValueError(f"no SEC-DAEC construction for k={k}")
            columns = _daec_columns(k, r)
            if columns is None:
                continue
            try:
                _pick_check_positions(columns, r)
            except ValueError:  # pragma: no cover - rank-deficient greedy
                continue
            break
        super().__init__("secdaec", columns, r)
        table = {col: 1 << i for i, col in enumerate(self.columns)}
        for i in range(self.n - 1):
            pair = self.columns[i] ^ self.columns[i + 1]
            table[pair] = 0b11 << i
        self._table = table

    def correction_for(self, syndrome: int) -> int | None:
        return self._table.get(syndrome)


# ---------------------------------------------------------------------------
# DEC-TED BCH
# ---------------------------------------------------------------------------

_PRIMITIVE_POLY = {
    4: 0b10011,  # x^4 + x + 1
    5: 0b100101,  # x^5 + x^2 + 1
    6: 0b1000011,  # x^6 + x + 1
    7: 0b10001001,  # x^7 + x^3 + 1
    8: 0b100011101,  # x^8 + x^4 + x^3 + x^2 + 1
}


class _GF:
    """GF(2^m) arithmetic via exp/log tables."""

    def __init__(self, m: int) -> None:
        self.m = m
        self.size = 1 << m
        poly = _PRIMITIVE_POLY[m]
        self.exp = [0] * (2 * self.size)
        self.log = [0] * self.size
        x = 1
        for i in range(self.size - 1):
            self.exp[i] = x
            self.log[x] = i
            x <<= 1
            if x & self.size:
                x ^= poly
        for i in range(self.size - 1, 2 * self.size):
            self.exp[i] = self.exp[i - (self.size - 1)]

    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return self.exp[self.log[a] + self.log[b]]

    def div(self, a: int, b: int) -> int:
        if b == 0:
            raise ZeroDivisionError
        if a == 0:
            return 0
        return self.exp[self.log[a] - self.log[b] + self.size - 1]

    def cube(self, a: int) -> int:
        return self.mul(a, self.mul(a, a))


class BCHDECTED(Code):
    """Double-error-correcting, triple-error-detecting BCH code.

    Syndromes S1 and S3 over GF(2^m) plus an overall parity bit.
    Double errors solve the locator quadratic z^2 + S1 z + (S1^2 +
    S3/S1) by Chien search; anything inconsistent detects. Four or
    more errors can alias to a solvable signature — that is the honest
    miscorrection path.
    """

    def __init__(self, k: int) -> None:
        m = 4
        while (1 << m) - 1 < k + 2 * m:
            m += 1
        if m not in _PRIMITIVE_POLY:
            raise ValueError(f"k={k} too wide for the BCH table")
        gf = _GF(m)
        bch_n = k + 2 * m  # BCH positions (shortened); +1 parity below
        parity_row = 1 << (2 * m)
        columns = tuple(
            gf.exp[i % (gf.size - 1)]
            | (gf.cube(gf.exp[i % (gf.size - 1)]) << m)
            | parity_row
            for i in range(bch_n)
        ) + (parity_row,)
        super().__init__("bch", columns, 2 * m + 1)
        self._gf = gf
        self._m = m
        self._bch_n = bch_n

    def correction_for(self, syndrome: int) -> int | None:
        gf = self._gf
        m = self._m
        s1 = syndrome & (gf.size - 1)
        s3 = (syndrome >> m) & (gf.size - 1)
        odd = bool(syndrome >> (2 * m))
        if s1 == 0 and s3 == 0:
            # Only the overall parity bit disagrees.
            return (1 << self._bch_n) if odd else None
        if odd:
            if s1 != 0 and gf.cube(s1) == s3:
                pos = gf.log[s1]
                if pos < self._bch_n:
                    return 1 << pos
            return None  # three or more errors
        if s1 == 0:
            return None  # even weight >= 4 with degenerate locator
        # z^2 + s1*z + c, c = s1^2 + s3/s1 (product of the two roots).
        c = gf.mul(s1, s1) ^ gf.div(s3, s1)
        if c == 0:
            # One root is z = 0: a single BCH error paired with the
            # overall parity bit.
            pos = gf.log[s1]
            if pos < self._bch_n:
                return (1 << pos) | (1 << self._bch_n)
            return None
        roots = [
            i
            for i in range(self._bch_n)
            if gf.mul(gf.exp[i], gf.exp[i] ^ s1) == c
        ]
        if len(roots) == 2:
            return (1 << roots[0]) | (1 << roots[1])
        return None


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: CLI-facing code identifiers, weakest to strongest.
CODE_NAMES = ("parity", "sec", "secded", "secdaec", "bch")

_CONSTRUCTORS: dict[str, Callable[[int], Code]] = {
    "parity": EvenParity,
    "sec": HammingSEC,
    "secded": HammingSECDED,
    "secdaec": SECDAEC,
    "bch": BCHDECTED,
}


@lru_cache(maxsize=None)
def make_code(name: str, k: int) -> Code:
    """Construct (and memoise) the named code for a k-bit data word."""
    ctor = _CONSTRUCTORS.get(name)
    if ctor is None:
        raise ValueError(
            f"unknown code {name!r}; choose from {', '.join(CODE_NAMES)}"
        )
    return ctor(k)


def secded_72_64() -> Code:
    """The canonical DRAM-style (72,64) extended Hamming code."""
    return make_code("secded", 64)
