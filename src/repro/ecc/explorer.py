"""Design-space exploration: codes x structures x upset patterns.

For every (code, structure, interleave) layout the explorer decodes
real error vectors — exhaustively when the pattern's instance set is
small enough, seeded Monte-Carlo otherwise — and aggregates the typed
verdicts into an outcome distribution per upset pattern. Each point is
then costed through :mod:`repro.hwcost.ecc` and the per-structure
Pareto frontier (coverage up, area and energy down) is extracted by
dominated-point pruning.

Coverage here means *containment*: the fraction of strikes whose worst
per-word verdict is clean, corrected or detected. Miscorrections and
silent passes are the uncovered residue, reported separately because
they are the honest bad news a table of guarantees hides.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass

from repro.ecc.codes import CODE_NAMES, Verdict
from repro.ecc.faultmodel import MAX_EXHAUSTIVE, UpsetPattern
from repro.ecc.layout import STRUCTURES, Layout, layout
from repro.hwcost.ecc import EccCost, layout_cost

DEFAULT_TRIALS = 2000


@dataclass(frozen=True)
class Distribution:
    """Verdict histogram of one (layout, pattern) evaluation."""

    counts: tuple[tuple[str, int], ...]  # verdict value -> count, sorted
    trials: int
    exhaustive: bool

    def rate(self, verdict: Verdict) -> float:
        table = dict(self.counts)
        return table.get(verdict.value, 0) / self.trials

    @property
    def contained(self) -> float:
        return (
            self.rate(Verdict.CLEAN)
            + self.rate(Verdict.CORRECTED)
            + self.rate(Verdict.DETECTED)
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "counts": dict(self.counts),
            "trials": self.trials,
            "exhaustive": self.exhaustive,
        }


def evaluate_pattern(
    lay: Layout, upset: UpsetPattern, seed: int, trials: int
) -> Distribution:
    """Outcome distribution of one upset shape over one layout."""
    rng = random.Random(f"{seed}:{lay.code_name}:{lay.structure.name}:"
                        f"{int(lay.interleave)}:{upset.name}")
    width = lay.total_bits
    instances = upset.instances(width)
    counts: dict[str, int] = {}
    if instances is not None and 0 < len(instances) <= MAX_EXHAUSTIVE:
        errors = instances
        exhaustive = True
    else:
        errors = [upset.sample(rng, width) for _ in range(trials)]
        exhaustive = False
    for error in errors:
        verdict = lay.word_verdict(rng, error)
        counts[verdict.value] = counts.get(verdict.value, 0) + 1
    return Distribution(
        counts=tuple(sorted(counts.items())),
        trials=len(errors),
        exhaustive=exhaustive,
    )


@dataclass(frozen=True)
class EccPoint:
    """One evaluated + costed design point."""

    code: str
    structure: str
    interleave: bool
    distributions: tuple[tuple[str, Distribution], ...]
    cost: EccCost

    @property
    def name(self) -> str:
        suffix = "/interleaved" if self.interleave else ""
        return f"{self.structure}/{self.code}{suffix}"

    @property
    def coverage(self) -> float:
        """Mean containment across the evaluated patterns."""
        dists = [d for _, d in self.distributions]
        return sum(d.contained for d in dists) / len(dists)

    @property
    def miscorrection_rate(self) -> float:
        dists = [d for _, d in self.distributions]
        return sum(d.rate(Verdict.MISCORRECTED) for d in dists) / len(dists)

    @property
    def silent_rate(self) -> float:
        dists = [d for _, d in self.distributions]
        return sum(d.rate(Verdict.SILENT) for d in dists) / len(dists)

    def dominates(self, other: "EccPoint") -> bool:
        """Pareto dominance: coverage up, area and energy down."""
        no_worse = (
            self.coverage >= other.coverage
            and self.cost.area_um2 <= other.cost.area_um2
            and self.cost.energy_pj <= other.cost.energy_pj
        )
        strictly = (
            self.coverage > other.coverage
            or self.cost.area_um2 < other.cost.area_um2
            or self.cost.energy_pj < other.cost.energy_pj
        )
        return no_worse and strictly

    def to_dict(self) -> dict[str, object]:
        return {
            "point": self.name,
            "code": self.code,
            "structure": self.structure,
            "interleave": self.interleave,
            "coverage": round(self.coverage, 6),
            "miscorrection_rate": round(self.miscorrection_rate, 6),
            "silent_rate": round(self.silent_rate, 6),
            "area_um2": round(self.cost.area_um2, 3),
            "energy_pj": round(self.cost.energy_pj, 5),
            "area_overhead": round(self.cost.area_overhead, 4),
            "energy_overhead": round(self.cost.energy_overhead, 4),
            "check_bits": self.cost.check_bits,
            "patterns": {
                name: dist.to_dict() for name, dist in self.distributions
            },
        }


def explore(
    codes: tuple[str, ...],
    structures: tuple[str, ...],
    patterns: tuple[UpsetPattern, ...],
    seed: int = 0,
    trials: int = DEFAULT_TRIALS,
    interleave_options: tuple[bool, ...] = (False,),
) -> list[EccPoint]:
    """Evaluate the full lattice, deterministically ordered."""
    for structure in structures:
        if structure not in STRUCTURES:
            raise ValueError(f"unknown structure {structure!r}")
    points: list[EccPoint] = []
    for structure in structures:
        for code in codes:
            for inter in interleave_options:
                lay = layout(code, structure, inter)
                dists = tuple(
                    (p.name, evaluate_pattern(lay, p, seed, trials))
                    for p in patterns
                )
                points.append(
                    EccPoint(
                        code=code,
                        structure=structure,
                        interleave=inter,
                        distributions=dists,
                        cost=layout_cost(lay),
                    )
                )
    return points


def prune_dominated(points: list[EccPoint]) -> list[EccPoint]:
    """Non-dominated subset of one comparable group, input order kept."""
    return [
        p
        for i, p in enumerate(points)
        if not any(
            q.dominates(p) for j, q in enumerate(points) if j != i
        )
    ]


def pareto_frontier(points: list[EccPoint]) -> list[EccPoint]:
    """Per-structure frontiers (costs only compare within a structure)."""
    frontier: list[EccPoint] = []
    for structure in dict.fromkeys(p.structure for p in points):
        group = [p for p in points if p.structure == structure]
        frontier.extend(prune_dominated(group))
    return frontier


# ---------------------------------------------------------------------------
# Rendering (shared by the CLI and the service job)
# ---------------------------------------------------------------------------


def points_to_json(
    points: list[EccPoint], frontier: list[EccPoint] | None
) -> str:
    payload: dict[str, object] = {
        "points": [p.to_dict() for p in points],
    }
    if frontier is not None:
        payload["pareto"] = [p.name for p in frontier]
    return json.dumps(payload, indent=2, sort_keys=True)


def format_points(
    points: list[EccPoint], frontier: list[EccPoint] | None
) -> str:
    """Human-readable table, one row per design point."""
    on_frontier = {p.name for p in (frontier or [])}
    lines = [
        f"{'point':<28} {'cover':>7} {'miscorr':>8} {'silent':>7} "
        f"{'area um^2':>10} {'pJ':>8} {'chk':>4}"
    ]
    for p in points:
        star = "*" if p.name in on_frontier else " "
        lines.append(
            f"{star}{p.name:<27} {p.coverage:>7.4f} "
            f"{p.miscorrection_rate:>8.4f} {p.silent_rate:>7.4f} "
            f"{p.cost.area_um2:>10.2f} {p.cost.energy_pj:>8.4f} "
            f"{p.cost.check_bits:>4}"
        )
    if frontier is not None:
        lines.append("")
        lines.append(
            f"pareto frontier ({len(on_frontier)} points, * above): "
            "coverage up, area/energy down, per structure"
        )
    return "\n".join(lines)


def default_codes() -> tuple[str, ...]:
    return CODE_NAMES


def default_structures() -> tuple[str, ...]:
    return tuple(STRUCTURES)
