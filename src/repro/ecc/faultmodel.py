"""Multi-bit upset pattern generators.

Each pattern describes the *shape* of one particle strike over a
physical word of ``width`` bits. Patterns enumerate their full instance
set when that is feasible (the explorer then evaluates exhaustively)
and otherwise draw seeded Monte-Carlo samples; both paths are
deterministic for a fixed seed.

Shapes, following the soft-error literature:

* ``single`` — one flipped cell;
* ``adjacent-double`` — two physically neighbouring cells (charge
  sharing between adjacent nodes);
* ``burst<k>`` — a burst spanning exactly k adjacent cells, both ends
  flipped, interior cells flipped or not (secondary-particle tracks);
* ``random<k>`` — k independent cells anywhere in the word (multiple
  strikes within one scrub interval);
* ``column<s>`` — two cells one array column apart (stride s), the
  well-shared column failure mode of folded arrays.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass

#: Above this many enumerable instances the explorer samples instead.
MAX_EXHAUSTIVE = 20_000


@dataclass(frozen=True)
class UpsetPattern:
    """One strike shape, parameterized by the pattern registry."""

    name: str
    kind: str
    span: int  # cells covered by the shape (window or count)

    def instances(self, width: int) -> list[int] | None:
        """Every error vector of this shape, or None when unbounded."""
        if self.kind == "single":
            return [1 << i for i in range(width)]
        if self.kind == "adjacent":
            return [0b11 << i for i in range(width - 1)]
        if self.kind == "column":
            stride = self.span
            if width <= stride:
                return []
            return [(1 | (1 << stride)) << i for i in range(width - stride)]
        if self.kind == "burst":
            k = self.span
            if width < k:
                return []
            ends = 1 | (1 << (k - 1))
            masks: list[int] = []
            for interior in range(1 << max(0, k - 2)):
                body = ends | (interior << 1)
                masks.extend(body << i for i in range(width - k + 1))
            if len(masks) > MAX_EXHAUSTIVE:
                return None  # pragma: no cover - bursts stay small
            return masks
        return None  # random-k: C(width, k) explodes; sample instead

    def sample(self, rng: random.Random, width: int) -> int:
        """One seeded error vector of this shape."""
        if self.kind == "random":
            bits = rng.sample(range(width), min(self.span, width))
            mask = 0
            for b in bits:
                mask |= 1 << b
            return mask
        pool = self.instances(width)
        if not pool:
            raise ValueError(
                f"pattern {self.name} does not fit a {width}-bit word"
            )
        return pool[rng.randrange(len(pool))]


#: Baseline registry; ``burst<k>``/``random<k>``/``column<s>`` parse too.
PATTERN_NAMES = (
    "single",
    "adjacent-double",
    "burst3",
    "burst4",
    "random2",
    "random3",
    "column8",
)

_PARAMETRIC = re.compile(r"^(burst|random|column)(\d+)$")


def pattern(name: str) -> UpsetPattern:
    """Resolve a pattern name, accepting parameterized spellings."""
    if name == "single":
        return UpsetPattern("single", "single", 1)
    if name == "adjacent-double":
        return UpsetPattern("adjacent-double", "adjacent", 2)
    match = _PARAMETRIC.match(name)
    if match:
        kind, raw = match.group(1), int(match.group(2))
        if kind == "burst" and 2 <= raw <= 8:
            return UpsetPattern(name, "burst", raw)
        if kind == "random" and 1 <= raw <= 8:
            return UpsetPattern(name, "random", raw)
        if kind == "column" and 1 <= raw <= 64:
            return UpsetPattern(name, "column", raw)
    raise ValueError(
        f"unknown upset pattern {name!r}; known: {', '.join(PATTERN_NAMES)}"
        " (burst<k>, random<k>, column<s> parameterize)"
    )


def parse_patterns(spec: str) -> tuple[UpsetPattern, ...]:
    """Comma-separated pattern list -> tuple, order-preserving dedup."""
    names = [part.strip() for part in spec.split(",") if part.strip()]
    seen: dict[str, UpsetPattern] = {}
    for name in names:
        if name not in seen:
            seen[name] = pattern(name)
    if not seen:
        raise ValueError("empty pattern list")
    return tuple(seen.values())
