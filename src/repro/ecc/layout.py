"""Codeword layouts over the protected structures.

A layout maps one of the machine's protected storage structures — SB
entries (120 bits, :data:`repro.hwcost.cacti.SB_ENTRY_BITS`), CLQ
entries (64 bits) or rotating-checkpoint words (32-bit machine words) —
onto one or more codewords of a chosen code, and translates a physical
error vector over the stored cells into per-codeword error vectors.

Wide structures split into 64-bit-data chunks, so the SB entry uses
the canonical (72,64) geometry for its first chunk and a shortened
code for the 56-bit remainder. With ``interleave=True`` the codewords'
cells are round-robin interleaved, the standard trick that turns one
physically-adjacent double strike into two single-bit errors in
different codewords.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from repro.ecc.codes import SEVERITY, Code, Verdict, make_code
from repro.hwcost.cacti import SB_ENTRY_BITS

#: Data bits of one CLQ entry (16 B across 2 entries, Table 1).
CLQ_ENTRY_BITS = 64
#: Rotating checkpoint storage holds 32-bit register/memory words.
CHECKPOINT_WORD_BITS = 32

#: Largest data chunk one codeword covers (the DRAM-style 64-bit word).
MAX_CHUNK_BITS = 64


@dataclass(frozen=True)
class Structure:
    """Geometry of one protected structure for layout and costing."""

    name: str
    word_bits: int
    entries: int
    array_kind: str  # "cam" | "ram" for the cost model


#: The three ECC targets: 4-entry SB (CAM), 2-entry CLQ, and the
#: rotating checkpoint file (2 generations x 32 registers).
STRUCTURES: dict[str, Structure] = {
    "sb": Structure("sb", SB_ENTRY_BITS, 4, "cam"),
    "clq": Structure("clq", CLQ_ENTRY_BITS, 2, "ram"),
    "checkpoint": Structure("checkpoint", CHECKPOINT_WORD_BITS, 64, "ram"),
}


def chunk_widths(word_bits: int) -> tuple[int, ...]:
    """Split a structure word into per-codeword data widths."""
    widths: list[int] = []
    remaining = word_bits
    while remaining > 0:
        take = min(MAX_CHUNK_BITS, remaining)
        widths.append(take)
        remaining -= take
    return tuple(widths)


@dataclass(frozen=True)
class Layout:
    """A code mapped onto one structure word, optionally interleaved."""

    code_name: str
    structure: Structure
    interleave: bool

    @property
    def codes(self) -> tuple[Code, ...]:
        return tuple(
            make_code(self.code_name, k)
            for k in chunk_widths(self.structure.word_bits)
        )

    @property
    def total_bits(self) -> int:
        """Physical cells per stored word, data plus check bits."""
        return sum(code.n for code in self.codes)

    @property
    def check_bits(self) -> int:
        return sum(code.r for code in self.codes)

    @property
    def cell_order(self) -> tuple[tuple[int, int], ...]:
        """Physical cell i -> (codeword index, bit within codeword)."""
        return _cell_order(
            tuple(code.n for code in self.codes), self.interleave
        )

    def split(self, physical_error: int) -> tuple[int, ...]:
        """Demultiplex a physical error vector into per-codeword ones."""
        per_code = [0] * len(self.codes)
        order = self.cell_order
        err = physical_error
        while err:
            low = err & -err
            cell = low.bit_length() - 1
            if cell >= len(order):
                raise ValueError("error vector wider than the layout")
            ci, bit = order[cell]
            per_code[ci] |= 1 << bit
            err ^= low
        return tuple(per_code)

    def word_verdict(
        self, rng: random.Random, physical_error: int
    ) -> Verdict:
        """Decode one strike against seeded data, worst verdict wins.

        Detection anywhere halts the machine, so it contains a sibling
        codeword's miscorrection; any undetected corruption outranks a
        successful correction.
        """
        verdicts = [
            code.verdict(rng.getrandbits(code.k), error)
            for code, error in zip(self.codes, self.split(physical_error))
        ]
        if Verdict.DETECTED in verdicts:
            # Containment: an uncorrectable flag anywhere stops the
            # word from being consumed, whatever the siblings did.
            return Verdict.DETECTED
        for verdict in reversed(SEVERITY):
            if verdict in verdicts:
                return verdict
        return Verdict.CLEAN


def _cell_order(
    lengths: tuple[int, ...], interleave: bool
) -> tuple[tuple[int, int], ...]:
    order: list[tuple[int, int]] = []
    if interleave:
        cursors = [0] * len(lengths)
        while len(order) < sum(lengths):
            for ci, n in enumerate(lengths):
                if cursors[ci] < n:
                    order.append((ci, cursors[ci]))
                    cursors[ci] += 1
    else:
        for ci, n in enumerate(lengths):
            order.extend((ci, bit) for bit in range(n))
    return tuple(order)


@lru_cache(maxsize=None)
def layout(
    code_name: str, structure: str, interleave: bool = False
) -> Layout:
    """Resolve and memoise a (code, structure, interleave) layout."""
    try:
        geom = STRUCTURES[structure]
    except KeyError:
        raise ValueError(
            f"unknown structure {structure!r}; "
            f"choose from {', '.join(STRUCTURES)}"
        ) from None
    make_code(code_name, chunk_widths(geom.word_bits)[0])  # validate name
    return Layout(code_name, geom, interleave)
