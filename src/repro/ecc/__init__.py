"""Bit-level ECC design-space exploration (codes, layouts, explorer).

``repro.ecc`` replaces the injector's abstract "parity detected" fail-
safe with real linear block codes: honest encode/syndrome/decode for
even parity, plain Hamming SEC, extended Hamming SEC-DED, SEC-DAEC and
a DEC-TED BCH construction, multi-bit upset shapes, codeword layouts
over the protected structures, and a Pareto explorer costing coverage
against area and energy through :mod:`repro.hwcost`.
"""

from repro.ecc.codes import (
    CODE_NAMES,
    Code,
    DecodeResult,
    Verdict,
    make_code,
    secded_72_64,
)
from repro.ecc.faultmodel import (
    PATTERN_NAMES,
    UpsetPattern,
    parse_patterns,
    pattern,
)
from repro.ecc.layout import STRUCTURES, Layout, layout

__all__ = [
    "CODE_NAMES",
    "Code",
    "DecodeResult",
    "Verdict",
    "make_code",
    "secded_72_64",
    "PATTERN_NAMES",
    "UpsetPattern",
    "parse_patterns",
    "pattern",
    "STRUCTURES",
    "Layout",
    "layout",
]
