"""The worker-node daemon: a job server that enrolls with a coordinator.

A node **is** a plain :class:`~repro.service.server.JobService` — same
journal, same dedup, same kill -9 recovery — plus a heartbeat task
that registers it with the coordinator every ``heartbeat_interval``
seconds. The heartbeat is an idempotent upsert carrying the node's
address, capacity, load, and source digest; the coordinator only
dispatches to nodes whose digest matches its own, so a node running a
stale checkout simply receives no work instead of poisoning caches.

The coordinator's address is re-resolved **on every beat** — from the
``--coordinator host:port`` flag or, preferably, from the coordinator
journal's discovery file — so a node follows a restarted coordinator
to its new port without intervention; missed beats are counted and
tolerated (the coordinator may be down for seconds during a restart).

At startup the node syncs its artifact-cache generation
(:func:`repro.harness.artifacts.sync_generation`): if the source tree
changed since the cache was last used, stale artifacts are pruned
before any lease can warm up against them.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
from dataclasses import dataclass
from typing import Any

from repro.service import transport
from repro.service.backoff import BackoffPolicy
from repro.service.journal import Journal
from repro.service.server import JobService, ServiceConfig

#: Heartbeats are cheap and frequent; fail fast, the next beat retries.
HEARTBEAT_POLICY = BackoffPolicy(
    base=0.05, factor=2.0, cap=0.5, jitter=0.25, max_attempts=2, deadline=2.0
)


@dataclass
class NodeConfig(ServiceConfig):
    #: Explicit coordinator endpoint ("host:port"); overrides discovery.
    coordinator: str | None = None
    #: Coordinator journal dir whose discovery file names the endpoint.
    coordinator_journal: str | None = None
    #: This node's fabric identity; defaults to "node-<pid>".
    node_id: str | None = None
    heartbeat_interval: float = 1.0


class WorkerNode(JobService):
    role = "worker"

    def __init__(self, config: NodeConfig | None = None) -> None:
        super().__init__(config or NodeConfig())
        cfg = self.config
        assert isinstance(cfg, NodeConfig)
        self.node_id = cfg.node_id or f"node-{os.getpid()}"
        self._heartbeat: asyncio.Task | None = None

    @property
    def _cfg(self) -> NodeConfig:
        assert isinstance(self.config, NodeConfig)
        return self.config

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        from repro.harness.artifacts import sync_generation

        sync_generation()
        await super().start()
        self._heartbeat = asyncio.create_task(self._heartbeat_loop())

    async def _shutdown(self) -> None:
        if self._heartbeat is not None:
            self._heartbeat.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._heartbeat
        await super()._shutdown()

    # -- heartbeat ---------------------------------------------------------

    def _coordinator_endpoint(self) -> tuple[str, int] | None:
        """Where the coordinator lives *right now*.

        Re-read every beat: after a coordinator restart the discovery
        file names the new port, and the node follows automatically.
        """
        if self._cfg.coordinator:
            return transport.parse_endpoint(self._cfg.coordinator)
        if self._cfg.coordinator_journal:
            return Journal(self._cfg.coordinator_journal).read_endpoint()
        return None

    def _beat_payload(self) -> dict[str, Any]:
        from repro.harness.artifacts import code_digest

        host, port = self.address
        return {
            "id": self.node_id,
            "host": host,
            "port": port,
            "workers": self.config.workers,
            "in_flight": self.in_flight,
            "queue_depth": self.scheduler.depth,
            "digest": code_digest()[:16],
            "pid": os.getpid(),
        }

    async def _heartbeat_loop(self) -> None:
        while True:
            target = self._coordinator_endpoint()
            if target is None:
                self.metrics.inc("heartbeat_skipped")
            else:
                try:
                    status, _payload = await transport.acall(
                        target[0], target[1], "POST", "/nodes/heartbeat",
                        self._beat_payload(),
                        timeout=5.0,
                        policy=HEARTBEAT_POLICY,
                    )
                    if status >= 400:
                        self.metrics.inc("heartbeat_rejected")
                    else:
                        self.metrics.inc("heartbeats")
                except transport.Unreachable:
                    # Coordinator down or restarting: tolerated, the
                    # next beat re-resolves and re-registers.
                    self.metrics.inc("heartbeat_failures")
            await asyncio.sleep(self._cfg.heartbeat_interval)

    def _fabric_snapshot(self) -> dict | None:
        return {
            "role": self.role,
            "node_id": self.node_id,
            "heartbeats": self.metrics.counters["heartbeats"],
            "heartbeat_failures": self.metrics.counters["heartbeat_failures"],
        }


def serve_worker(args: Any) -> int:
    """Entry point for ``repro serve --role worker``."""
    import sys

    config = NodeConfig(
        host=args.host,
        port=args.port,
        workers=max(1, args.workers),
        queue_limit=args.queue_limit,
        max_retries=args.max_retries,
        default_timeout=args.job_timeout,
        journal_dir=args.journal,
        coordinator=args.coordinator,
        coordinator_journal=args.coordinator_journal,
        node_id=args.node_id,
        heartbeat_interval=args.heartbeat_interval,
    )
    if config.coordinator is None and config.coordinator_journal is None:
        print(
            "repro serve: error: --role worker needs --coordinator "
            "host:port or --coordinator-journal DIR",
            file=sys.stderr,
        )
        return 2
    service = WorkerNode(config)

    async def _main() -> None:
        await service.start()
        host, port = service.address
        print(
            f"repro worker node {service.node_id} listening on "
            f"http://{host}:{port} (journal: {service.journal.root}, "
            f"workers: {config.workers})",
            file=sys.stderr,
            flush=True,
        )
        await service._stopped.wait()
        await service._shutdown()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    except RuntimeError as exc:
        print(f"repro serve: error: {exc}", file=sys.stderr)
        return 1
    return 0
