"""Stdlib HTTP client for the job service, plus the client-side CLI.

Endpoint resolution, in order: ``--endpoint host:port`` flag,
``REPRO_SERVICE`` environment variable, then the ``endpoint`` discovery
file a running server writes into its journal directory (so on one
machine ``repro submit`` finds ``repro serve`` with zero
configuration).

Every client call starts with a ``/healthz`` handshake that compares
the client's ``repro.__version__`` and source digest against the
server's; mismatches warn on stderr (the dedup keys already embed the
digest, so a digest mismatch means cache misses, not wrong results).
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any

from repro.service import transport
from repro.service.backoff import BackoffPolicy
from repro.service.journal import Journal, default_root

ENV_ENDPOINT = "REPRO_SERVICE"

#: Client-side retry: a couple of quick attempts against transient
#: connection resets (server mid-restart, listen backlog hiccup), then
#: give up with a diagnosable error.
RETRY_POLICY = BackoffPolicy(
    base=0.1, factor=2.0, cap=1.0, jitter=0.25, max_attempts=3, deadline=5.0
)


class ServiceError(RuntimeError):
    """An HTTP call to the service failed (includes the status code)."""

    def __init__(self, status: int, payload: dict[str, Any]) -> None:
        self.status = status
        self.payload = payload
        super().__init__(payload.get("error", f"HTTP {status}"))


class StaleEndpointError(ConnectionError):
    """The discovery file points at a server that is provably dead."""


def resolve_endpoint(
    endpoint: str | None = None, journal_dir: str | None = None
) -> tuple[str, int]:
    spec = endpoint or os.environ.get(ENV_ENDPOINT)
    if spec:
        return transport.parse_endpoint(spec)
    journal = Journal(journal_dir) if journal_dir else Journal(default_root())
    found = journal.read_endpoint()
    if found is None:
        raise ValueError(
            "no service endpoint: pass --endpoint host:port, set "
            f"{ENV_ENDPOINT}, or start `repro serve` (no endpoint file in "
            f"{journal.root})"
        )
    if journal.endpoint_status() == "stale":
        raise StaleEndpointError(
            f"stale endpoint: {journal.endpoint_path} points at "
            f"{found[0]}:{found[1]} but the recorded server "
            f"(pid {journal.read_endpoint_pid()}) is dead; restart "
            "`repro serve` or remove the file"
        )
    return found


class ServiceClient:
    def __init__(
        self,
        endpoint: str | None = None,
        journal_dir: str | None = None,
        client_name: str | None = None,
        timeout: float = 30.0,
    ) -> None:
        # Remember whether the address came from the discovery file: if
        # so, a dead connection can be *re-resolved* (the server may
        # have restarted on a fresh port) or diagnosed as stale.
        self._discovered = not (endpoint or os.environ.get(ENV_ENDPOINT))
        self._journal_dir = journal_dir
        self.host, self.port = resolve_endpoint(endpoint, journal_dir)
        self.client_name = client_name or f"{os.uname().nodename}:{os.getpid()}"
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def request(
        self, method: str, path: str, payload: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        try:
            status, decoded = transport.call(
                self.host, self.port, method, path, payload,
                timeout=self.timeout, policy=RETRY_POLICY,
            )
        except transport.Unreachable as exc:
            if self._discovered:
                self._rediscover(exc)  # raises unless the address moved
                status, decoded = transport.call(
                    self.host, self.port, method, path, payload,
                    timeout=self.timeout, policy=RETRY_POLICY,
                )
            else:
                raise
        if status >= 400:
            raise ServiceError(status, decoded)
        return decoded

    def _rediscover(self, cause: transport.Unreachable) -> None:
        """After a dead discovered endpoint: follow a restart or diagnose.

        Re-reads the discovery file; if the server restarted on a new
        address, adopt it. Otherwise raise :class:`StaleEndpointError`
        (provably dead PID) or re-raise the transport failure.
        """
        journal = Journal(self._journal_dir or default_root())
        found = journal.read_endpoint()
        if found is not None and found != (self.host, self.port):
            self.host, self.port = found
            return
        if journal.endpoint_status() == "stale":
            raise StaleEndpointError(
                f"stale endpoint: {journal.endpoint_path} points at "
                f"{self.host}:{self.port} but the recorded server "
                f"(pid {journal.read_endpoint_pid()}) is dead; restart "
                "`repro serve` or remove the file"
            ) from cause
        raise cause

    # -- API ---------------------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        return self.request("GET", "/healthz")

    def metrics(self) -> dict[str, Any]:
        return self.request("GET", "/metrics")

    def handshake(self, warn: bool = True) -> dict[str, Any]:
        """Version/digest handshake; warns on stderr on mismatch."""
        from repro import __version__
        from repro.harness.artifacts import code_digest

        health = self.healthz()
        if warn and health.get("version") != __version__:
            print(
                f"warning: server runs repro {health.get('version')}, "
                f"client is {__version__}",
                file=sys.stderr,
            )
        if warn and health.get("code_digest") != code_digest()[:16]:
            print(
                "warning: server was started from a different source tree "
                "(digest mismatch); its caches will not match this checkout",
                file=sys.stderr,
            )
        return health

    def submit(
        self,
        kind: str,
        spec: dict[str, Any] | None = None,
        priority: int = 10,
        timeout: float | None = None,
    ) -> tuple[dict[str, Any], bool]:
        payload = self.request(
            "POST",
            "/jobs",
            {
                "kind": kind,
                "spec": spec or {},
                "client": self.client_name,
                "priority": priority,
                "timeout": timeout,
            },
        )
        return payload["job"], bool(payload.get("deduped"))

    def jobs(self, client: str | None = None) -> list[dict[str, Any]]:
        path = "/jobs" + (f"?client={client}" if client else "")
        return self.request("GET", path)["jobs"]

    def job(self, job_id: str) -> dict[str, Any]:
        return self.request("GET", f"/jobs/{job_id}")["job"]

    def result(self, job_id: str) -> dict[str, Any]:
        return self.request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self.request("POST", f"/jobs/{job_id}/cancel")["job"]

    def shutdown(self) -> dict[str, Any]:
        return self.request("POST", "/shutdown")

    def wait(
        self, job_id: str, poll: float = 0.2, timeout: float | None = None
    ) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; returns the job."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed", "cancelled", "timeout"):
                return job
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after {timeout}s"
                )
            time.sleep(poll)


# -- CLI handlers ------------------------------------------------------------


def _client_from_args(args: Any) -> ServiceClient:
    client = ServiceClient(
        endpoint=args.endpoint,
        journal_dir=args.journal,
        client_name=args.client,
    )
    client.handshake(warn=not args.no_handshake)
    return client


def _spec_from_args(args: Any) -> dict[str, Any]:
    """Collect the kind-specific CLI flags into a spec dict.

    Only explicitly provided flags are forwarded; defaults are filled
    in (identically) by :class:`JobSpec`, so a bare submission and a
    fully spelled-out one dedupe to the same key.
    """
    spec: dict[str, Any] = {}
    for name in (
        "uid", "wcdl", "sb", "scheme", "backend",  # run / lint
        "count", "seed", "targets", "variants", "shard_size",
        "accel", "snapshot_interval", "shards", "ecc", "upset",  # inject
        "format", "strict", "upset_model",  # lint
        "figures", "benchmarks",  # sweep
        "codes", "structures", "patterns", "trials",  # ecc
        "pareto", "interleave",
    ):
        value = getattr(args, name, None)
        if value is not None and value is not False:
            spec[name] = value
    if getattr(args, "all", False):
        spec["all"] = True
    if getattr(args, "no_differential", False):
        spec["differential"] = False
    return spec


def cmd_submit(args: Any) -> int:
    try:
        client = _client_from_args(args)
        job, deduped = client.submit(
            args.kind,
            _spec_from_args(args),
            priority=args.priority,
            timeout=args.job_timeout,
        )
    except (ServiceError, ValueError, ConnectionError, OSError) as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 2
    tag = " (deduplicated)" if deduped else ""
    print(f"{job['id']}  {job['kind']}  {job['state']}{tag}", file=sys.stderr)
    if not args.wait:
        print(job["id"])
        return 0
    return _wait_and_print(client, job["id"], args.wait_timeout)


def _wait_and_print(
    client: ServiceClient, job_id: str, timeout: float | None
) -> int:
    try:
        job = client.wait(job_id, timeout=timeout)
    except (TimeoutError, ServiceError, ConnectionError, OSError) as exc:
        print(f"wait failed: {exc}", file=sys.stderr)
        return 2
    return _print_result(client, job)


def _print_result(client: ServiceClient, job: dict[str, Any]) -> int:
    if job["state"] != "done":
        print(
            f"job {job['id']} {job['state']}: {job.get('error') or ''}",
            file=sys.stderr,
        )
        return 3
    payload = client.result(job["id"])
    result = payload["result"]
    sys.stdout.write(result.get("stdout", ""))
    sys.stdout.flush()
    return int(result.get("exit_code") or 0)


def cmd_jobs(args: Any) -> int:
    try:
        client = _client_from_args(args)
        jobs = client.jobs(client=args.mine and client.client_name or None)
    except (ServiceError, ValueError, ConnectionError, OSError) as exc:
        print(f"jobs failed: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps({"jobs": jobs}, indent=2, sort_keys=True))
        return 0
    if not jobs:
        print("no jobs", file=sys.stderr)
        return 0
    print(f"{'id':<9} {'kind':<7} {'state':<10} {'att':>3} {'client':<20} spec")
    for job in jobs:
        spec = job["spec"]
        brief = spec.get("uid") or ("--all" if spec.get("all") else "")
        print(
            f"{job['id']:<9} {job['kind']:<7} {job['state']:<10} "
            f"{job['attempts']:>3} {job['client'][:20]:<20} {brief}"
        )
    return 0


def cmd_nodes(args: Any) -> int:
    """Handler for ``repro nodes``: list a coordinator's worker nodes."""
    try:
        client = _client_from_args(args)
        payload = client.request("GET", "/nodes")
    except (ServiceError, ValueError, ConnectionError, OSError) as exc:
        print(f"nodes failed: {exc}", file=sys.stderr)
        return 2
    nodes = payload.get("nodes", [])
    if args.json:
        print(json.dumps({"nodes": nodes}, indent=2, sort_keys=True))
        return 0
    if not nodes:
        print("no worker nodes registered", file=sys.stderr)
        return 0
    print(
        f"{'node':<18} {'endpoint':<22} {'state':<8} {'workers':>7} "
        f"{'in_flight':>9} {'age_s':>7}"
    )
    for node in nodes:
        endpoint = f"{node.get('host', '?')}:{node.get('port', '?')}"
        print(
            f"{node.get('id', '?'):<18} {endpoint:<22} "
            f"{node.get('state', '?'):<8} {node.get('workers', 0):>7} "
            f"{node.get('in_flight', 0):>9} {node.get('age_s', 0.0):>7.1f}"
        )
    return 0


def cmd_result(args: Any) -> int:
    try:
        client = _client_from_args(args)
        if args.wait:
            return _wait_and_print(client, args.job_id, args.wait_timeout)
        job = client.job(args.job_id)
        if job["state"] in ("queued", "running"):
            print(f"job {args.job_id} is {job['state']}", file=sys.stderr)
            return 4
        return _print_result(client, job)
    except (ServiceError, ValueError, ConnectionError, OSError) as exc:
        print(f"result failed: {exc}", file=sys.stderr)
        return 2
