"""HTTP/JSON transport shared by every process in the fabric.

Two halves live here:

* the **server-side stream plumbing** (:func:`read_request`,
  :func:`respond`) used by every asyncio HTTP listener in the service
  stack — the single-node job server, the coordinator, and the worker
  nodes all speak the same minimal HTTP/1.1-with-JSON-bodies dialect,
  so its implementation exists exactly once;
* the **client-side call helpers** (:func:`http_json`, :func:`call`,
  :func:`acall`) with per-request timeouts and jittered
  exponential-backoff retry on transport-level failures.

Retry discipline: only *transport* failures (connection refused/reset,
socket timeouts, torn responses) are retried — an HTTP status is a
delivered answer and is returned as-is. Every mutating request in the
fabric is idempotent by construction (submissions dedupe on the
content-addressed job key, heartbeats are upserts), so blind
re-delivery is safe; the key rides along in an ``X-Idempotency-Key``
header for log correlation.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import socket
from typing import Any

from repro.service.backoff import Backoff, BackoffPolicy

MAX_BODY = 16 * 1024 * 1024

STATUS_TEXT = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class TransportError(ConnectionError):
    """A request never produced an HTTP response (after any retries)."""


class Unreachable(TransportError):
    """The peer could not be reached or dropped the connection."""

    def __init__(self, host: str, port: int, cause: BaseException) -> None:
        self.host = host
        self.port = port
        self.cause = cause
        super().__init__(f"{host}:{port} unreachable: {cause}")


#: Failures worth a retry: the peer may be restarting or mid-drain.
_TRANSIENT = (OSError, socket.timeout, http.client.HTTPException, EOFError)

#: Default retry schedule for fabric-internal calls: fast, bounded.
DEFAULT_POLICY = BackoffPolicy(
    base=0.05, factor=2.0, cap=1.0, jitter=0.25, max_attempts=3, deadline=10.0
)


def http_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: dict[str, Any] | None = None,
    timeout: float = 10.0,
    idempotency_key: str | None = None,
) -> tuple[int, dict[str, Any]]:
    """One HTTP/JSON exchange; raises :class:`Unreachable` on failure."""
    body = json.dumps(payload).encode() if payload is not None else None
    headers = {"Content-Type": "application/json"} if body else {}
    if idempotency_key:
        headers["X-Idempotency-Key"] = idempotency_key
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
        except _TRANSIENT as exc:
            raise Unreachable(host, port, exc) from exc
    finally:
        conn.close()
    try:
        decoded = json.loads(data.decode() or "{}")
    except ValueError:
        decoded = {"error": data.decode(errors="replace")}
    if not isinstance(decoded, dict):
        decoded = {"value": decoded}
    return response.status, decoded


def call(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: dict[str, Any] | None = None,
    timeout: float = 10.0,
    policy: BackoffPolicy | None = None,
    idempotency_key: str | None = None,
    on_retry: Any = None,
) -> tuple[int, dict[str, Any]]:
    """:func:`http_json` with backoff retry on transport failures.

    Raises :class:`Unreachable` once the policy's budget is spent.
    ``on_retry(attempt, exc)`` fires before each sleep (metrics hook).
    """
    import time as _time

    schedule = Backoff(policy if policy is not None else DEFAULT_POLICY)
    while True:
        try:
            return http_json(
                host, port, method, path, payload,
                timeout=timeout, idempotency_key=idempotency_key,
            )
        except Unreachable as exc:
            delay = schedule.next_delay()
            if delay is None:
                raise
            if on_retry is not None:
                on_retry(schedule.attempt, exc)
            _time.sleep(delay)


async def acall(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: dict[str, Any] | None = None,
    timeout: float = 10.0,
    policy: BackoffPolicy | None = None,
    idempotency_key: str | None = None,
    on_retry: Any = None,
) -> tuple[int, dict[str, Any]]:
    """Async wrapper over :func:`call` (runs in the default executor so
    the coordinator's event loop never blocks on a slow peer)."""
    return await asyncio.to_thread(
        call, host, port, method, path, payload,
        timeout=timeout, policy=policy,
        idempotency_key=idempotency_key, on_retry=on_retry,
    )


def parse_endpoint(spec: str) -> tuple[str, int]:
    """``host:port`` (optionally ``http://``-prefixed) -> ``(host, port)``."""
    spec = spec.removeprefix("http://")
    host, _, port = spec.rstrip("/").rpartition(":")
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise ValueError(f"bad endpoint {spec!r}; expected host:port") from None


# -- asyncio server-side plumbing -------------------------------------------


async def read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, bytes]:
    """Parse one request off an asyncio stream: (method, path, body)."""
    request_line = (await reader.readline()).decode("latin-1").strip()
    if not request_line:
        raise ValueError("empty request")
    try:
        method, path, _version = request_line.split(" ", 2)
    except ValueError:
        raise ValueError(f"bad request line {request_line!r}") from None
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    if length > MAX_BODY:
        raise ValueError("body too large")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), path, body


async def respond(
    writer: asyncio.StreamWriter, status: int, payload: dict
) -> None:
    """Write one JSON response and flush (connection: close semantics)."""
    import contextlib

    body = json.dumps(payload, sort_keys=True).encode()
    head = (
        f"HTTP/1.1 {status} {STATUS_TEXT.get(status, 'Unknown')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")
    writer.write(head + body)
    with contextlib.suppress(ConnectionError):
        await writer.drain()
