"""Jittered exponential backoff with attempt and deadline budgets.

One policy object serves every retry loop in the service stack — the
server's worker-death retry, the client's transient-connection retry,
the fabric transport, and the worker node's heartbeat reconnect — so
the growth curve, the jitter discipline, and the budget semantics are
defined exactly once.

Jitter is symmetric (``delay * (1 ± jitter)``): enough to de-correlate
retry storms from many clients without making the schedule unbounded
above the deterministic curve. Budgets compose: a schedule ends when
*either* ``max_attempts`` retries have been granted or the next sleep
would land past ``deadline`` seconds from the schedule's start —
whichever comes first.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable


@dataclass(frozen=True)
class BackoffPolicy:
    """The shape of one retry schedule.

    ``base`` and ``factor`` define the deterministic curve
    (``base * factor**(attempt-1)``), ``cap`` bounds a single sleep,
    ``jitter`` is the symmetric randomisation fraction, and
    ``max_attempts`` / ``deadline`` bound the whole schedule (None
    means unbounded on that axis).
    """

    base: float = 0.5
    factor: float = 2.0
    cap: float = 30.0
    jitter: float = 0.25
    max_attempts: int | None = None
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.base < 0 or self.factor < 1 or self.cap < 0:
            raise ValueError("backoff curve must be non-negative and growing")
        if not 0 <= self.jitter < 1:
            raise ValueError("jitter must be in [0, 1)")

    def raw_delay(self, attempt: int) -> float:
        """The un-jittered sleep before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempts are 1-based")
        return min(self.cap, self.base * self.factor ** (attempt - 1))

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        raw = self.raw_delay(attempt)
        if self.jitter and rng is not None:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, raw)


class Backoff:
    """A stateful schedule over one :class:`BackoffPolicy`.

    Call :meth:`next_delay` before each retry; it returns the seconds
    to sleep, or None once the policy's attempt/deadline budget is
    exhausted (the caller should then give up and surface the error).
    """

    def __init__(
        self,
        policy: BackoffPolicy,
        rng: random.Random | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy
        self.attempt = 0
        self._rng = rng if rng is not None else random.Random()
        self._clock = clock
        self._started = clock()

    @property
    def elapsed(self) -> float:
        return self._clock() - self._started

    def next_delay(self) -> float | None:
        self.attempt += 1
        policy = self.policy
        if policy.max_attempts is not None and self.attempt > policy.max_attempts:
            return None
        delay = policy.delay(self.attempt, self._rng)
        if policy.deadline is not None and self.elapsed + delay > policy.deadline:
            return None
        return delay


def retry_call(
    fn: Callable[[], Any],
    policy: BackoffPolicy,
    retry_on: tuple[type[BaseException], ...] | Iterable[type[BaseException]] = (OSError,),
    rng: random.Random | None = None,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> Any:
    """Call ``fn`` until it succeeds or the policy's budget runs out.

    Only exceptions in ``retry_on`` are retried; anything else (and the
    final exhausted failure) propagates to the caller unchanged.
    ``on_retry(attempt, exc)`` fires before each sleep — the hook the
    coordinator uses to count transport retries for ``/metrics``.
    """
    retry_on = tuple(retry_on)
    schedule = Backoff(policy, rng=rng)
    while True:
        try:
            return fn()
        except retry_on as exc:
            delay = schedule.next_delay()
            if delay is None:
                raise
            if on_retry is not None:
                on_retry(schedule.attempt, exc)
            sleep(delay)
