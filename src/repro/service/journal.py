"""Crash-safe job journal and content-addressed result store.

One directory (``--journal``, ``REPRO_SERVICE_DIR``, or
``~/.cache/repro-turnpike/service``) holds everything a server needs to
survive a crash:

* ``journal.jsonl`` — append-only event log (one JSON object per line:
  ``submit`` and ``state`` events), flushed after every write. A
  ``kill -9`` can at worst truncate the final line; replay tolerates
  that and every other form of partial write by skipping undecodable
  lines.
* ``results/<key>.json`` — finished job results, atomically written and
  keyed by the job dedup key (which embeds the source digest), so they
  double as the cross-restart dedup cache: resubmitting a finished spec
  is a cache hit, and editing the simulator invalidates everything.
* ``manifests/<key>.json`` — campaign manifests for ``inject`` jobs.
  The key-addressing is what makes kill-during-campaign cheap to
  recover: the re-adopted job resumes from the shards already
  checkpointed instead of starting over.
* ``exports/<key>.json`` — aggregate JSON exports of ``inject`` jobs.
* ``endpoint`` — ``host:port`` of the live server, written after bind
  (and removed on clean exit) so local clients can discover the
  service without configuration. A sibling ``server.pid`` records the
  serving PID, so a discovery file left behind by a kill -9'd server
  is detectably *stale*: a successor server replaces it instead of
  refusing to start, and clients report "stale endpoint" instead of a
  raw connection error.

On startup the server replays the journal, re-adopts interrupted jobs
(queued/running but without a stored result), and compacts the log to
one ``submit`` event per surviving job.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import IO, Any

from repro.service.jobs import JobRecord, JobState

ENV_SERVICE_DIR = "REPRO_SERVICE_DIR"

#: Journal event schema generation. Replay skips events stamped with a
#: *newer* generation instead of guessing at their meaning: a journal
#: shared with (or left behind by) a newer server build degrades to
#: "those events are invisible", never to a crash or a misparse.
SCHEMA_VERSION = 1


def pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a local PID."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


def default_root() -> Path:
    env = os.environ.get(ENV_SERVICE_DIR)
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro-turnpike/service").expanduser()


def _write_atomic(path: Path, data: bytes) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class Journal:
    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        for sub in ("results", "manifests", "exports"):
            (self.root / sub).mkdir(exist_ok=True)
        self.log_path = self.root / "journal.jsonl"
        self._log: IO[str] | None = None

    # -- event log ---------------------------------------------------------

    def _handle(self) -> IO[str]:
        if self._log is None or self._log.closed:
            self._log = open(self.log_path, "a", encoding="utf-8")
        return self._log

    def append(self, event: dict[str, Any]) -> None:
        event.setdefault("v", SCHEMA_VERSION)
        handle = self._handle()
        handle.write(json.dumps(event, sort_keys=True) + "\n")
        handle.flush()

    def record_submit(self, job: JobRecord) -> None:
        self.append({"ev": "submit", "job": job.to_dict()})

    def record_state(self, job: JobRecord) -> None:
        self.append(
            {
                "ev": "state",
                "id": job.id,
                "key": job.key,
                "state": job.state.value,
                "attempts": job.attempts,
                "started_at": job.started_at,
                "finished_at": job.finished_at,
                "exit_code": job.exit_code,
                "error": job.error,
            }
        )

    def replay(self) -> dict[str, JobRecord]:
        """Rebuild job records from the log, tolerating torn writes."""
        jobs: dict[str, JobRecord] = {}
        try:
            lines = self.log_path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return jobs
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue  # torn final line from a crash
            if not isinstance(event, dict):
                continue
            version = event.get("v", 1)
            if isinstance(version, int) and version > SCHEMA_VERSION:
                continue  # written by a newer generation: skip, don't guess
            try:
                if event.get("ev") == "submit":
                    job = JobRecord.from_dict(event["job"])
                    jobs[job.id] = job
                elif event.get("ev") == "state":
                    job = jobs.get(event.get("id", ""))
                    if job is None:
                        continue
                    job.state = JobState(event["state"])
                    job.key = event.get("key", job.key)
                    job.attempts = event.get("attempts", job.attempts)
                    job.started_at = event.get("started_at")
                    job.finished_at = event.get("finished_at")
                    job.exit_code = event.get("exit_code")
                    job.error = event.get("error")
            except (KeyError, ValueError, TypeError):
                continue  # event written by an incompatible generation
        return jobs

    def compact(self, jobs: dict[str, JobRecord]) -> None:
        """Atomically rewrite the log to one submit event per job."""
        lines = [
            json.dumps(
                {"ev": "submit", "job": jobs[jid].to_dict(),
                 "v": SCHEMA_VERSION},
                sort_keys=True,
            )
            for jid in sorted(jobs)
        ]
        if self._log is not None and not self._log.closed:
            self._log.close()
            self._log = None
        _write_atomic(
            self.log_path, ("\n".join(lines) + "\n" if lines else "").encode()
        )

    def close(self) -> None:
        if self._log is not None and not self._log.closed:
            self._log.close()
        self._log = None

    # -- result store ------------------------------------------------------

    def result_path(self, key: str) -> Path:
        return self.root / "results" / f"{key}.json"

    def store_result(self, key: str, payload: dict[str, Any]) -> None:
        data = json.dumps(payload, sort_keys=True, indent=2).encode()
        _write_atomic(self.result_path(key), data)

    def load_result(self, key: str) -> dict[str, Any] | None:
        try:
            with open(self.result_path(key), encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    def manifest_path(self, key: str) -> Path:
        return self.root / "manifests" / f"{key}.json"

    def export_path(self, key: str) -> Path:
        return self.root / "exports" / f"{key}.json"

    # -- endpoint discovery ------------------------------------------------

    @property
    def endpoint_path(self) -> Path:
        return self.root / "endpoint"

    @property
    def server_pid_path(self) -> Path:
        return self.root / "server.pid"

    def write_endpoint(
        self, host: str, port: int, pid: int | None = None
    ) -> None:
        """Publish the live server's address (and its PID alongside).

        The ``endpoint`` file stays exactly ``host:port`` — scripts
        ``$(cat)`` it — while the PID lives in a sibling ``server.pid``
        file so clients and successor servers can tell a *live*
        endpoint from one a kill -9'd server left behind.
        """
        _write_atomic(self.endpoint_path, f"{host}:{port}\n".encode())
        _write_atomic(
            self.server_pid_path,
            f"{pid if pid is not None else os.getpid()}\n".encode(),
        )

    def read_endpoint(self) -> tuple[str, int] | None:
        try:
            text = self.endpoint_path.read_text().strip()
            host, _, port = text.rpartition(":")
            return host, int(port)
        except (OSError, ValueError):
            return None

    def read_endpoint_pid(self) -> int | None:
        try:
            return int(self.server_pid_path.read_text().strip())
        except (OSError, ValueError):
            return None

    def endpoint_status(self) -> str:
        """One of ``absent`` / ``live`` / ``stale`` / ``unknown``.

        ``stale`` means the discovery file survives but the recorded
        server PID is provably dead (the kill -9 signature);
        ``unknown`` means there is an endpoint but no PID record to
        judge it by (a pre-PID generation wrote it).
        """
        if self.read_endpoint() is None:
            return "absent"
        pid = self.read_endpoint_pid()
        if pid is None:
            return "unknown"
        return "live" if pid_alive(pid) else "stale"

    def clear_endpoint(self) -> None:
        for path in (self.endpoint_path, self.server_pid_path):
            try:
                path.unlink()
            except OSError:
                pass
