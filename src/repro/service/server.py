"""The asyncio job server behind ``repro serve``.

One single-threaded event loop owns all bookkeeping (registry,
scheduler, journal, metrics); only job execution leaves the loop, onto
the supervised process pool. The wire protocol is minimal HTTP/1.1
with JSON bodies, implemented directly on asyncio streams:

========  =======================  =====================================
method    path                     semantics
========  =======================  =====================================
GET       /healthz                 liveness + version/digest handshake
GET       /metrics                 :class:`ServiceMetrics` snapshot
POST      /jobs                    submit ``{kind, spec, client, ...}``
GET       /jobs                    list jobs (``?client=`` filter)
GET       /jobs/<id>               one job's lifecycle record
GET       /jobs/<id>/result        stdout/stderr/exit code when done
POST      /jobs/<id>/cancel        cancel a queued job
POST      /shutdown                begin graceful drain
========  =======================  =====================================

Status codes carry the contract: 429 on backpressure (bounded queue
full), 503 while draining, 409 for results not yet available, 400 for
malformed specs.

Dedup: submissions are keyed by :func:`repro.service.jobs.job_key`
(source digest + canonical spec). A key already queued or running is
**attached** to — both clients poll the same job and the work executes
once. A key with a stored result is served from the result store
without executing at all. ``inject`` jobs additionally get a
key-addressed campaign manifest, so a server killed mid-campaign
resumes from the last checkpointed shard after restart instead of
re-running finished shards.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.service import transport
from repro.service.backoff import BackoffPolicy
from repro.service.jobs import JobRecord, JobSpec, JobState, job_key
from repro.service.journal import Journal, default_root
from repro.service.metrics import ServiceMetrics
from repro.service.scheduler import FairScheduler, QueueFull
from repro.service.worker import WorkerPool

PROTOCOL_VERSION = 1
_MAX_BODY = transport.MAX_BODY


class Draining(RuntimeError):
    """Submissions are rejected because the server is shutting down."""


@dataclass
class ServiceConfig:
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    queue_limit: int = 256
    max_retries: int = 2
    retry_base: float = 0.5
    default_timeout: float | None = None
    journal_dir: str | Path | None = None
    #: Test seam: anything with submit/restart/shutdown/restarts works.
    pool_factory: Callable[[int], WorkerPool] = WorkerPool
    install_signal_handlers: bool = True


class JobService:
    #: Reported by ``/healthz``; fabric subclasses override.
    role = "local"

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.journal = Journal(self.config.journal_dir or default_root())
        self._retry_policy = BackoffPolicy(
            base=self.config.retry_base, factor=2.0, cap=30.0, jitter=0.25
        )
        self.metrics = ServiceMetrics()
        self.scheduler = FairScheduler(self.config.queue_limit)
        self.jobs: dict[str, JobRecord] = {}
        self._active: dict[str, JobRecord] = {}  # key -> queued/running job
        self._done_by_key: dict[str, str] = {}  # key -> job id (DONE only)
        self._seq = 0
        self.in_flight = 0
        self.draining = False
        self.pool: WorkerPool | None = None
        self._server: asyncio.base_events.Server | None = None
        self._wake = asyncio.Event()
        self._stopped = asyncio.Event()
        self._tasks: set[asyncio.Task] = set()
        self._dispatcher: asyncio.Task | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        assert self._server is not None and self._server.sockets
        sock = self._server.sockets[0].getsockname()
        return sock[0], sock[1]

    async def start(self) -> None:
        self._claim_endpoint()
        self._readopt(self.journal.replay())
        self.pool = self.config.pool_factory(self.config.workers)
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        host, port = self.address
        self.journal.write_endpoint(host, port)
        if self.config.install_signal_handlers:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError, ValueError):
                    loop.add_signal_handler(sig, self.begin_drain)
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self._wake.set()

    async def serve_forever(self) -> None:
        await self.start()
        await self._stopped.wait()
        await self._shutdown()

    def _claim_endpoint(self) -> None:
        """Take over the journal's discovery file — unless it's live.

        A server that crashed (kill -9) leaves ``endpoint`` behind; a
        successor detects the recorded PID is dead and replaces the
        stale file instead of refusing to start. Only a *provably live*
        foreign server blocks the claim.
        """
        status = self.journal.endpoint_status()
        if status == "absent":
            return
        pid = self.journal.read_endpoint_pid()
        if status == "live" and pid is not None and pid != os.getpid():
            endpoint = self.journal.read_endpoint()
            raise RuntimeError(
                f"journal {self.journal.root} is already served by "
                f"pid {pid} at {endpoint[0]}:{endpoint[1]}"  # type: ignore[index]
            )
        # stale (dead pid), unknown (pre-PID generation file), or our
        # own pid (in-process restart): replace it.
        self.journal.clear_endpoint()
        self.metrics.inc("stale_endpoint_replaced")

    def _readopt(self, replayed: dict[str, JobRecord]) -> None:
        """Re-adopt journaled jobs after a restart (or a crash).

        Terminal jobs are kept for listing and dedup; interrupted jobs
        (queued or running at crash time) are re-queued with a freshly
        computed key — if the source tree changed in between, the new
        key points at a new manifest/result slot, so stale partial work
        can never leak into the rerun.
        """
        for jid in sorted(replayed):
            job = replayed[jid]
            self.jobs[jid] = job
            num = int(jid.lstrip("j") or 0)
            self._seq = max(self._seq, num)
            if job.state.terminal:
                if (
                    job.state is JobState.DONE
                    and self.journal.load_result(job.key) is not None
                ):
                    self._done_by_key.setdefault(job.key, jid)
                continue
            job.key = job_key(job.spec)
            job.state = JobState.QUEUED
            job.started_at = None
            job.finished_at = None
            if job.key not in self._active:
                try:
                    self.scheduler.push(job)
                except QueueFull:
                    job.state = JobState.FAILED
                    job.error = "queue full during re-adoption"
                    self.journal.record_state(job)
                    continue
                self._active[job.key] = job
                self.metrics.inc("readopted")
                self.journal.record_state(job)
            else:
                # Two interrupted jobs with one key: the second becomes
                # an alias of the first (normal in-flight dedup).
                alias = self._active[job.key]
                for client in job.clients:
                    if client not in alias.clients:
                        alias.clients.append(client)
                job.state = JobState.CANCELLED
                job.error = f"duplicate of {alias.id} after re-adoption"
                self.journal.record_state(job)

    def begin_drain(self) -> None:
        """Stop accepting work; finish queued + running jobs; then exit."""
        if not self.draining:
            self.draining = True
            self._wake.set()

    async def _shutdown(self) -> None:
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.pool is not None:
            self.pool.shutdown(wait=False)
        self.journal.compact(self.jobs)
        self.journal.clear_endpoint()
        self.journal.close()

    # -- submission / registry --------------------------------------------

    def submit(
        self,
        kind: str,
        params: dict[str, Any] | None,
        client: str = "anonymous",
        priority: int = 10,
        timeout: float | None = None,
    ) -> tuple[JobRecord, bool]:
        """Register one job; returns ``(job, deduped)``.

        Raises ValueError (bad spec), QueueFull (backpressure), or
        Draining (shutdown in progress).
        """
        if self.draining:
            raise Draining("server is draining; not accepting jobs")
        spec = JobSpec.create(kind, params)
        key = job_key(spec)
        self.metrics.inc("submitted")

        active = self._active.get(key)
        if active is not None:
            if client not in active.clients:
                active.clients.append(client)
            self.metrics.inc("deduped_in_flight")
            return active, True

        done_id = self._done_by_key.get(key)
        if done_id is not None:
            self.metrics.inc("deduped_cached")
            return self.jobs[done_id], True

        cached = self.journal.load_result(key)
        if cached is not None:
            job = self._new_job(spec, key, client, priority, timeout)
            job.state = JobState.DONE
            job.exit_code = cached.get("exit_code")
            job.finished_at = job.submitted_at
            self.jobs[job.id] = job
            self._done_by_key[key] = job.id
            self.journal.record_submit(job)
            self.metrics.inc("deduped_cached")
            return job, True

        job = self._new_job(spec, key, client, priority, timeout)
        self.scheduler.push(job)  # QueueFull propagates before any record
        self.jobs[job.id] = job
        self._active[key] = job
        self.journal.record_submit(job)
        self.metrics.inc("accepted")
        self._wake.set()
        return job, False

    def _new_job(
        self,
        spec: JobSpec,
        key: str,
        client: str,
        priority: int,
        timeout: float | None,
    ) -> JobRecord:
        self._seq += 1
        return JobRecord(
            id=f"j{self._seq:06d}",
            spec=spec,
            key=key,
            client=client,
            priority=priority,
            timeout=timeout if timeout is not None else self.config.default_timeout,
        )

    def cancel(self, job: JobRecord) -> bool:
        """Cancel a queued job. Running/terminal jobs are not touched."""
        if job.state is not JobState.QUEUED:
            return False
        job.state = JobState.CANCELLED
        job.finished_at = time.time()
        self.scheduler.discard(job)
        if self._active.get(job.key) is job:
            del self._active[job.key]
        self.metrics.inc("cancelled")
        self.journal.record_state(job)
        self._wake.set()
        return True

    # -- dispatch / execution ---------------------------------------------

    def _dispatch_capacity(self) -> int:
        """Concurrent job slots. The coordinator adds remote capacity."""
        return self.config.workers

    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self.in_flight < self._dispatch_capacity():
                job = self.scheduler.pop()
                if job is None:
                    break
                # Count the slot *now*: the task body runs only on a
                # later event-loop tick, and this loop must not hand out
                # more slots than the pool has workers in the meantime.
                self.in_flight += 1
                task = asyncio.create_task(self._run_job(job))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
            if (
                self.draining
                and self.scheduler.depth == 0
                and self.in_flight == 0
            ):
                self._stopped.set()
                return

    def _ensure_pool(self) -> WorkerPool:
        """Restart the pool if a worker death left it broken."""
        assert self.pool is not None
        inner = getattr(self.pool, "_pool", None)
        if inner is not None and getattr(inner, "_broken", False):
            self.pool.restart()
            self.metrics.inc("worker_restarts")
        return self.pool

    def _service_argv(self, job: JobRecord) -> list[str]:
        """The job's canonical argv plus service-side plumbing.

        ``inject`` jobs get a key-addressed manifest (always with
        ``--resume``, a no-op on first execution) and a key-addressed
        aggregate export. Neither flag changes stdout, so parity with
        the bare CLI invocation is preserved.
        """
        argv = job.spec.to_argv()
        if job.spec.kind == "inject":
            params = job.spec.as_dict()
            store = params.get("store_dir")
            manifest = (
                Path(store) / f"{job.key}.json"
                if store
                else self.journal.manifest_path(job.key)
            )
            argv += ["--manifest", str(manifest), "--resume"]
            # Shard leases are partial campaigns: their output is a
            # manifest contribution, not an aggregate, so no export.
            if params.get("shards") is None:
                argv += ["--export", str(self.journal.export_path(job.key))]
        return argv

    async def _run_job(self, job: JobRecord) -> None:
        # in_flight was incremented by the dispatcher when this slot
        # was claimed; this task only releases it.
        try:
            await self._run_job_attempts(job)
        finally:
            self.in_flight -= 1
            if self._active.get(job.key) is job and job.state.terminal:
                del self._active[job.key]
            self._wake.set()

    async def _run_job_attempts(self, job: JobRecord) -> None:
        argv = self._service_argv(job)
        while True:
            job.state = JobState.RUNNING
            job.started_at = time.time()
            job.attempts += 1
            self.journal.record_state(job)
            self.metrics.queue_wait.observe(job.started_at - job.submitted_at)
            pool = self._ensure_pool()
            start = time.monotonic()
            try:
                result = await asyncio.wait_for(
                    asyncio.wrap_future(pool.submit(argv)),
                    timeout=job.timeout,
                )
            except asyncio.TimeoutError:
                # The worker is mid-execution and cannot be cancelled
                # cooperatively; reclaim it the hard way. Deterministic
                # work would only time out again, so no retry.
                assert self.pool is not None
                self.pool.restart()
                self.metrics.inc("worker_restarts")
                job.state = JobState.TIMEOUT
                job.finished_at = time.time()
                job.error = f"exceeded {job.timeout:.1f}s timeout"
                self.metrics.inc("timeout")
                self.journal.record_state(job)
                return
            except (BrokenExecutor, OSError, EOFError) as exc:
                # Transient worker death (OOM kill, segfault, or a
                # sibling timeout restart): bounded retry with
                # exponential backoff.
                if job.attempts <= self.config.max_retries:
                    self.metrics.inc("retries")
                    await asyncio.sleep(self._retry_policy.delay(job.attempts))
                    continue
                job.state = JobState.FAILED
                job.finished_at = time.time()
                job.error = (
                    f"worker died {job.attempts} time(s); giving up: {exc}"
                )
                self.metrics.inc("failed")
                self.journal.record_state(job)
                return
            duration = time.monotonic() - start
            job.exit_code = result["exit_code"]
            job.state = JobState.DONE
            job.finished_at = time.time()
            # Result first, then the state event: a crash in between
            # re-adopts the job, whose rerun is a pure cache hit.
            self.journal.store_result(
                job.key,
                {
                    "key": job.key,
                    "job_id": job.id,
                    "kind": job.spec.kind,
                    "spec": job.spec.as_dict(),
                    "exit_code": result["exit_code"],
                    "stdout": result["stdout"],
                    "stderr": result["stderr"],
                    "duration_s": round(duration, 6),
                },
            )
            self._done_by_key[job.key] = job.id
            self.journal.record_state(job)
            self.metrics.inc("completed")
            self.metrics.observe_exec(job.spec.kind, duration)
            return

    # -- HTTP --------------------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await asyncio.wait_for(
                    _read_request(reader), timeout=30.0
                )
            except (asyncio.TimeoutError, ValueError, asyncio.IncompleteReadError):
                await _respond(writer, 400, {"error": "malformed request"})
                return
            status, payload = self._route(method, path, body)
            await _respond(writer, status, payload)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    def _route(self, method: str, path: str, body: bytes) -> tuple[int, dict]:
        path, _, query = path.partition("?")
        parts = [p for p in path.split("/") if p]
        if method == "GET" and path == "/healthz":
            return 200, self._healthz()
        if method == "GET" and path == "/metrics":
            self.metrics.counters["worker_restarts"] = (
                self.pool.restarts if self.pool is not None else 0
            )
            return 200, self.metrics.snapshot(
                queue_depth=self.scheduler.depth,
                in_flight=self.in_flight,
                workers=self.config.workers,
                fabric=self._fabric_snapshot(),
            )
        if method == "POST" and path == "/shutdown":
            self.begin_drain()
            return 200, {"status": "draining"}
        if parts[:1] == ["jobs"]:
            return self._route_jobs(method, parts, query, body)
        return 404, {"error": f"no such endpoint {method} {path}"}

    def _fabric_snapshot(self) -> dict | None:
        """The ``/metrics`` ``fabric`` section; None off the fabric."""
        return None

    def _healthz(self) -> dict:
        from repro import __version__
        from repro.harness.artifacts import code_digest

        return {
            "status": "draining" if self.draining else "ok",
            "role": self.role,
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
            "code_digest": code_digest()[:16],
            "jobs": len(self.jobs),
            "queue_depth": self.scheduler.depth,
            "in_flight": self.in_flight,
        }

    def _route_jobs(
        self, method: str, parts: list[str], query: str, body: bytes
    ) -> tuple[int, dict]:
        if method == "POST" and len(parts) == 1:
            return self._http_submit(body)
        if method == "GET" and len(parts) == 1:
            client = None
            for pair in query.split("&"):
                name, _, value = pair.partition("=")
                if name == "client" and value:
                    client = value
            jobs = [
                self.jobs[jid].to_dict()
                for jid in sorted(self.jobs)
                if client is None or client in self.jobs[jid].clients
            ]
            return 200, {"jobs": jobs}
        job = self.jobs.get(parts[1]) if len(parts) >= 2 else None
        if job is None:
            return 404, {"error": f"unknown job {parts[1] if len(parts) > 1 else ''!r}"}
        if method == "GET" and len(parts) == 2:
            return 200, {"job": job.to_dict()}
        if method == "GET" and len(parts) == 3 and parts[2] == "result":
            return self._http_result(job)
        if method == "POST" and len(parts) == 3 and parts[2] == "cancel":
            if self.cancel(job):
                return 200, {"job": job.to_dict()}
            return 409, {
                "error": f"job is {job.state.value}; only queued jobs cancel",
                "job": job.to_dict(),
            }
        return 404, {"error": "no such endpoint"}

    def _http_submit(self, body: bytes) -> tuple[int, dict]:
        try:
            payload = json.loads(body.decode() or "{}")
            if not isinstance(payload, dict):
                raise ValueError("body must be a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"error": f"bad JSON body: {exc}"}
        try:
            job, deduped = self.submit(
                kind=payload.get("kind", ""),
                params=payload.get("spec") or {},
                client=str(payload.get("client", "anonymous")),
                priority=int(payload.get("priority", 10)),
                timeout=payload.get("timeout"),
            )
        except Draining as exc:
            return 503, {"error": str(exc)}
        except QueueFull as exc:
            self.metrics.inc("rejected_backpressure")
            return 429, {"error": str(exc)}
        except (ValueError, TypeError) as exc:
            return 400, {"error": str(exc)}
        return (200 if deduped else 201), {
            "job": job.to_dict(),
            "deduped": deduped,
        }

    def _http_result(self, job: JobRecord) -> tuple[int, dict]:
        if job.state is JobState.DONE:
            result = self.journal.load_result(job.key)
            if result is None:
                return 500, {
                    "error": "result record missing from store",
                    "job": job.to_dict(),
                }
            return 200, {"job": job.to_dict(), "result": result}
        if job.state.terminal:
            return 200, {
                "job": job.to_dict(),
                "result": {
                    "exit_code": job.exit_code,
                    "stdout": "",
                    "stderr": job.error or "",
                    "state": job.state.value,
                },
            }
        return 409, {
            "error": f"job {job.id} is {job.state.value}",
            "job": job.to_dict(),
        }


# -- minimal HTTP plumbing --------------------------------------------------
# The implementation moved to repro.service.transport (every process in
# the fabric speaks the same dialect); these aliases keep old imports
# working.

_read_request = transport.read_request
_respond = transport.respond
_STATUS_TEXT = transport.STATUS_TEXT


def serve(args: Any) -> int:
    """Handler for ``repro serve``: run the service until drained.

    ``--role coordinator`` and ``--role worker`` delegate to the fabric
    entry points; the default ``local`` role is the single-node server.
    """
    import sys

    role = getattr(args, "role", "local")
    if role == "coordinator":
        from repro.service.coordinator import serve_coordinator

        return serve_coordinator(args)
    if role == "worker":
        from repro.service.node import serve_worker

        return serve_worker(args)

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=max(1, args.workers),
        queue_limit=args.queue_limit,
        max_retries=args.max_retries,
        default_timeout=args.job_timeout,
        journal_dir=args.journal,
    )
    service = JobService(config)

    async def _main() -> None:
        await service.start()
        host, port = service.address
        print(
            f"repro service listening on http://{host}:{port} "
            f"(journal: {service.journal.root}, workers: {config.workers})",
            file=sys.stderr,
            flush=True,
        )
        await service._stopped.wait()
        await service._shutdown()
        print(
            f"repro service drained: {service.metrics.counters['completed']} "
            f"job(s) completed this run",
            file=sys.stderr,
            flush=True,
        )

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    except RuntimeError as exc:
        print(f"repro serve: error: {exc}", file=sys.stderr)
        return 1
    return 0
