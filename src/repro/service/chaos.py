"""Chaos harness: kill and partition the fabric, assert byte-parity.

``python -m repro.service.chaos`` runs one end-to-end experiment:

1. **Reference run** — the campaign executes through the plain local
   CLI (``repro inject``), capturing stdout and the aggregate JSON
   export. This also warms the shared artifact cache, so the
   distributed phase measures fabric behaviour rather than golden-run
   compilation.
2. **Fabric run** — a coordinator plus N worker nodes start as real
   subprocesses (each in its own process group, exactly like
   production); the same campaign is submitted to the coordinator
   while a seeded chaos loop SIGKILLs workers (restarting them on the
   same journal, exercising node re-adoption), SIGSTOPs the
   coordinator to simulate network partitions, and optionally SIGKILLs
   and restarts the coordinator itself mid-campaign.
3. **Verdict** — the distributed stdout and aggregate export must be
   **byte-identical** to the reference. Anything else is a failure, as
   is exceeding the wall-clock guard.

The assertion this buys: chaos moves work between processes but can
never change output, because every injection is a pure function of
``(seed, index)`` and the coordinator's local finalize recomputes
whatever the fabric failed to deliver.

Exit codes: 0 parity, 1 mismatch/failure, 2 timeout or setup error.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.service.client import ServiceClient


def _say(message: str) -> None:
    print(f"[chaos] {message}", file=sys.stderr, flush=True)


class Proc:
    """A fabric subprocess in its own process group (killpg-able)."""

    def __init__(self, tag: str, argv: list[str], env: dict[str, str]):
        self.tag = tag
        self.argv = argv
        self.env = env
        self.proc = subprocess.Popen(
            argv,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
            start_new_session=True,
        )

    def alive(self) -> bool:
        return self.proc.poll() is None

    def kill9(self) -> None:
        try:
            os.killpg(os.getpgid(self.proc.pid), signal.SIGKILL)
        except (OSError, ProcessLookupError):
            pass
        try:
            self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            pass

    def pause(self) -> None:
        try:
            os.killpg(os.getpgid(self.proc.pid), signal.SIGSTOP)
        except (OSError, ProcessLookupError):
            pass

    def resume(self) -> None:
        try:
            os.killpg(os.getpgid(self.proc.pid), signal.SIGCONT)
        except (OSError, ProcessLookupError):
            pass


def _wait_endpoint(journal: Path, proc: Proc, deadline_s: float = 30) -> None:
    deadline = time.monotonic() + deadline_s
    endpoint = journal / "endpoint"
    while not endpoint.exists():
        if not proc.alive():
            raise RuntimeError(f"{proc.tag} died during startup")
        if time.monotonic() > deadline:
            raise RuntimeError(f"{proc.tag} never wrote {endpoint}")
        time.sleep(0.05)


def _start_coordinator(root: Path, env: dict, args) -> Proc:
    journal = root / "coordinator"
    (journal / "endpoint").unlink(missing_ok=True)
    proc = Proc(
        "coordinator",
        [
            sys.executable, "-m", "repro", "serve",
            "--role", "coordinator",
            "--journal", str(journal),
            "--port", "0",
            "--workers", "1",
            "--node-timeout", str(args.node_timeout),
            "--steal-after", str(args.steal_after),
            "--lease-timeout", str(args.lease_timeout),
        ],
        env,
    )
    _wait_endpoint(journal, proc)
    return proc


def _start_worker(root: Path, env: dict, args, index: int) -> Proc:
    journal = root / f"worker-{index}"
    (journal / "endpoint").unlink(missing_ok=True)
    proc = Proc(
        f"worker-{index}",
        [
            sys.executable, "-m", "repro", "serve",
            "--role", "worker",
            "--journal", str(journal),
            "--port", "0",
            "--workers", "1",
            "--coordinator-journal", str(root / "coordinator"),
            "--node-id", f"w{index}",
            "--heartbeat-interval", "0.4",
        ],
        env,
    )
    _wait_endpoint(journal, proc)
    return proc


def _poll_job(root: Path, job_id: str) -> dict | None:
    """One tolerant poll of the coordinator; None while unreachable."""
    try:
        client = ServiceClient(journal_dir=str(root / "coordinator"))
        return client.job(job_id)
    except (ValueError, ConnectionError, OSError):
        return None  # coordinator down/partitioned; caller keeps waiting


def run_chaos(args: argparse.Namespace) -> int:
    root = Path(args.workdir or tempfile.mkdtemp(prefix="repro-chaos-"))
    root.mkdir(parents=True, exist_ok=True)
    env = os.environ.copy()
    env.setdefault("REPRO_CACHE_DIR", str(root / "cache"))
    env.pop("REPRO_SERVICE", None)
    rng = random.Random(args.seed)
    deadline = time.monotonic() + args.timeout

    inject_argv = [
        args.uid,
        "--count", str(args.count),
        "--seed", str(args.inject_seed),
        "--targets", args.targets,
        "--variants", args.variants,
        "--shard-size", str(args.shard_size),
    ]
    spec = {
        "uid": args.uid,
        "count": args.count,
        "seed": args.inject_seed,
        "targets": args.targets,
        "variants": args.variants,
        "shard_size": args.shard_size,
    }

    # -- phase 1: local reference -----------------------------------------
    _say(f"reference run: repro inject {' '.join(inject_argv)}")
    ref_export = root / "reference.json"
    started = time.monotonic()
    reference = subprocess.run(
        [
            sys.executable, "-m", "repro", "inject",
            *inject_argv, "--export", str(ref_export),
        ],
        capture_output=True,
        env=env,
        timeout=max(60.0, args.timeout),
    )
    if reference.returncode != 0:
        _say(f"reference run failed: {reference.stderr.decode()}")
        return 2
    _say(f"reference done in {time.monotonic() - started:.1f}s")

    # -- phase 2: fabric under chaos ---------------------------------------
    procs: list[Proc] = []
    workers: dict[int, Proc] = {}
    coordinator: Proc | None = None
    try:
        coordinator = _start_coordinator(root, env, args)
        procs.append(coordinator)
        for i in range(args.nodes):
            workers[i] = _start_worker(root, env, args, i)
            procs.append(workers[i])
        _say(f"fabric up: coordinator + {args.nodes} worker(s)")

        # let heartbeats register before submitting
        time.sleep(max(1.0, args.node_timeout / 3))

        client = ServiceClient(journal_dir=str(root / "coordinator"))
        job, _ = client.submit("inject", spec)
        job_id, job_key = job["id"], job["key"]
        _say(f"submitted campaign {job_id} (key {job_key[:12]}…)")

        kills_done = 0
        coordinator_restarts = 0
        partitions = 0
        next_chaos = time.monotonic() + args.chaos_interval
        job_state = "queued"
        while True:
            if time.monotonic() > deadline:
                _say("TIMEOUT: campaign did not finish inside the guard")
                return 2
            polled = _poll_job(root, job_id)
            if polled is not None:
                job_state = polled["state"]
                if job_state in ("done", "failed", "cancelled", "timeout"):
                    break
            if time.monotonic() >= next_chaos:
                next_chaos = time.monotonic() + args.chaos_interval
                choice = rng.random()
                if kills_done < args.kills and workers:
                    victim = rng.choice(sorted(workers))
                    _say(f"SIGKILL worker w{victim} (kill {kills_done + 1}"
                         f"/{args.kills})")
                    workers[victim].kill9()
                    kills_done += 1
                    # restart on the SAME journal: the node re-adopts
                    # its interrupted leases exactly like the kill-9
                    # recovery path of the single-node server
                    workers[victim] = _start_worker(root, env, args, victim)
                    procs.append(workers[victim])
                elif (
                    args.restart_coordinator
                    and coordinator_restarts < 1
                    and coordinator is not None
                ):
                    _say("SIGKILL coordinator; restarting on same journal")
                    coordinator.kill9()
                    coordinator = _start_coordinator(root, env, args)
                    procs.append(coordinator)
                    coordinator_restarts += 1
                elif choice < 0.5 and coordinator is not None:
                    pause = 0.3 + rng.random() * 0.7
                    _say(f"partition: SIGSTOP coordinator for {pause:.1f}s")
                    coordinator.pause()
                    time.sleep(pause)
                    coordinator.resume()
                    partitions += 1
            time.sleep(0.2)

        if job_state != "done":
            _say(f"FAIL: campaign ended in state {job_state!r}")
            return 1
        _say(
            f"campaign done after {kills_done} worker kill(s), "
            f"{coordinator_restarts} coordinator restart(s), "
            f"{partitions} partition(s)"
        )

        # -- phase 3: parity verdict ---------------------------------------
        result = None
        for _ in range(50):  # the coordinator may be settling post-chaos
            try:
                client = ServiceClient(journal_dir=str(root / "coordinator"))
                result = client.result(job_id)["result"]
                break
            except (ValueError, ConnectionError, OSError):
                time.sleep(0.2)
        if result is None:
            _say("FAIL: could not fetch the campaign result")
            return 1

        failures = []
        if result["stdout"].encode() != reference.stdout:
            failures.append("stdout differs from the local reference run")
        fabric_export = (
            root / "coordinator" / "exports" / f"{job_key}.json"
        )
        try:
            if fabric_export.read_bytes() != ref_export.read_bytes():
                failures.append("aggregate export differs byte-wise")
        except OSError as exc:
            failures.append(f"aggregate export unreadable: {exc}")
        try:
            metrics = ServiceClient(
                journal_dir=str(root / "coordinator")
            ).metrics()
            fabric = metrics.get("fabric") or {}
            _say(
                "fabric counters: "
                + ", ".join(
                    f"{name}={fabric.get(name, 0)}"
                    for name in (
                        "live_nodes", "node_deaths", "lease_redispatch",
                        "lease_steals", "local_fallback",
                        "transport_retries",
                    )
                )
            )
        except (ValueError, ConnectionError, OSError):
            pass
        if failures:
            for failure in failures:
                _say(f"FAIL: {failure}")
            return 1
        _say("PASS: distributed aggregate is byte-identical to local run")
        return 0
    finally:
        for proc in procs:
            proc.resume()  # a SIGSTOPped group ignores SIGKILL cleanup
            proc.kill9()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.chaos",
        description="kill/partition the campaign fabric; assert byte-parity",
    )
    parser.add_argument("--uid", default="SPLASH3.radix")
    parser.add_argument("--count", type=int, default=24)
    parser.add_argument(
        "--inject-seed", type=int, default=7, help="campaign seed"
    )
    parser.add_argument("--targets", default="register")
    parser.add_argument("--variants", default="turnpike,unsafe")
    parser.add_argument("--shard-size", type=int, default=2)
    parser.add_argument(
        "--nodes", type=int, default=2, help="worker nodes to start"
    )
    parser.add_argument(
        "--kills", type=int, default=2, help="worker SIGKILLs to inflict"
    )
    parser.add_argument(
        "--restart-coordinator",
        action="store_true",
        help="also SIGKILL + restart the coordinator once mid-campaign",
    )
    parser.add_argument(
        "--seed", type=int, default=1234, help="chaos-schedule seed"
    )
    parser.add_argument(
        "--chaos-interval",
        type=float,
        default=2.0,
        help="seconds between chaos actions",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="wall-clock guard for the distributed phase",
    )
    parser.add_argument("--node-timeout", type=float, default=3.0)
    parser.add_argument("--steal-after", type=float, default=20.0)
    parser.add_argument("--lease-timeout", type=float, default=120.0)
    parser.add_argument(
        "--workdir",
        default=None,
        help="working directory (default: a fresh temp dir)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return run_chaos(args)
    except RuntimeError as exc:
        _say(f"setup failure: {exc}")
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
