"""The supervised worker pool and the in-worker job entry point.

Workers execute jobs by calling the **real CLI entry point**
(:func:`repro.__main__.main`) with the job's canonical argv and
captured stdio. That is the whole parity story: a service result is
byte-identical to ``python -m repro <argv>`` because it *is* that
invocation, sharing every cache layer underneath — no reimplemented
command logic to drift.

:class:`WorkerPool` wraps ``concurrent.futures.ProcessPoolExecutor``
with the supervision the server needs:

* :meth:`restart` tears the pool down hard (terminating live worker
  processes) and builds a fresh one — used when a job exceeds its
  timeout, since a running future cannot be cancelled cooperatively;
* a broken pool (worker killed by the OOM killer, segfault, or a
  sibling job's timeout restart) surfaces to the server as
  ``BrokenExecutor``, which retries the job with exponential backoff;
* ``restarts`` counts every rebuild for ``/metrics``.
"""

from __future__ import annotations

import contextlib
import io
import traceback
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from typing import Any, Callable


def execute_job_argv(argv: list[str]) -> dict[str, Any]:
    """Run one CLI invocation in this worker process, capturing stdio.

    Returns ``{"exit_code", "stdout", "stderr"}``. Never raises for
    job-level problems: an unexpected exception becomes exit code 70
    (EX_SOFTWARE) with the traceback on stderr, so the server can
    distinguish a job that *ran and failed* from a worker that died.
    """
    from repro.__main__ import main

    out, err = io.StringIO(), io.StringIO()
    try:
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            code = main(argv)
    except SystemExit as exc:  # argparse errors and explicit exits
        code = exc.code if isinstance(exc.code, int) else (0 if exc.code is None else 2)
    except BaseException:
        err.write(traceback.format_exc())
        code = 70
    return {
        "exit_code": int(code or 0),
        "stdout": out.getvalue(),
        "stderr": err.getvalue(),
    }


class WorkerPool:
    """A restartable ProcessPoolExecutor with restart accounting."""

    def __init__(
        self,
        workers: int,
        entry: Callable[[list[str]], dict[str, Any]] = execute_job_argv,
    ) -> None:
        self.workers = max(1, workers)
        self.entry = entry
        self.restarts = 0
        self._pool: ProcessPoolExecutor | None = None
        self._make()

    def _make(self) -> None:
        self._pool = ProcessPoolExecutor(max_workers=self.workers)

    def submit(self, argv: list[str]) -> Future:
        if self._pool is None:
            # Racing a shutdown: surface as the same error class a dead
            # pool raises, so the server's retry path handles both.
            raise BrokenExecutor("pool is shut down")
        return self._pool.submit(self.entry, argv)

    def restart(self) -> None:
        """Hard-restart the pool, terminating any live workers.

        Needed for per-job timeouts: a future already executing cannot
        be cancelled, so the only way to reclaim the worker is to kill
        it. Sibling jobs in flight will observe a broken pool and go
        through the server's retry path.
        """
        pool = self._pool
        self._pool = None
        if pool is not None:
            processes = list(getattr(pool, "_processes", {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            for proc in processes:
                try:
                    proc.terminate()
                except (OSError, ValueError, AttributeError):
                    pass
        self._make()
        self.restarts += 1

    def shutdown(self, wait: bool = True) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
            self._pool = None
