"""Live service metrics: counters, gauges, and latency histograms.

Everything the ``/metrics`` endpoint reports lives here. The snapshot
is a plain JSON-serialisable dict with **sorted, stable keys** so it is
diffable in tests and pollable by dashboards; cumulative counters only
ever increase, gauges (queue depth, in-flight) are sampled at snapshot
time from the server.

Histograms use fixed log-spaced latency buckets (seconds); each bucket
counts observations ``<=`` its upper bound, cumulative-style, plus a
total count and sum so callers can derive rates and means.
"""

from __future__ import annotations

import time
from collections import Counter

#: Upper bounds (seconds) of the latency buckets; +inf is implicit.
LATENCY_BUCKETS = (0.01, 0.05, 0.25, 1.0, 5.0, 15.0, 60.0, 300.0)


class LatencyHistogram:
    __slots__ = ("counts", "total", "sum")

    def __init__(self) -> None:
        self.counts = [0] * (len(LATENCY_BUCKETS) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, seconds: float) -> None:
        self.total += 1
        self.sum += seconds
        for i, bound in enumerate(LATENCY_BUCKETS):
            if seconds <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def to_dict(self) -> dict:
        buckets = {
            f"le_{bound:g}s": count
            for bound, count in zip(LATENCY_BUCKETS, self.counts)
        }
        buckets["le_inf"] = self.counts[-1]
        return {
            "count": self.total,
            "sum_s": round(self.sum, 6),
            "buckets": buckets,
        }


class ServiceMetrics:
    """Cumulative counters for one server process."""

    def __init__(self) -> None:
        self.started_at = time.time()
        self.counters: Counter[str] = Counter()
        # job kind -> execution latency (start -> finish)
        self.exec_latency: dict[str, LatencyHistogram] = {}
        # queue wait (submit -> start), all kinds pooled
        self.queue_wait = LatencyHistogram()

    def inc(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def observe_exec(self, kind: str, seconds: float) -> None:
        hist = self.exec_latency.get(kind)
        if hist is None:
            hist = self.exec_latency[kind] = LatencyHistogram()
        hist.observe(seconds)

    @property
    def dedup_hits(self) -> int:
        return (
            self.counters["deduped_in_flight"] + self.counters["deduped_cached"]
        )

    def snapshot(
        self,
        queue_depth: int,
        in_flight: int,
        workers: int,
        fabric: dict | None = None,
    ) -> dict:
        """The ``/metrics`` payload.

        ``fabric`` is the coordinator's health section (per-node
        liveness, lease re-dispatch/steal counters — see
        :meth:`repro.service.coordinator.Coordinator.fabric_snapshot`);
        single-node servers pass None and the key is omitted, so the
        snapshot shape tells a dashboard which role it is scraping.
        """
        submitted = self.counters["submitted"]
        hits = self.dedup_hits
        snap = {
            "uptime_s": round(time.time() - self.started_at, 3),
            "queue_depth": queue_depth,
            "in_flight": in_flight,
            "workers": workers,
            "worker_restarts": self.counters["worker_restarts"],
            "jobs": {
                "submitted": submitted,
                "accepted": self.counters["accepted"],
                "rejected_backpressure": self.counters["rejected_backpressure"],
                "deduped_in_flight": self.counters["deduped_in_flight"],
                "deduped_cached": self.counters["deduped_cached"],
                "readopted": self.counters["readopted"],
                "completed": self.counters["completed"],
                "failed": self.counters["failed"],
                "cancelled": self.counters["cancelled"],
                "timeout": self.counters["timeout"],
                "retries": self.counters["retries"],
            },
            "dedup": {
                "hits": hits,
                "hit_ratio": round(hits / submitted, 4) if submitted else 0.0,
            },
            "latency": {
                "queue_wait": self.queue_wait.to_dict(),
                "exec": {
                    kind: hist.to_dict()
                    for kind, hist in sorted(self.exec_latency.items())
                },
            },
        }
        if fabric is not None:
            snap["fabric"] = fabric
        return snap
