"""Typed job specs, lifecycle states, and content-addressed identity.

A job is one CLI-equivalent unit of work (``run`` / ``inject`` /
``lint`` / ``vuln`` / ``sweep`` / ``ecc``). Its :class:`JobSpec` is
normalised at construction — unknown
parameters rejected, defaults filled in, choices validated — so that two
submissions meaning the same thing always produce the same canonical
parameter dict, the same canonical argv, and therefore the same dedup
key no matter how the client spelled them.

Identity follows the artifact cache's discipline
(:mod:`repro.harness.artifacts`): the dedup key digests the whole
``repro`` source tree *plus* the canonical spec, so results cached by a
previous server generation can never be served after the simulator's
semantics change.
"""

from __future__ import annotations

import enum
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.harness.artifacts import code_digest

#: Parameter schema per job kind: name -> (default, validator).
#: ``REQUIRED`` marks parameters that must be supplied by the client.
REQUIRED = object()


def _str_choice(*choices: str):
    def check(value: Any) -> str:
        if not isinstance(value, str) or value not in choices:
            raise ValueError(f"expected one of {choices}, got {value!r}")
        return value

    return check


def _int(minimum: int | None = None):
    def check(value: Any) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"expected an integer, got {value!r}")
        if minimum is not None and value < minimum:
            raise ValueError(f"expected >= {minimum}, got {value}")
        return value

    return check


def _opt_int(value: Any) -> int | None:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"expected an integer or null, got {value!r}")
    return value


def _bool(value: Any) -> bool:
    if not isinstance(value, bool):
        raise ValueError(f"expected a boolean, got {value!r}")
    return value


def _uid(value: Any) -> str:
    if not isinstance(value, str) or not value:
        raise ValueError(f"expected a benchmark uid, got {value!r}")
    from repro.workloads.suites import all_profiles

    known = {p.uid for p in all_profiles()}
    if value not in known:
        raise ValueError(f"unknown benchmark uid {value!r}")
    return value


def _opt_uid(value: Any) -> str | None:
    return None if value is None else _uid(value)


def _csv(value: Any) -> str:
    if not isinstance(value, str) or not value.strip():
        raise ValueError(f"expected a comma-separated list, got {value!r}")
    return ",".join(part.strip() for part in value.split(",") if part.strip())


def _opt_shard_range(value: Any) -> str | None:
    """``"lo:hi"`` selecting shard ids ``[lo, hi)`` — a campaign lease."""
    if value is None:
        return None
    if isinstance(value, str):
        lo, sep, hi = value.partition(":")
        if sep and lo.isdigit() and hi.isdigit() and int(lo) < int(hi):
            return f"{int(lo)}:{int(hi)}"
    raise ValueError(f"expected a shard range 'lo:hi' with lo < hi, got {value!r}")


def parse_shard_range(value: str) -> tuple[int, int]:
    lo, _, hi = _opt_shard_range(value).partition(":")  # type: ignore[union-attr]
    return int(lo), int(hi)


def _opt_figures(value: Any) -> str | None:
    """Comma-separated figure ids, canonicalised to suite order."""
    if value is None:
        return None
    from repro.harness.experiments import FIGURE_SUITE

    names = set(_csv(value).split(","))
    unknown = sorted(names - set(FIGURE_SUITE))
    if unknown:
        raise ValueError(
            f"unknown figure id(s): {', '.join(unknown)} "
            f"(expected from {', '.join(FIGURE_SUITE)})"
        )
    return ",".join(name for name in FIGURE_SUITE if name in names)


def _opt_uids(value: Any) -> str | None:
    """Comma-separated benchmark uids, canonicalised to sorted order."""
    if value is None:
        return None
    names = sorted(set(_csv(value).split(",")))
    for name in names:
        _uid(name)
    return ",".join(names)


def _opt_dir(value: Any) -> str | None:
    if value is None:
        return None
    if not isinstance(value, str) or not value.strip():
        raise ValueError(f"expected a directory path, got {value!r}")
    return value


def _opt_ecc_code(value: Any) -> str | None:
    if value is None:
        return None
    if not isinstance(value, str) or not value.strip():
        raise ValueError(f"expected an ECC code name, got {value!r}")
    from repro.ecc.codes import make_code

    make_code(value.strip(), 32)  # raises ValueError on unknown names
    return value.strip()


def _opt_upset(value: Any) -> str | None:
    if value is None:
        return None
    if not isinstance(value, str) or not value.strip():
        raise ValueError(f"expected an upset pattern name, got {value!r}")
    from repro.ecc.faultmodel import pattern

    pattern(value.strip())  # raises ValueError on unknown names
    return value.strip()


def _upset(value: Any) -> str:
    out = _opt_upset(value)
    if out is None:
        raise ValueError("expected an upset pattern name")
    return out


def _opt_ecc_codes(value: Any) -> str | None:
    """Comma-separated code names, validated and order-preserved."""
    if value is None:
        return None
    names = _csv(value).split(",")
    for name in names:
        _opt_ecc_code(name)
    return ",".join(dict.fromkeys(names))


def _opt_structures(value: Any) -> str | None:
    if value is None:
        return None
    from repro.ecc.layout import STRUCTURES

    names = _csv(value).split(",")
    unknown = sorted(set(names) - set(STRUCTURES))
    if unknown:
        raise ValueError(
            f"unknown structure(s): {', '.join(unknown)} "
            f"(expected from {', '.join(STRUCTURES)})"
        )
    return ",".join(dict.fromkeys(names))


def _patterns(value: Any) -> str:
    from repro.ecc.faultmodel import parse_patterns

    if not isinstance(value, str):
        raise ValueError(f"expected a pattern list, got {value!r}")
    return ",".join(p.name for p in parse_patterns(value))


_SCHEMAS: dict[str, dict[str, tuple[Any, Any]]] = {
    "run": {
        "uid": (REQUIRED, _uid),
        "wcdl": (10, _int(1)),
        "sb": (4, _int(1)),
        "scheme": ("turnpike", _str_choice("turnpike", "turnstile", "baseline")),
        "backend": ("fast", _str_choice("fast", "codegen", "reference")),
    },
    "inject": {
        "uid": ("SPLASH3.radix", _uid),
        "count": (30, _int(1)),
        "wcdl": (10, _int(1)),
        "seed": (2024, _int()),
        "targets": ("register,store_buffer,clq,coloring", _csv),
        "variants": ("turnstile,warfree,turnpike,unsafe", _csv),
        "shard_size": (8, _int(1)),
        "accel": ("on", _str_choice("on", "off")),
        "snapshot_interval": (None, _opt_int),
        "ecc": (None, _opt_ecc_code),
        "upset": (None, _opt_upset),
        # Fabric plumbing: a coordinator decomposes a campaign into
        # shard *leases* — the same spec restricted to a shard-id range
        # — and points them all at one shared manifest store so any
        # node (or the coordinator itself) can resume/merge the work.
        "shards": (None, _opt_shard_range),
        "store_dir": (None, _opt_dir),
    },
    "lint": {
        "uid": (None, _opt_uid),
        "all": (False, _bool),
        "scheme": ("turnpike", _str_choice("turnpike", "turnstile")),
        "sb": (4, _int(1)),
        "format": ("text", _str_choice("text", "json", "sarif")),
        "differential": (True, _bool),
        "strict": (False, _bool),
        "upset_model": ("single", _upset),
    },
    "vuln": {
        "uid": (REQUIRED, _uid),
        "scheme": ("turnpike", _str_choice("turnpike", "turnstile")),
        "wcdl": (10, _int(1)),
        "variants": ("turnstile,warfree,turnpike", _csv),
        "format": ("text", _str_choice("text", "json")),
    },
    "sweep": {
        "figures": (None, _opt_figures),
        "benchmarks": (None, _opt_uids),
        "format": ("text", _str_choice("text", "json")),
    },
    "ecc": {
        "codes": (None, _opt_ecc_codes),
        "structures": (None, _opt_structures),
        "patterns": ("single,adjacent-double,burst3", _patterns),
        "trials": (2000, _int(1)),
        "seed": (0, _int()),
        "pareto": (False, _bool),
        "interleave": (False, _bool),
        "format": ("text", _str_choice("text", "json")),
    },
}

JOB_KINDS = tuple(_SCHEMAS)


@dataclass(frozen=True)
class JobSpec:
    """A normalised, validated job description."""

    kind: str
    params: tuple[tuple[str, Any], ...]

    @classmethod
    def create(cls, kind: str, params: Mapping[str, Any] | None = None) -> "JobSpec":
        if kind not in _SCHEMAS:
            raise ValueError(
                f"unknown job kind {kind!r} (expected one of {JOB_KINDS})"
            )
        schema = _SCHEMAS[kind]
        params = dict(params or {})
        unknown = sorted(set(params) - set(schema))
        if unknown:
            raise ValueError(f"unknown {kind} parameter(s): {', '.join(unknown)}")
        normal: dict[str, Any] = {}
        for name, (default, check) in schema.items():
            if name in params:
                try:
                    normal[name] = check(params[name])
                except ValueError as exc:
                    raise ValueError(f"{kind}.{name}: {exc}") from None
            elif default is REQUIRED:
                raise ValueError(f"{kind}.{name} is required")
            else:
                normal[name] = default
        if kind == "lint" and normal["uid"] is None and not normal["all"]:
            raise ValueError("lint needs a benchmark uid or all=true")
        if kind == "lint" and normal["uid"] is not None and normal["all"]:
            raise ValueError("lint takes a uid or all=true, not both")
        # Canonical order: the schema's declaration order, always fully
        # materialised — submissions that differ only in spelling or in
        # which defaults they omitted become identical specs.
        return cls(kind, tuple((name, normal[name]) for name in schema))

    def as_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def to_argv(self) -> list[str]:
        """The canonical ``repro`` argv this job executes.

        Workers run jobs through the real CLI entry point, so service
        results are byte-identical to direct invocations by
        construction. Parallelism flags are pinned to one worker: the
        service's own pool is the unit of concurrency.
        """
        p = self.as_dict()
        if self.kind == "run":
            return [
                "run", p["uid"],
                "--wcdl", str(p["wcdl"]),
                "--sb", str(p["sb"]),
                "--scheme", p["scheme"],
                "--backend", p["backend"],
            ]
        if self.kind == "inject":
            argv = [
                "inject", p["uid"],
                "--count", str(p["count"]),
                "--wcdl", str(p["wcdl"]),
                "--seed", str(p["seed"]),
                "--targets", p["targets"],
                "--variants", p["variants"],
                "--shard-size", str(p["shard_size"]),
                "--workers", "1",
                "--accel", p["accel"],
            ]
            if p["snapshot_interval"] is not None:
                argv += ["--snapshot-interval", str(p["snapshot_interval"])]
            if p["ecc"] is not None:
                argv += ["--ecc", p["ecc"]]
            if p["upset"] is not None:
                argv += ["--upset", p["upset"]]
            if p["shards"] is not None:
                argv += ["--shards", p["shards"]]
            # store_dir is deliberately NOT part of the argv: it only
            # tells the *service* where to place the manifest (shared
            # fabric store vs local journal); the executed campaign is
            # identical either way.
            return argv
        if self.kind == "vuln":
            return [
                "vuln", p["uid"],
                "--scheme", p["scheme"],
                "--wcdl", str(p["wcdl"]),
                "--variants", p["variants"],
                "--format", p["format"],
            ]
        if self.kind == "ecc":
            argv = ["ecc"]
            if p["codes"] is not None:
                argv += ["--codes", p["codes"]]
            if p["structures"] is not None:
                argv += ["--structure", p["structures"]]
            argv += [
                "--patterns", p["patterns"],
                "--trials", str(p["trials"]),
                "--seed", str(p["seed"]),
            ]
            if p["pareto"]:
                argv.append("--pareto")
            if p["interleave"]:
                argv.append("--interleave")
            argv += ["--format", p["format"]]
            return argv
        if self.kind == "sweep":
            argv = ["sweep"]
            if p["figures"] is not None:
                argv += p["figures"].split(",")
            if p["benchmarks"] is not None:
                argv += ["--benchmarks", p["benchmarks"]]
            argv += ["--workers", "1"]
            if p["format"] == "json":
                argv.append("--json")
            return argv
        argv = ["lint"]
        argv += ["--all"] if p["all"] else [p["uid"]]
        argv += [
            "--scheme", p["scheme"],
            "--sb", str(p["sb"]),
            "--format", p["format"],
            "--workers", "1",
            "--upset-model", p["upset_model"],
        ]
        if not p["differential"]:
            argv.append("--no-differential")
        if p["strict"]:
            argv.append("--strict")
        return argv


def job_key(spec: JobSpec) -> str:
    """Content-addressed dedup key: source digest + canonical spec.

    Shares the artifact cache's invalidation property — any edit under
    ``src/repro`` changes :func:`code_digest` and therefore every key,
    so stale results are unreachable rather than merely unlikely.
    """
    text = "|".join(
        [
            code_digest(),
            spec.kind,
            json.dumps(spec.as_dict(), sort_keys=True),
        ]
    )
    return hashlib.sha256(text.encode()).hexdigest()[:40]


class JobState(str, enum.Enum):
    """Job lifecycle: queued -> running -> done/failed/cancelled/timeout."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"

    @property
    def terminal(self) -> bool:
        return self in (
            JobState.DONE,
            JobState.FAILED,
            JobState.CANCELLED,
            JobState.TIMEOUT,
        )


@dataclass
class JobRecord:
    """One job's mutable lifecycle, as tracked by the registry/journal."""

    id: str
    spec: JobSpec
    key: str
    client: str
    priority: int = 10
    timeout: float | None = None
    state: JobState = JobState.QUEUED
    attempts: int = 0
    clients: list[str] = field(default_factory=list)
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    exit_code: int | None = None
    error: str | None = None

    def __post_init__(self) -> None:
        if not self.clients:
            self.clients = [self.client]

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "kind": self.spec.kind,
            "spec": self.spec.as_dict(),
            "key": self.key,
            "client": self.client,
            "clients": list(self.clients),
            "priority": self.priority,
            "timeout": self.timeout,
            "state": self.state.value,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "exit_code": self.exit_code,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobRecord":
        spec = JobSpec.create(data["kind"], data["spec"])
        rec = cls(
            id=data["id"],
            spec=spec,
            key=data["key"],
            client=data["client"],
            priority=data.get("priority", 10),
            timeout=data.get("timeout"),
            state=JobState(data.get("state", "queued")),
            attempts=data.get("attempts", 0),
            clients=list(data.get("clients") or [data["client"]]),
            submitted_at=data.get("submitted_at", 0.0),
        )
        rec.started_at = data.get("started_at")
        rec.finished_at = data.get("finished_at")
        rec.exit_code = data.get("exit_code")
        rec.error = data.get("error")
        return rec
