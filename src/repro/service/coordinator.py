"""The campaign coordinator: routes jobs across registered worker nodes.

The coordinator **is** a :class:`~repro.service.server.JobService` — it
inherits the journal, dedup, drain, and crash re-adoption machinery —
whose execution path dispatches work to worker nodes instead of (only)
its own pool:

* ``run`` / ``lint`` jobs are routed whole to one node chosen by
  consistent hashing over the content-addressed job key (so repeated
  submissions land on the node whose caches are already warm), with
  automatic failover to the next ring position when a node dies;
* ``inject`` campaigns are decomposed into **shard leases** — the same
  spec restricted to a shard-id range, pointed at a shared manifest
  store — scattered across live nodes, merged, and finalized locally.

The finalize step is the liveness *and* parity anchor: after the
scatter/gather phase (however much of it succeeded), the coordinator
runs the campaign locally with ``--resume`` against the merged
manifest. If every lease landed, that is a pure aggregation; if nodes
died mid-lease, the local run computes exactly the missing shards.
Every injection depends only on ``(seed, index)``, so the aggregate is
byte-identical to a single-node run **no matter which process computed
which shard** — chaos only moves work around, never changes output.

Failure handling, in order of escalation:

1. a node missing heartbeats for ``node_timeout`` seconds is declared
   dead, leaves the ring, and its in-flight leases are re-dispatched to
   survivors (``lease_redispatch``);
2. a live-but-slow node holding a lease past ``steal_after`` seconds
   gets its lease *stolen* — duplicated onto another node
   (``lease_steals``); both may finish, and since both write the same
   deterministic records via atomic manifest replace, first-completion
   -wins is safe;
3. with zero reachable workers the coordinator degrades to plain local
   execution (``local_fallback``) — a fabric of one.

Nodes must present the coordinator's own source digest to receive
work: lease job keys embed the digest, so a stale node would compute
keys (and caches) that can never match. The shared manifest store
lives inside the coordinator's journal; worker nodes are expected to
share that filesystem (the multi-node story on one machine — separate
processes, shared disk).
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.service import transport
from repro.service.jobs import JobRecord, JobSpec, job_key
from repro.service.server import JobService, ServiceConfig


@dataclass
class NodeInfo:
    """One registered worker node, as seen from the coordinator."""

    id: str
    host: str
    port: int
    workers: int = 1
    in_flight: int = 0
    queue_depth: int = 0
    digest: str = ""
    pid: int | None = None
    last_seen: float = field(default_factory=time.monotonic)

    def age(self, now: float | None = None) -> float:
        return (now if now is not None else time.monotonic()) - self.last_seen

    def to_dict(self, node_timeout: float) -> dict[str, Any]:
        age = self.age()
        return {
            "id": self.id,
            "host": self.host,
            "port": self.port,
            "workers": self.workers,
            "in_flight": self.in_flight,
            "queue_depth": self.queue_depth,
            "digest": self.digest,
            "pid": self.pid,
            "age_s": round(age, 3),
            "state": "live" if age <= node_timeout else "dead",
        }


class HashRing:
    """Consistent hashing with virtual replicas.

    Keys map to the first node clockwise from their hash; adding or
    removing one node only remaps the keys that hashed into its arcs,
    so the routing (and therefore which node's caches stay warm) is
    stable under churn. :meth:`preference` returns the full failover
    order — distinct nodes in ring-walk order.
    """

    def __init__(self, replicas: int = 64) -> None:
        self.replicas = replicas
        self._ring: list[tuple[int, str]] = []  # sorted (point, node_id)
        self._nodes: set[str] = set()

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(
            hashlib.sha256(value.encode()).digest()[:8], "big"
        )

    def add(self, node_id: str) -> None:
        if node_id in self._nodes:
            return
        self._nodes.add(node_id)
        for i in range(self.replicas):
            self._ring.append((self._hash(f"{node_id}#{i}"), node_id))
        self._ring.sort()

    def remove(self, node_id: str) -> None:
        if node_id not in self._nodes:
            return
        self._nodes.discard(node_id)
        self._ring = [entry for entry in self._ring if entry[1] != node_id]

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def preference(self, key: str) -> list[str]:
        """All nodes in failover order for ``key`` (best first)."""
        if not self._ring:
            return []
        point = self._hash(key)
        import bisect

        start = bisect.bisect_right(self._ring, (point, "￿"))
        order: list[str] = []
        seen: set[str] = set()
        for i in range(len(self._ring)):
            node_id = self._ring[(start + i) % len(self._ring)][1]
            if node_id not in seen:
                seen.add(node_id)
                order.append(node_id)
                if len(seen) == len(self._nodes):
                    break
        return order


# -- lease planning / merging (pure functions, unit-testable) ---------------


def shard_count(params: dict[str, Any]) -> int:
    count, size = params["count"], params["shard_size"]
    return (count + size - 1) // size


def plan_leases(
    spec: JobSpec, store_dir: str, lease_shards: int = 1
) -> list[dict[str, Any]]:
    """Decompose an inject spec into lease descriptors.

    Each lease is itself a valid, content-addressed job: the full
    campaign params restricted to ``lease_shards`` consecutive shard
    ids and pointed at the shared store. Descriptor fields: ``params``
    (submit-ready), ``key`` (the lease's job key), ``shards`` (global
    shard ids), ``manifest`` (where its contribution lands).
    """
    params = spec.as_dict()
    total = shard_count(params)
    leases = []
    for lo in range(0, total, lease_shards):
        hi = min(lo + lease_shards, total)
        lease_params = dict(params)
        lease_params["shards"] = f"{lo}:{hi}"
        lease_params["store_dir"] = store_dir
        lease_spec = JobSpec.create("inject", lease_params)
        key = job_key(lease_spec)
        leases.append(
            {
                "params": lease_spec.as_dict(),
                "key": key,
                "shards": list(range(lo, hi)),
                "manifest": str(Path(store_dir) / f"{key}.json"),
            }
        )
    return leases


def lease_complete(lease: dict[str, Any]) -> bool:
    """True when the lease's manifest covers all its shard ids."""
    try:
        manifest = json.loads(Path(lease["manifest"]).read_text())
    except (OSError, ValueError):
        return False
    have = set(manifest.get("shards", {}))
    return all(str(sid) in have for sid in lease["shards"])


def merge_manifests(
    lease_paths: list[Path], out_path: Path
) -> int:
    """Union lease manifests (plus any existing output) into ``out_path``.

    Returns the number of distinct shards now present. Safe against
    torn or missing inputs (skipped) and concurrent writers (atomic
    replace; shard contents are deterministic so duplicate keys carry
    identical records and last-write-wins is a no-op).
    """
    merged: dict[str, Any] = {"spec": None, "shards": {}}
    for path in [out_path, *lease_paths]:
        try:
            manifest = json.loads(Path(path).read_text())
        except (OSError, ValueError):
            continue
        if not isinstance(manifest, dict):
            continue
        if merged["spec"] is None and manifest.get("spec") is not None:
            merged["spec"] = manifest["spec"]
        for sid, records in (manifest.get("shards") or {}).items():
            merged["shards"].setdefault(sid, records)
    if merged["spec"] is None:
        return 0
    import os
    import tempfile

    out_path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=out_path.parent, prefix=".merge-")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(json.dumps(merged, indent=2, sort_keys=True))
        os.replace(tmp, out_path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    return len(merged["shards"])


# -- the coordinator service ------------------------------------------------


@dataclass
class CoordinatorConfig(ServiceConfig):
    #: Seconds without a heartbeat before a node is declared dead.
    node_timeout: float = 10.0
    #: Hard per-lease deadline on one node before re-dispatch.
    lease_timeout: float = 300.0
    #: Soft deadline before a straggling lease is duplicated elsewhere.
    steal_after: float = 60.0
    #: Campaign shards per lease (1 = finest-grained work distribution).
    lease_shards: int = 1
    #: Poll interval while watching a remote job.
    poll_interval: float = 0.25


class Coordinator(JobService):
    role = "coordinator"

    def __init__(self, config: CoordinatorConfig | None = None) -> None:
        super().__init__(config or CoordinatorConfig())
        self.nodes: dict[str, NodeInfo] = {}
        self.ring = HashRing()
        self._reaper: asyncio.Task | None = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        await super().start()
        self._reaper = asyncio.create_task(self._reap_loop())

    async def _shutdown(self) -> None:
        if self._reaper is not None:
            self._reaper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reaper
        await super()._shutdown()

    @property
    def _cfg(self) -> CoordinatorConfig:
        assert isinstance(self.config, CoordinatorConfig)
        return self.config

    async def _reap_loop(self) -> None:
        """Expire nodes whose heartbeats stopped; their leases follow."""
        while True:
            await asyncio.sleep(max(0.05, self._cfg.node_timeout / 4))
            now = time.monotonic()
            for node_id in list(self.nodes):
                if self.nodes[node_id].age(now) > self._cfg.node_timeout:
                    del self.nodes[node_id]
                    self.ring.remove(node_id)
                    self.metrics.inc("node_deaths")
                    self._wake.set()

    # -- node registry -----------------------------------------------------

    def live_nodes(self) -> list[NodeInfo]:
        timeout = self._cfg.node_timeout
        return [n for n in self.nodes.values() if n.age() <= timeout]

    def _register_heartbeat(self, payload: dict[str, Any]) -> NodeInfo:
        node_id = str(payload["id"])
        node = self.nodes.get(node_id)
        if node is None:
            node = NodeInfo(
                id=node_id,
                host=str(payload["host"]),
                port=int(payload["port"]),
            )
            self.nodes[node_id] = node
            self.ring.add(node_id)
            self.metrics.inc("nodes_joined")
        node.host = str(payload["host"])
        node.port = int(payload["port"])
        node.workers = int(payload.get("workers", 1))
        node.in_flight = int(payload.get("in_flight", 0))
        node.queue_depth = int(payload.get("queue_depth", 0))
        node.digest = str(payload.get("digest", ""))
        node.pid = payload.get("pid")
        node.last_seen = time.monotonic()
        self._wake.set()  # capacity may have grown
        return node

    def _eligible(self, node: NodeInfo) -> bool:
        """Live and running the same source tree (lease keys agree)."""
        from repro.harness.artifacts import code_digest

        return (
            node.age() <= self._cfg.node_timeout
            and node.digest == code_digest()[:16]
        )

    def _candidates(self, key: str, exclude: set[str]) -> list[NodeInfo]:
        order = []
        for node_id in self.ring.preference(key):
            node = self.nodes.get(node_id)
            if node is not None and node_id not in exclude and self._eligible(node):
                order.append(node)
        return order

    # -- capacity / metrics ------------------------------------------------

    def _dispatch_capacity(self) -> int:
        remote = sum(node.workers for node in self.live_nodes())
        return self.config.workers + remote

    def _fabric_snapshot(self) -> dict | None:
        timeout = self._cfg.node_timeout
        return {
            "role": self.role,
            "nodes": {
                node_id: self.nodes[node_id].to_dict(timeout)
                for node_id in sorted(self.nodes)
            },
            "live_nodes": len(self.live_nodes()),
            "nodes_joined": self.metrics.counters["nodes_joined"],
            "node_deaths": self.metrics.counters["node_deaths"],
            "remote_dispatch": self.metrics.counters["remote_dispatch"],
            "lease_redispatch": self.metrics.counters["lease_redispatch"],
            "lease_steals": self.metrics.counters["lease_steals"],
            "local_fallback": self.metrics.counters["local_fallback"],
            "transport_retries": self.metrics.counters["transport_retries"],
            "stale_endpoint_replaced": self.metrics.counters[
                "stale_endpoint_replaced"
            ],
        }

    def _on_transport_retry(self, attempt: int, exc: BaseException) -> None:
        self.metrics.inc("transport_retries")

    # -- HTTP --------------------------------------------------------------

    def _route(self, method: str, path: str, body: bytes) -> tuple[int, dict]:
        clean = path.partition("?")[0]
        if method == "GET" and clean == "/nodes":
            timeout = self._cfg.node_timeout
            return 200, {
                "nodes": [
                    self.nodes[node_id].to_dict(timeout)
                    for node_id in sorted(self.nodes)
                ]
            }
        if method == "POST" and clean == "/nodes/heartbeat":
            try:
                payload = json.loads(body.decode() or "{}")
                node = self._register_heartbeat(payload)
            except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
                return 400, {"error": f"bad heartbeat: {exc}"}
            return 200, {
                "status": "ok",
                "node": node.id,
                "known_nodes": len(self.nodes),
            }
        return super()._route(method, path, body)

    # -- execution override ------------------------------------------------

    @property
    def store_dir(self) -> Path:
        """Shared manifest store: the journal's own manifests directory
        (stable across coordinator restarts, shared with nodes by
        filesystem)."""
        return self.journal.root / "manifests"

    async def _run_job_attempts(self, job: JobRecord) -> None:
        params = job.spec.as_dict()
        if (
            job.spec.kind == "inject"
            and params.get("shards") is None
            and shard_count(params) > 1
        ):
            # Scatter leases across the fabric (best effort), then let
            # the inherited local path finalize: with a fully merged
            # manifest it is pure aggregation; with holes it computes
            # exactly the missing shards. Parity and liveness both.
            await self._scatter_gather(job)
            await super()._run_job_attempts(job)
            return
        if await self._run_remote(job):
            return
        self.metrics.inc("local_fallback")
        await super()._run_job_attempts(job)

    # -- whole-job remote routing (run / lint / single-shard inject) -------

    async def _run_remote(self, job: JobRecord) -> bool:
        """Route one job to its ring-preferred node; mirror the result.

        Returns False (caller falls back to local) when no eligible
        node accepts, completes, and hands back a result.
        """
        from repro.service.jobs import JobState

        tried: set[str] = set()
        while not self.draining:
            candidates = self._candidates(job.key, tried)
            if not candidates:
                return False
            node = candidates[0]
            tried.add(node.id)
            result = await self._remote_job(node, job.spec, job.timeout)
            if result is None:
                self.metrics.inc("lease_redispatch")
                continue
            self.metrics.inc("remote_dispatch")
            duration = float(result.get("duration_s") or 0.0)
            job.exit_code = result.get("exit_code")
            job.state = JobState.DONE
            job.finished_at = time.time()
            self.journal.store_result(
                job.key,
                {
                    "key": job.key,
                    "job_id": job.id,
                    "kind": job.spec.kind,
                    "spec": job.spec.as_dict(),
                    "exit_code": result.get("exit_code"),
                    "stdout": result.get("stdout", ""),
                    "stderr": result.get("stderr", ""),
                    "duration_s": duration,
                    "node": node.id,
                },
            )
            self._done_by_key[job.key] = job.id
            self.journal.record_state(job)
            self.metrics.inc("completed")
            self.metrics.observe_exec(job.spec.kind, duration)
            return True
        return False

    async def _remote_job(
        self,
        node: NodeInfo,
        spec: JobSpec,
        timeout: float | None,
        deadline: float | None = None,
        done_probe: Any = None,
    ) -> dict[str, Any] | None:
        """Submit ``spec`` to ``node`` and poll to completion.

        Returns the result payload, or None on node death, job
        failure, or deadline expiry. ``done_probe()`` (if given) is an
        out-of-band completion check — used by leases, whose real
        output is the manifest a *different* node may have finished.
        """
        try:
            status, payload = await transport.acall(
                node.host, node.port, "POST", "/jobs",
                {
                    "kind": spec.kind,
                    "spec": spec.as_dict(),
                    "client": f"coordinator:{self.journal.root.name}",
                    "timeout": timeout,
                },
                idempotency_key=job_key(spec),
                on_retry=self._on_transport_retry,
            )
        except transport.Unreachable:
            return None
        if status >= 400:
            return None
        job_id = payload["job"]["id"]
        started = time.monotonic()
        while not self.draining:
            await asyncio.sleep(self._cfg.poll_interval)
            if done_probe is not None and done_probe():
                return {}
            elapsed = time.monotonic() - started
            if deadline is not None and elapsed > deadline:
                return None
            if elapsed > self._cfg.lease_timeout:
                return None
            try:
                status, payload = await transport.acall(
                    node.host, node.port, "GET", f"/jobs/{job_id}",
                    on_retry=self._on_transport_retry,
                )
            except transport.Unreachable:
                return None
            if status >= 400:
                return None
            state = payload["job"]["state"]
            if state == "done":
                try:
                    status, payload = await transport.acall(
                        node.host, node.port, "GET",
                        f"/jobs/{job_id}/result",
                        on_retry=self._on_transport_retry,
                    )
                except transport.Unreachable:
                    return None
                if status >= 400:
                    return None
                return payload.get("result") or {}
            if state in ("failed", "cancelled", "timeout"):
                return None
        return None

    # -- campaign scatter/gather -------------------------------------------

    async def _scatter_gather(self, job: JobRecord) -> None:
        """Lease out a campaign's shards; merge whatever comes back."""
        store = self.store_dir
        leases = plan_leases(
            job.spec, str(store), max(1, self._cfg.lease_shards)
        )
        if not any(self._candidates(job.key, set())):
            # Zero reachable workers: skip straight to local execution.
            self.metrics.inc("local_fallback")
            return
        results = await asyncio.gather(
            *(self._run_lease(lease) for lease in leases),
            return_exceptions=True,
        )
        landed = sum(1 for r in results if r is True)
        self.metrics.inc("leases_completed", landed)
        merge_manifests(
            [Path(lease["manifest"]) for lease in leases],
            self.journal.manifest_path(job.key),
        )

    async def _run_lease(self, lease: dict[str, Any]) -> bool:
        """Drive one lease to completion across node failures.

        Walks the ring preference for the lease key; a dead or expired
        node causes re-dispatch to the next (``lease_redispatch``), a
        live-but-slow node causes duplication (``lease_steals``).
        Completion is judged by the *store*, not the node: the lease is
        done when its manifest covers its shard ids, whoever wrote it.
        """
        if lease_complete(lease):
            return True  # landed in a previous coordinator incarnation
        spec = JobSpec.create("inject", lease["params"])
        tried: set[str] = set()
        while not self.draining:
            candidates = self._candidates(lease["key"], tried)
            if not candidates:
                return lease_complete(lease)
            node = candidates[0]
            tried.add(node.id)
            stealable = len(self._candidates(lease["key"], tried)) > 0
            result = await self._remote_job(
                node,
                spec,
                None,
                deadline=self._cfg.steal_after if stealable else None,
                done_probe=lambda: lease_complete(lease),
            )
            if lease_complete(lease):
                return True
            if result is None:
                # Node death, job failure, or soft deadline: move on.
                if node.id in self.nodes and self._eligible(node):
                    self.metrics.inc("lease_steals")
                else:
                    self.metrics.inc("lease_redispatch")
                continue
            # Job reported done but the manifest is not visible: treat
            # as failure and re-dispatch.
            self.metrics.inc("lease_redispatch")
        return lease_complete(lease)


def serve_coordinator(args: Any) -> int:
    """Entry point for ``repro serve --role coordinator``."""
    import sys

    config = CoordinatorConfig(
        host=args.host,
        port=args.port,
        workers=max(1, args.workers),
        queue_limit=args.queue_limit,
        max_retries=args.max_retries,
        default_timeout=args.job_timeout,
        journal_dir=args.journal,
        node_timeout=args.node_timeout,
        lease_timeout=args.lease_timeout,
        steal_after=args.steal_after,
        lease_shards=max(1, args.lease_shards),
    )
    service = Coordinator(config)

    async def _main() -> None:
        await service.start()
        host, port = service.address
        print(
            f"repro coordinator listening on http://{host}:{port} "
            f"(journal: {service.journal.root}, local workers: "
            f"{config.workers})",
            file=sys.stderr,
            flush=True,
        )
        await service._stopped.wait()
        await service._shutdown()
        print(
            f"repro coordinator drained: "
            f"{service.metrics.counters['completed']} job(s) completed",
            file=sys.stderr,
            flush=True,
        )

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    except RuntimeError as exc:
        print(f"repro serve: error: {exc}", file=sys.stderr)
        return 1
    return 0
