"""Bounded priority queue with per-client round-robin fairness.

Scheduling discipline, in order:

1. **priority** — lower number runs first (default 10); a client may
   mark interactive work urgent without starving the batch tier, which
   simply waits until the urgent bucket is empty;
2. **per-client fairness** — within one priority bucket, clients are
   served round-robin: a tenant that enqueues 500 jobs cannot starve a
   tenant that enqueues 2, who will be interleaved 1:1 while both have
   work;
3. **FIFO** — within one (priority, client) lane, submission order.

Capacity is bounded: :meth:`FairScheduler.push` raises
:class:`QueueFull` once ``limit`` jobs are queued, which the server
surfaces as HTTP 429 — explicit backpressure instead of unbounded
memory growth.

The scheduler is synchronous and lock-free by design; the asyncio
server is single-threaded, so all mutation happens on the event loop.
Cancellation is lazy: cancelled jobs stay in their lane and are
discarded at :meth:`pop` time (their state is no longer ``QUEUED``).
"""

from __future__ import annotations

from collections import deque

from repro.service.jobs import JobRecord, JobState


class QueueFull(RuntimeError):
    """The bounded queue rejected a submission (backpressure)."""


class FairScheduler:
    def __init__(self, limit: int = 256) -> None:
        if limit < 1:
            raise ValueError("queue limit must be >= 1")
        self.limit = limit
        # priority -> client -> FIFO lane of queued jobs
        self._lanes: dict[int, dict[str, deque[JobRecord]]] = {}
        # priority -> round-robin order over clients with pending work
        self._rr: dict[int, deque[str]] = {}
        self._depth = 0

    @property
    def depth(self) -> int:
        """Number of genuinely queued (non-cancelled) jobs."""
        return self._depth

    def backlog(self) -> dict[str, int]:
        """Queued (non-cancelled) job count per client.

        Fabric health reporting: a worker node includes this in its
        heartbeat so the coordinator can prefer idle nodes.
        """
        counts: dict[str, int] = {}
        for lanes in self._lanes.values():
            for client, lane in lanes.items():
                live = sum(1 for job in lane if job.state is JobState.QUEUED)
                if live:
                    counts[client] = counts.get(client, 0) + live
        return counts

    def push(self, job: JobRecord) -> None:
        if self._depth >= self.limit:
            raise QueueFull(
                f"queue limit reached ({self.limit} jobs); retry later"
            )
        lanes = self._lanes.setdefault(job.priority, {})
        lane = lanes.get(job.client)
        if lane is None:
            lane = lanes[job.client] = deque()
            self._rr.setdefault(job.priority, deque()).append(job.client)
        lane.append(job)
        self._depth += 1

    def pop(self) -> JobRecord | None:
        """Next runnable job, or None when the queue is empty."""
        for priority in sorted(self._lanes):
            job = self._pop_bucket(priority)
            if job is not None:
                return job
        return None

    def _pop_bucket(self, priority: int) -> JobRecord | None:
        lanes = self._lanes.get(priority)
        rr = self._rr.get(priority)
        if not lanes or not rr:
            return None
        # Each iteration either returns a job or removes a drained
        # client from the bucket, so the loop terminates.
        while rr:
            client = rr[0]
            lane = lanes.get(client)
            job = None
            while lane:
                candidate = lane.popleft()
                if candidate.state is JobState.QUEUED:
                    job = candidate
                    break
                # Jobs cancelled while queued are discarded lazily here;
                # discard() already adjusted the depth.
            if job is not None:
                if lane:
                    rr.rotate(-1)
                else:
                    rr.popleft()
                    lanes.pop(client, None)
                if not lanes:
                    self._lanes.pop(priority, None)
                    self._rr.pop(priority, None)
                self._depth -= 1
                return job
            rr.popleft()
            lanes.pop(client, None)
        self._lanes.pop(priority, None)
        self._rr.pop(priority, None)
        return None

    def discard(self, job: JobRecord) -> None:
        """Account for a queued job cancelled out-of-band.

        The entry itself is removed lazily by :meth:`pop`; only the
        depth (which backpressure and metrics read) updates eagerly.
        """
        if self._depth > 0:
            self._depth -= 1
