"""``repro.service`` — the async batch simulation service.

Everything the reproduction can do from the CLI — timing simulation
(``run``), differential fault-injection campaigns (``inject``), static
resilience verification (``lint``) — is a pure function of the job spec
and the simulator source tree. This package turns those one-shot
invocations into a long-lived, multi-tenant batch service:

* :mod:`repro.service.jobs` — typed job specs with canonical argv and
  content-addressed dedup keys (source digest + frozen spec, the same
  identity discipline as the artifact cache);
* :mod:`repro.service.scheduler` — bounded priority queue with
  per-client round-robin fairness and explicit backpressure;
* :mod:`repro.service.metrics` — counters and latency histograms
  behind ``/metrics``;
* :mod:`repro.service.journal` — crash-safe JSONL event journal plus a
  content-addressed result store, so a restarted server re-adopts
  interrupted jobs and serves repeat submissions from cache;
* :mod:`repro.service.worker` — the supervised
  ``ProcessPoolExecutor`` pool whose workers execute jobs by invoking
  the real CLI entry point (results are byte-identical to direct
  invocations by construction);
* :mod:`repro.service.server` — the asyncio HTTP/JSON server
  (``repro serve``): dispatch, per-job timeout, bounded retry with
  exponential backoff, graceful drain on SIGTERM;
* :mod:`repro.service.client` — the stdlib HTTP client behind
  ``repro submit`` / ``repro jobs`` / ``repro result`` /
  ``repro nodes``.

The multi-node **campaign fabric** builds on that single-node core:

* :mod:`repro.service.backoff` — the one jittered-exponential-backoff
  policy shared by server retries, client calls, and fabric transport;
* :mod:`repro.service.transport` — the HTTP/JSON dialect every fabric
  process speaks, with per-request timeouts and idempotent retry;
* :mod:`repro.service.coordinator` — routes jobs across registered
  worker nodes by consistent hashing over content-addressed keys,
  scatters campaigns as shard leases, re-dispatches leases of dead
  nodes, steals stragglers, and degrades to local execution when no
  workers are reachable — always finalizing locally so aggregates stay
  byte-identical to a single-node run;
* :mod:`repro.service.node` — the worker-node daemon: a job server
  plus a heartbeat that enrolls it with a coordinator;
* :mod:`repro.service.chaos` — the kill/partition harness that proves
  the byte-parity claim under induced failures.

The wire protocol is deliberately plain HTTP/1.1 with JSON bodies over
TCP, implemented on stdlib asyncio streams — no third-party
dependencies anywhere in the package.
"""

from repro.service.jobs import JobSpec, JobState, job_key
from repro.service.scheduler import FairScheduler, QueueFull
from repro.service.metrics import ServiceMetrics

__all__ = [
    "FairScheduler",
    "JobSpec",
    "JobState",
    "QueueFull",
    "ServiceMetrics",
    "job_key",
]
