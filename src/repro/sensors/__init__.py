"""Acoustic sensor deployment and detection-latency models."""

from repro.sensors.acoustic import (
    DETECTION_OVERHEAD_S,
    SOUND_SPEED_SILICON,
    SensorGrid,
    area_overhead_percent,
    detection_latency_cycles,
    figure18_series,
    sensors_for_wcdl,
)

__all__ = [
    "DETECTION_OVERHEAD_S",
    "SOUND_SPEED_SILICON",
    "SensorGrid",
    "area_overhead_percent",
    "detection_latency_cycles",
    "figure18_series",
    "sensors_for_wcdl",
]
