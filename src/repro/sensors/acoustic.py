"""Acoustic wave detector model (Figure 18).

Particle strikes emit an acoustic wave that propagates through the die;
the worst-case detection latency (WCDL) is set by the farthest point from
any sensor. For ``n`` sensors laid out on a uniform sqrt(n) x sqrt(n)
grid over the die, the worst case is the centre of a grid cell's corner
region: half a cell diagonal away from the nearest sensor.

The model is calibrated to the paper's anchor point — 300 sensors on a
1 mm^2 die at 2.5 GHz yield ~10 cycles — via the effective propagation
speed and a fixed detection-circuit overhead, and then reproduces the
latency-vs-sensor-count trend for the other frequencies in the figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

# Longitudinal sound speed in silicon, m/s.
SOUND_SPEED_SILICON = 8433.0
# Fixed detection/triggering overhead in seconds (sensor response +
# interrupt propagation), the calibration constant. With the half-cell
# coverage radius below this pins 300 sensors @ 2.5 GHz to ~10 cycles and
# 30 sensors to ~28 cycles, the paper's anchor points.
DETECTION_OVERHEAD_S = 0.5e-9


@dataclass(frozen=True)
class SensorGrid:
    """A uniform sensor deployment on a square die."""

    num_sensors: int
    die_area_mm2: float = 1.0

    def __post_init__(self) -> None:
        if self.num_sensors < 1:
            raise ValueError("need at least one sensor")
        if self.die_area_mm2 <= 0:
            raise ValueError("die area must be positive")

    @property
    def cell_side_mm(self) -> float:
        side = math.sqrt(self.die_area_mm2)
        per_row = math.sqrt(self.num_sensors)
        return side / per_row

    @property
    def worst_case_distance_mm(self) -> float:
        """Effective worst-case distance to the nearest sensor.

        Half the cell side: sensors hear strikes past their own cell edge
        (coverage circles overlap on a grid), so the effective radius sits
        between side/2 and the half-diagonal; side/2 reproduces the
        paper's calibration points.
        """
        return self.cell_side_mm / 2.0

    def worst_case_latency_seconds(self) -> float:
        distance_m = self.worst_case_distance_mm * 1e-3
        return distance_m / SOUND_SPEED_SILICON + DETECTION_OVERHEAD_S

    def wcdl_cycles(self, clock_ghz: float) -> float:
        """Worst-case detection latency in core clock cycles."""
        if clock_ghz <= 0:
            raise ValueError("clock must be positive")
        return self.worst_case_latency_seconds() * clock_ghz * 1e9


def detection_latency_cycles(
    num_sensors: int, clock_ghz: float, die_area_mm2: float = 1.0
) -> float:
    """Figure 18's y-axis for one (sensor count, frequency) point."""
    return SensorGrid(num_sensors, die_area_mm2).wcdl_cycles(clock_ghz)


def sensors_for_wcdl(
    target_cycles: float, clock_ghz: float, die_area_mm2: float = 1.0
) -> int:
    """Minimum sensor count achieving a target WCDL (inverse of Fig 18)."""
    if target_cycles <= 0:
        raise ValueError("target latency must be positive")
    for n in range(1, 100_001):
        if detection_latency_cycles(n, clock_ghz, die_area_mm2) <= target_cycles:
            return n
    raise ValueError("target latency unreachable with 100k sensors")


def figure18_series(
    sensor_counts: list[int] | None = None,
    clocks_ghz: tuple[float, ...] = (2.0, 2.5, 3.0),
) -> dict[float, list[tuple[int, float]]]:
    """The three curves of Figure 18: latency vs sensors per clock."""
    if sensor_counts is None:
        sensor_counts = [10, 20, 30, 50, 100, 200, 300, 500]
    return {
        clock: [
            (n, detection_latency_cycles(n, clock)) for n in sensor_counts
        ]
        for clock in clocks_ghz
    }


# Per-sensor footprint: a ~5x6 um cantilever detector plus wiring
# (prior work's envelope); 300 of them cost ~1% of a 1 mm^2 die.
SENSOR_AREA_MM2 = (5e-3 * 6e-3) * 1.1


def area_overhead_percent(num_sensors: int, die_area_mm2: float = 1.0) -> float:
    """Die-area overhead of a deployment (paper: 300 sensors ~ 1%)."""
    return 100.0 * num_sensors * SENSOR_AREA_MM2 / die_area_mm2
