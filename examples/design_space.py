#!/usr/bin/env python3
"""Design-space exploration: sweep WCDL, store-buffer size, and CLQ
design for one benchmark, and size the sensor deployment each WCDL
implies.

Run:  python examples/design_space.py [benchmark-uid]
"""

import sys

from repro import (
    CoreConfig,
    InOrderCore,
    ResilienceHardwareConfig,
    compile_baseline,
    compile_program,
    execute,
    load_workload,
    turnpike_config,
    turnstile_config,
)
from repro.sensors import area_overhead_percent, sensors_for_wcdl


def _trace(compiled, workload):
    return execute(
        compiled.program, workload.fresh_memory(), collect_trace=True
    ).trace


def main() -> None:
    uid = sys.argv[1] if len(sys.argv) > 1 else "CPU2006.gcc"
    workload = load_workload(uid)
    core = CoreConfig()

    base_trace = _trace(compile_baseline(workload.program), workload)
    base = InOrderCore(core, ResilienceHardwareConfig.baseline()).run(base_trace)
    print(f"benchmark: {uid}  baseline cycles: {base.cycles:.0f}\n")

    # ---- WCDL sweep with the sensor deployment each point needs -----------
    ts_trace = _trace(compile_program(workload.program, turnstile_config()), workload)
    tp_trace = _trace(compile_program(workload.program, turnpike_config()), workload)
    print(f"{'WCDL':>5}{'sensors@2.5GHz':>16}{'sensor area':>12}"
          f"{'turnstile':>11}{'turnpike':>10}")
    for wcdl in (10, 20, 30, 40, 50):
        sensors = sensors_for_wcdl(float(wcdl), clock_ghz=2.5)
        area = area_overhead_percent(sensors)
        ts = InOrderCore(core, ResilienceHardwareConfig.turnstile(wcdl)).run(ts_trace)
        tp = InOrderCore(core, ResilienceHardwareConfig.turnpike(wcdl)).run(tp_trace)
        print(
            f"{wcdl:>5}{sensors:>16}{area:>11.2f}%"
            f"{ts.cycles / base.cycles:>11.2f}{tp.cycles / base.cycles:>10.2f}"
        )

    # ---- Store buffer sizes: can Turnstile buy its way out? ---------------
    print(f"\n{'scheme':<12}{'SB':>4}{'normalized time':>17}")
    for sb in (4, 8, 10, 20, 40):
        trace = _trace(
            compile_program(workload.program, turnstile_config(sb_size=sb)),
            workload,
        )
        stats = InOrderCore(
            core, ResilienceHardwareConfig.turnstile(10, sb_size=sb)
        ).run(trace)
        print(f"{'turnstile':<12}{sb:>4}{stats.cycles / base.cycles:>17.3f}")
    tp4 = InOrderCore(core, ResilienceHardwareConfig.turnpike(10)).run(tp_trace)
    print(f"{'turnpike':<12}{4:>4}{tp4.cycles / base.cycles:>17.3f}")

    # ---- CLQ designs ---------------------------------------------------------
    print(f"\n{'CLQ design':<20}{'normalized time':>17}{'WAR-free released':>19}")
    for kind, size in (("compact", 2), ("compact", 4), ("ideal", 2)):
        hw = ResilienceHardwareConfig.turnpike(10, clq_kind=kind, clq_size=size)
        stats = InOrderCore(core, hw).run(tp_trace)
        label = f"{kind}-{size}" if kind == "compact" else "ideal (infinite)"
        print(
            f"{label:<20}{stats.cycles / base.cycles:>17.3f}"
            f"{stats.warfree_released:>19}"
        )


if __name__ == "__main__":
    main()
